//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the shapes the workspace actually uses, without `syn`/`quote`
//! (neither is available offline): the input token stream is parsed by
//! hand and the impls are emitted as source text.
//!
//! Supported shapes (matching real serde's default, externally tagged
//! representation):
//!
//! * structs with named fields → JSON objects
//! * tuple structs → JSON arrays, or the inner value with
//!   `#[serde(transparent)]`
//! * unit structs → `null`
//! * enums with unit variants (→ `"Name"`), newtype variants
//!   (→ `{"Name": inner}`), tuple variants (→ `{"Name": [..]}`) and
//!   struct variants (→ `{"Name": {..}}`)
//!
//! Generic types are rejected with a compile error — nothing in the
//! workspace derives on a generic type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.gen_serialize().parse().expect("generated code parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.gen_deserialize()
        .parse()
        .expect("generated code parses")
}

struct Item {
    name: String,
    transparent: bool,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

impl Item {
    fn parse(ts: TokenStream) -> Item {
        let toks: Vec<TokenTree> = ts.into_iter().collect();
        let mut i = 0;
        let mut transparent = false;

        // Outer attributes (doc comments arrive as `#[doc = ...]`).
        while let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                let s = g.stream().to_string();
                if s.starts_with("serde") && s.contains("transparent") {
                    transparent = true;
                }
            }
            i += 2;
        }

        skip_visibility(&toks, &mut i);

        let kw = expect_ident(&toks, &mut i);
        let name = expect_ident(&toks, &mut i);
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == '<' {
                panic!("serde shim derive: generic type `{name}` is unsupported");
            }
        }

        let kind = match kw.as_str() {
            "struct" => match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Kind::NamedStruct(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Kind::TupleStruct(count_fields(g.stream()))
                }
                _ => Kind::UnitStruct,
            },
            "enum" => match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Kind::Enum(parse_variants(g.stream()))
                }
                _ => panic!("serde shim derive: malformed enum `{name}`"),
            },
            other => panic!("serde shim derive: unsupported item kind `{other}`"),
        };

        Item {
            name,
            transparent,
            kind,
        }
    }
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1; // pub(crate) etc.
                }
            }
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde shim derive: expected identifier, found {other:?}"),
    }
}

fn skip_attributes(toks: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = toks.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 2; // '#' + bracket group
    }
}

/// Advances past a type (or other expression) up to a top-level comma,
/// tracking angle-bracket depth so `Map<String, u64>` does not split.
fn skip_to_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth <= 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        skip_attributes(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_visibility(&toks, &mut i);
        out.push(expect_ident(&toks, &mut i));
        // ':' then the type, up to the next top-level comma.
        skip_to_comma(&toks, &mut i);
        i += 1; // the comma itself (or end)
    }
    out
}

fn count_fields(ts: TokenStream) -> usize {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut n = 0;
    while i < toks.len() {
        skip_to_comma(&toks, &mut i);
        n += 1;
        i += 1;
    }
    n
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        skip_attributes(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        // Skip an optional discriminant, then the separating comma.
        skip_to_comma(&toks, &mut i);
        i += 1;
        out.push(Variant { name, fields });
    }
    out
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

impl Item {
    fn gen_serialize(&self) -> String {
        let name = &self.name;
        let body = match &self.kind {
            Kind::NamedStruct(fields) => {
                let mut s = String::from("let mut m = ::serde::Map::new();\n");
                for f in fields {
                    s.push_str(&format!(
                        "m.insert(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f}));\n"
                    ));
                }
                s.push_str("::serde::Value::Object(m)");
                s
            }
            Kind::TupleStruct(1) if self.transparent => {
                "::serde::Serialize::serialize(&self.0)".to_string()
            }
            Kind::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
            Kind::UnitStruct => "::serde::Value::Null".to_string(),
            Kind::Enum(variants) => {
                let mut s = String::from("match self {\n");
                for v in variants {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => s.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                        )),
                        VariantFields::Tuple(1) => s.push_str(&format!(
                            "{name}::{vn}(f0) => ::serde::variant(\"{vn}\", ::serde::Serialize::serialize(f0)),\n"
                        )),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            s.push_str(&format!(
                                "{name}::{vn}({}) => ::serde::variant(\"{vn}\", ::serde::Value::Array(vec![{}])),\n",
                                binds.join(", "),
                                items.join(", ")
                            ));
                        }
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let mut inner = String::from(
                                "{ let mut m = ::serde::Map::new();\n",
                            );
                            for f in fields {
                                inner.push_str(&format!(
                                    "m.insert(\"{f}\".to_string(), ::serde::Serialize::serialize({f}));\n"
                                ));
                            }
                            inner.push_str(&format!(
                                "::serde::variant(\"{vn}\", ::serde::Value::Object(m)) }}"
                            ));
                            s.push_str(&format!("{name}::{vn} {{ {binds} }} => {inner},\n"));
                        }
                    }
                }
                s.push('}');
                s
            }
        };
        format!(
            "#[automatically_derived]\n\
             impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
             }}"
        )
    }

    fn gen_deserialize(&self) -> String {
        let name = &self.name;
        let body = match &self.kind {
            Kind::NamedStruct(fields) => {
                let mut s = String::from("let m = ::serde::as_object(v)?;\n");
                s.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
                for f in fields {
                    s.push_str(&format!("{f}: ::serde::field(m, \"{f}\")?,\n"));
                }
                s.push_str("})");
                s
            }
            Kind::TupleStruct(1) if self.transparent => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))")
            }
            Kind::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::index(a, {i})?"))
                    .collect();
                format!(
                    "let a = ::serde::as_array(v)?;\n\
                     ::std::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            }
            Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
            Kind::Enum(variants) => {
                let mut s = String::new();
                // Unit variants arrive as bare strings.
                s.push_str("if let ::serde::Value::String(s) = v {\n");
                s.push_str("return match s.as_str() {\n");
                for v in variants {
                    if matches!(v.fields, VariantFields::Unit) {
                        let vn = &v.name;
                        s.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                }
                s.push_str(&format!(
                    "other => ::std::result::Result::Err(::serde::Error::msg(format!(\"unknown {name} variant `{{other}}`\"))),\n"
                ));
                s.push_str("};\n}\n");
                // Data variants arrive as single-key objects.
                s.push_str("let (tag, inner) = ::serde::as_variant(v)?;\n");
                s.push_str("match tag.as_str() {\n");
                for v in variants {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => {}
                        VariantFields::Tuple(1) => s.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(inner)?)),\n"
                        )),
                        VariantFields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::index(a, {i})?"))
                                .collect();
                            s.push_str(&format!(
                                "\"{vn}\" => {{ let a = ::serde::as_array(inner)?; ::std::result::Result::Ok({name}::{vn}({})) }},\n",
                                items.join(", ")
                            ));
                        }
                        VariantFields::Named(fields) => {
                            let mut inner_s = String::from(
                                "{ let m = ::serde::as_object(inner)?; ",
                            );
                            inner_s.push_str(&format!(
                                "::std::result::Result::Ok({name}::{vn} {{ "
                            ));
                            for f in fields {
                                inner_s.push_str(&format!(
                                    "{f}: ::serde::field(m, \"{f}\")?, "
                                ));
                            }
                            inner_s.push_str("}) }");
                            s.push_str(&format!("\"{vn}\" => {inner_s},\n"));
                        }
                    }
                }
                s.push_str(&format!(
                    "other => ::std::result::Result::Err(::serde::Error::msg(format!(\"unknown {name} variant `{{other}}`\"))),\n"
                ));
                s.push('}');
                s
            }
        };
        format!(
            "#[automatically_derived]\n\
             impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
             }}"
        )
    }
}
