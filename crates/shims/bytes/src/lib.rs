//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] here is an `Arc<[u8]>` wrapper: immutable, cheaply
//! cloneable byte storage where clones share the same backing buffer —
//! the two properties the workspace's bitstream repository relies on.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of contiguous memory.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(&b[..], &[1, 2, 3]);
    }
}
