//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro with an inline `#![proptest_config(..)]`
//! attribute, [`Strategy`] with `prop_map`, range and [`any`]
//! strategies, tuple composition, and `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics immediately with the case
//!   number; inputs are reproducible because every test's RNG stream is
//!   seeded from the test's name.
//! * **No persistence / regression files.** Streams are fixed, so every
//!   run explores the same cases.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator driving value production (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name, so each property explores a
    /// fixed, reproducible set of cases.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe producing random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.gen_value(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produces an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_unit_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Produces unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64)
                    .checked_sub(self.start as u64)
                    .filter(|s| *s > 0)
                    .expect("empty range strategy");
                (self.start as u64 + rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                match (hi - lo).checked_add(1) {
                    Some(span) => (lo + rng.next_u64() % span) as $t,
                    None => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident : $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11);

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Declares property tests over generated inputs.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn holds(x in 0u32..100, y in any::<bool>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategies = ( $($strat,)+ );
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let ( $($arg,)+ ) = $crate::Strategy::gen_value(&strategies, &mut rng);
                    let run = || { $body };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest shim: property `{}` failed on case {}/{}",
                            stringify!($name), case + 1, config.cases
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name( $($arg in $strat),+ ) $body )*
        }
    };
}
