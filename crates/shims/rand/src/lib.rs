//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset the workspace uses: a [`Rng`] core trait, the
//! [`RngExt`] extension with `random_range` / `random_bool`, a
//! [`SeedableRng`] constructor trait, and a deterministic
//! [`rngs::StdRng`].
//!
//! `StdRng` here is a SplitMix64 generator: tiny, fast, and
//! statistically solid for simulation workloads. It is **not**
//! cryptographically secure, and its streams differ from the real
//! `rand::rngs::StdRng` — seeds are workspace-local, which is fine
//! because every consumer treats seeds as opaque reproducibility
//! handles.

use std::ops::{Bound, RangeBounds};

/// A source of random 64-bit words.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Samples uniformly from `range` (e.g. `0..n`, `lo..=hi`,
    /// `0.0..x`).
    ///
    /// # Panics
    /// Panics if the range is empty or unbounded.
    fn random_range<T, B>(&mut self, range: B) -> T
    where
        T: SampleUniform,
        B: RangeBounds<T>,
        Self: Sized,
    {
        let lo = match range.start_bound() {
            Bound::Included(x) => x.clone(),
            Bound::Excluded(_) => panic!("exclusive start bounds are unsupported"),
            Bound::Unbounded => panic!("unbounded ranges are unsupported"),
        };
        let (hi, inclusive) = match range.end_bound() {
            Bound::Included(x) => (x.clone(), true),
            Bound::Excluded(x) => (x.clone(), false),
            Bound::Unbounded => panic!("unbounded ranges are unsupported"),
        };
        T::sample_in(self, lo, hi, inclusive)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.next_unit_f64() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`RngExt::random_range`] can sample.
pub trait SampleUniform: Clone + PartialOrd {
    /// Samples uniformly in `[lo, hi]` or `[lo, hi)`.
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let (lo, hi) = (lo as u64, hi as u64);
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "empty range in random_range"
                );
                let width = hi - lo;
                if inclusive {
                    match width.checked_add(1) {
                        Some(span) => (lo + rng.next_u64() % span) as $t,
                        // lo..=MAX of a 64-bit type with lo == 0:
                        // every word is valid.
                        None => rng.next_u64() as $t,
                    }
                } else {
                    (lo + rng.next_u64() % width) as $t
                }
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let lo_w = lo as i64;
                let hi_w = hi as i64;
                let span = (hi_w.wrapping_sub(lo_w) as u64)
                    .checked_add(u64::from(inclusive))
                    .filter(|s| *s > 0)
                    .expect("empty range in random_range");
                lo_w.wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
impl_sample_signed!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        if inclusive {
            assert!(lo <= hi, "empty range in random_range");
            // Uniform in [0, 1] (the divisor makes the top word map
            // to exactly 1.0), so `hi` itself is reachable.
            let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
            lo + unit * (hi - lo)
        } else {
            assert!(lo < hi, "empty range in random_range");
            lo + rng.next_unit_f64() * (hi - lo)
        }
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        f64::sample_in(rng, f64::from(lo), f64::from(hi), inclusive) as f32
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let x: usize = rng.random_range(3..=8);
            assert!((3..=8).contains(&x));
            let y: u32 = rng.random_range(0..5);
            assert!(y < 5);
            let z: f64 = rng.random_range(0.0..2.5);
            assert!((0.0..2.5).contains(&z));
        }
    }

    #[test]
    fn inclusive_range_to_type_max() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let x: u64 = rng.random_range(1..=u64::MAX);
            assert!(x >= 1);
            let y: u8 = rng.random_range(250..=u8::MAX);
            assert!(y >= 250);
            let z: u64 = rng.random_range(0..=u64::MAX);
            let _ = z;
        }
    }

    #[test]
    fn inclusive_float_ranges() {
        let mut rng = StdRng::seed_from_u64(5);
        // Singleton inclusive range is valid and returns its endpoint.
        let x: f64 = rng.random_range(2.5..=2.5);
        assert_eq!(x, 2.5);
        for _ in 0..1_000 {
            let y: f64 = rng.random_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn unit_interval_is_half_open() {
        use super::Rng;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u = rng.next_unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
