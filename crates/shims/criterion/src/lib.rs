//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the small API surface the workspace's benches use —
//! benchmark groups, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock timer instead of
//! criterion's statistical machinery. Each benchmark is warmed up, then
//! timed over enough iterations to fill a short measurement window, and
//! the mean time per iteration is printed.
//!
//! This keeps `cargo bench` functional (and the bench targets
//! compiling, which `cargo test` checks) without any external deps.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Label for one benchmark case within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function.into()))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to measurement closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    warmup: Duration,
    window: Duration,
    result_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measures `routine`, storing the mean wall-clock time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up window elapses.
        let start = Instant::now();
        while start.elapsed() < self.warmup {
            std::hint::black_box(routine());
        }
        // Measurement: batches until the window fills.
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        while elapsed < self.window {
            let t = Instant::now();
            std::hint::black_box(routine());
            elapsed += t.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.result_ns = elapsed.as_nanos() as f64 / iters as f64;
    }
}

/// The harness entry point, created by [`criterion_group!`].
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmark cases.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
        }
    }

    /// Benchmarks a standalone function (an implicit group of one).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_case(id, f);
        self
    }
}

/// A group of benchmark cases sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes its own windows.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_case(&format!("{}/{id}", self.name), f);
        self
    }

    /// Benchmarks `f(bencher, input)` under `id` within this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_case(&format!("{}/{}", self.name, id.0), |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

fn run_case<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher {
        warmup: Duration::from_millis(50),
        window: Duration::from_millis(200),
        result_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    let (value, unit) = humanize_ns(b.result_ns);
    println!("  {label}: {value:.2} {unit}/iter ({} iters)", b.iters);
}

fn humanize_ns(ns: f64) -> (f64, &'static str) {
    if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    }
}

/// Declares a benchmark group function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
