//! Offline stand-in for `serde_json`, backed by the `serde` shim's
//! value tree and JSON reader/writer.

pub use serde::value::{Map, Number, Value};
pub use serde::Error;

/// Serializes `value` to compact JSON.
///
/// The `Result` return mirrors real serde_json; the shim's value-based
/// serializers are total, so this never fails.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(serde::json::to_compact(&value.serialize()))
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(serde::json::to_pretty(&value.serialize()))
}

/// Parses a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    T::deserialize(&serde::json::parse(s)?)
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: u32,
        y: i32,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
    #[serde(transparent)]
    struct Wrapper(u64);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Unit,
        Newtype(u32),
        Pair(u8, u8),
        Named { w: f64, tag: String },
    }

    #[test]
    fn struct_round_trip() {
        let p = Point { x: 3, y: -4 };
        let json = super::to_string(&p).unwrap();
        assert_eq!(json, r#"{"x":3,"y":-4}"#);
        assert_eq!(super::from_str::<Point>(&json).unwrap(), p);
    }

    #[test]
    fn transparent_newtype_is_bare() {
        assert_eq!(super::to_string(&Wrapper(9)).unwrap(), "9");
        assert_eq!(super::from_str::<Wrapper>("9").unwrap(), Wrapper(9));
    }

    #[test]
    fn enum_variants_round_trip() {
        for (v, json) in [
            (Shape::Unit, r#""Unit""#.to_string()),
            (Shape::Newtype(7), r#"{"Newtype":7}"#.to_string()),
            (Shape::Pair(1, 2), r#"{"Pair":[1,2]}"#.to_string()),
            (
                Shape::Named {
                    w: 0.5,
                    tag: "t".into(),
                },
                r#"{"Named":{"tag":"t","w":0.5}}"#.to_string(),
            ),
        ] {
            assert_eq!(super::to_string(&v).unwrap(), json);
            assert_eq!(super::from_str::<Shape>(&json).unwrap(), v);
        }
    }

    #[test]
    fn vec_and_option_round_trip() {
        let xs: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let json = super::to_string(&xs).unwrap();
        assert_eq!(json, "[1,null,3]");
        assert_eq!(super::from_str::<Vec<Option<u32>>>(&json).unwrap(), xs);
    }
}
