//! JSON text reader/writer for the shim [`Value`] tree.

use crate::value::{Map, Number, Value};
use crate::Error;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Serializes a value tree to compact JSON.
pub fn to_compact(v: &Value) -> String {
    let mut s = String::new();
    write_value(&mut s, v, None, 0);
    s
}

/// Serializes a value tree to pretty JSON (two-space indent).
pub fn to_pretty(v: &Value) -> String {
    let mut s = String::new();
    write_value(&mut s, v, Some(2), 0);
    s
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..(w * depth) {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(x) => out.push_str(&x.to_string()),
        Number::I64(x) => out.push_str(&x.to_string()),
        Number::F64(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest representation that parses
                // back to the same f64 and always includes a '.' or 'e'.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses a JSON document into a value tree.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::msg("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::msg(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(out)),
                c => {
                    return Err(Error::msg(format!(
                        "expected ',' or ']' at byte {}, found '{}'",
                        self.pos - 1,
                        c as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(out)),
                c => {
                    return Err(Error::msg(format!(
                        "expected ',' or '}}' at byte {}, found '{}'",
                        self.pos - 1,
                        c as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: advance over a plain UTF-8 run.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = self.hex4()?;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: the next escape must be a
                            // low surrogate.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::msg(format!(
                                    "expected low surrogate after \\u{hi:04x}, found \\u{lo:04x}"
                                )));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(cp).ok_or_else(|| Error::msg("invalid \\u escape"))?,
                        );
                    }
                    c => return Err(Error::msg(format!("invalid escape '\\{}'", c as char))),
                },
                c => {
                    return Err(Error::msg(format!(
                        "unescaped control character 0x{c:02x} in string"
                    )))
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut n = 0u32;
        for _ in 0..4 {
            let c = self.bump()? as char;
            n = n * 16
                + c.to_digit(16)
                    .ok_or_else(|| Error::msg("invalid hex digit in \\u escape"))?;
        }
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        let n = if float {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|_| Error::msg(format!("invalid number `{text}`")))?,
            )
        } else if text.starts_with('-') {
            Number::I64(
                text.parse::<i64>()
                    .map_err(|_| Error::msg(format!("invalid number `{text}`")))?,
            )
        } else {
            Number::U64(
                text.parse::<u64>()
                    .map_err(|_| Error::msg(format!("invalid number `{text}`")))?,
            )
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compound_values() {
        let src = r#"{"a": [1, -2, 3.5, true, null], "b": {"c": "x\ny"}}"#;
        let v = parse(src).unwrap();
        let back = parse(&to_compact(&v)).unwrap();
        assert_eq!(v, back);
        let pretty = parse(&to_pretty(&v)).unwrap();
        assert_eq!(v, pretty);
    }

    #[test]
    fn integers_stay_exact() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v, Value::Number(Number::U64(u64::MAX)));
    }

    #[test]
    fn rejects_malformed_surrogate_pairs() {
        // High surrogate followed by a non-low-surrogate escape must
        // error, not panic or decode garbage.
        assert!(parse(r#""\uD800\u0041""#).is_err());
        assert!(parse(r#""\uD800\uFFFF""#).is_err());
        // A valid pair decodes.
        assert_eq!(
            parse(r#""\uD83D\uDE00""#).unwrap(),
            Value::String("\u{1F600}".to_string())
        );
        // A lone high surrogate with no second escape errors.
        assert!(parse(r#""\uD800""#).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
    }
}
