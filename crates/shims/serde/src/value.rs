//! The JSON value tree shared by the `serde` and `serde_json` shims.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON object. `BTreeMap` keeps key order deterministic, which keeps
/// serialized output stable across runs (important for golden tests).
pub type Map = BTreeMap<String, Value>;

/// A JSON number. Integers are kept exact rather than coerced to `f64`
/// so `u64` quantities (simulation timestamps in microseconds, byte
/// counters) round-trip losslessly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// Lossy view as `f64` (exact for every value the workspace stores).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(x) => x,
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Borrows the string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the object payload, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::json::to_compact(self))
    }
}
