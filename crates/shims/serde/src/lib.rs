//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the workspace vendors minimal replacements for its
//! external dependencies under `crates/shims/`. This crate provides the
//! subset of serde the workspace uses:
//!
//! * [`Serialize`] / [`Deserialize`] traits (JSON-value based rather
//!   than visitor based — every consumer in the workspace goes through
//!   `serde_json`, so the generic serializer machinery is unnecessary).
//! * `#[derive(Serialize, Deserialize)]` via the `serde_derive` shim,
//!   supporting plain structs, `#[serde(transparent)]` newtypes, and
//!   enums with unit / tuple / struct variants (externally tagged,
//!   matching real serde's default representation).
//! * A [`Value`] tree plus the JSON reader/writer backing the
//!   `serde_json` shim.
//!
//! The representation is wire-compatible with what real serde_json
//! would produce for the same derives, so swapping the real crates back
//! in (when a registry is available) only requires deleting the shims
//! and pointing the manifests at crates.io.

pub mod json;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

use std::fmt;

/// Serialization/deserialization error (shared with `serde_json`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }

    /// Creates a "expected X, found Y" type-mismatch error.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON value tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Helpers used by the derive-generated code.
// ---------------------------------------------------------------------------

/// Looks up and deserializes a struct field from an object map.
pub fn field<T: Deserialize>(m: &Map, key: &str) -> Result<T, Error> {
    match m.get(key) {
        Some(v) => T::deserialize(v).map_err(|e| Error(format!("field `{key}`: {e}"))),
        // Missing `Option` fields deserialize from an implicit null.
        None => T::deserialize(&Value::Null).map_err(|_| Error(format!("missing field `{key}`"))),
    }
}

/// Deserializes the `i`-th element of a JSON array (tuple structs).
pub fn index<T: Deserialize>(a: &[Value], i: usize) -> Result<T, Error> {
    match a.get(i) {
        Some(v) => T::deserialize(v).map_err(|e| Error(format!("index {i}: {e}"))),
        None => Err(Error(format!("missing tuple element {i}"))),
    }
}

/// Builds an externally tagged enum variant: `{"Tag": inner}`.
pub fn variant(tag: &str, inner: Value) -> Value {
    let mut m = Map::new();
    m.insert(tag.to_string(), inner);
    Value::Object(m)
}

/// Destructures an externally tagged enum variant.
pub fn as_variant(v: &Value) -> Result<(&String, &Value), Error> {
    match v {
        Value::Object(m) if m.len() == 1 => {
            let (k, inner) = m.iter().next().expect("len checked");
            Ok((k, inner))
        }
        other => Err(Error::expected("single-key variant object", other)),
    }
}

/// Extracts an object map or errors.
pub fn as_object(v: &Value) -> Result<&Map, Error> {
    match v {
        Value::Object(m) => Ok(m),
        other => Err(Error::expected("object", other)),
    }
}

/// Extracts an array or errors.
pub fn as_array(v: &Value) -> Result<&[Value], Error> {
    match v {
        Value::Array(a) => Ok(a),
        other => Err(Error::expected("array", other)),
    }
}

// ---------------------------------------------------------------------------
// Blanket/base impls.
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::U64(n)) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let x = *self as i64;
                if x >= 0 {
                    Value::Number(Number::U64(x as u64))
                } else {
                    Value::Number(Number::I64(x))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match v {
                    Value::Number(Number::U64(n)) => i64::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for i64")))?,
                    Value::Number(Number::I64(n)) => *n,
                    other => return Err(Error::expected(stringify!($t), other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::msg(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}
impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(Error::expected("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}
impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        as_array(v)?.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(std::sync::Arc::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let a = as_array(v)?;
        Ok((index(a, 0)?, index(a, 1)?))
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.serialize());
        }
        Value::Object(m)
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let mut out = std::collections::BTreeMap::new();
        for (k, v) in as_object(v)? {
            out.insert(k.clone(), V::deserialize(v)?);
        }
        Ok(out)
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
