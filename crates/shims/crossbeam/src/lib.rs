//! Offline stand-in for the `crossbeam` crate.
//!
//! Wraps std primitives behind the crossbeam API surface the workspace
//! uses: multi-consumer [`channel`]s (std mpsc behind a mutex) and
//! [`thread::scope`] (std scoped threads with crossbeam's
//! closure-takes-the-scope signature and `Result` return).

/// Multi-producer, multi-consumer FIFO channels.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned by [`Receiver::recv`] when the channel is closed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like real crossbeam: `Debug` without requiring `T: Debug`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only if every receiver is dropped.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            self.0.send(t).map_err(|mpsc::SendError(t)| SendError(t))
        }
    }

    /// The receiving half of an unbounded channel. Cloneable: clones
    /// *share* the queue (each message is delivered to exactly one
    /// receiver), matching crossbeam's work-queue semantics.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0
                .lock()
                .expect("channel mutex is never poisoned")
                .recv()
                .map_err(|_| RecvError)
        }

        /// Iterates over messages until the channel closes.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

/// Scoped threads.
pub mod thread {
    /// A scope handle passed to [`scope`]'s closure and to each spawned
    /// thread's closure (crossbeam lets workers spawn siblings; the
    /// workspace only uses it as a spawn anchor).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread bound to the scope. All spawned threads are
        /// joined before [`scope`] returns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = Scope { inner: self.inner };
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Runs `f` with a scope in which borrowing, non-`'static` threads
    /// can be spawned. Returns `Ok` with the closure's value; the
    /// `Result` wrapper mirrors crossbeam's signature (std scoped
    /// threads propagate child panics by panicking, so the `Err` arm is
    /// never constructed here).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_delivers_each_message_once() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let rx2 = rx.clone();
        let mut got: Vec<u32> = rx.iter().chain(rx2.iter()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3];
        let sum = super::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }
}
