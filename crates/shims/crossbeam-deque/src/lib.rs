//! Offline stand-in for `crossbeam-deque`: the work-stealing deque API
//! (`Worker` / `Stealer` / `Steal`) backed by a mutexed `VecDeque`
//! instead of the real crate's lock-free Chase-Lev buffer.
//!
//! The surface is exactly what the workspace's parallel sweep runner
//! uses: a FIFO owner queue per worker thread plus cloneable stealers
//! over it. Semantics match the real crate — the owner pops from the
//! front, stealers take from the front too (FIFO deques steal from the
//! same end), and a stealer that loses a race reports [`Steal::Retry`]
//! rather than blocking. The differences are performance-shaped, not
//! behavioral: every operation takes the queue's mutex (the real crate
//! is lock-free), and `Retry` arises from `try_lock` contention rather
//! than a CAS failure. Callers must already treat `Retry` as "try
//! again", so the substitution is invisible above the API.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, TryLockError};

/// The outcome of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was observed empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// Lost a race with a concurrent operation; trying again may
    /// succeed.
    Retry,
}

impl<T> Steal<T> {
    /// True if a task was stolen.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// True if the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// True if the attempt lost a race and should be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// The stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

/// A FIFO work queue owned by one worker thread. The owner pushes and
/// pops; other threads steal through [`Stealer`] handles.
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// An empty FIFO worker queue.
    pub fn new_fifo() -> Self {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Enqueues a task at the back.
    pub fn push(&self, task: T) {
        self.inner
            .lock()
            .expect("deque mutex poisoned")
            .push_back(task);
    }

    /// Dequeues the front task (FIFO order), or `None` when empty.
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().expect("deque mutex poisoned").pop_front()
    }

    /// True when no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("deque mutex poisoned").is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("deque mutex poisoned").len()
    }

    /// A new stealer handle over this queue.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Default for Worker<T> {
    fn default() -> Self {
        Worker::new_fifo()
    }
}

/// A cloneable handle for stealing tasks from another worker's queue.
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    /// Attempts to steal the front task. Contention with the owner or
    /// another stealer surfaces as [`Steal::Retry`] instead of
    /// blocking, mirroring the real crate's lock-free CAS failure.
    pub fn steal(&self) -> Steal<T> {
        match self.inner.try_lock() {
            Ok(mut q) => match q.pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            },
            Err(TryLockError::WouldBlock) => Steal::Retry,
            Err(TryLockError::Poisoned(e)) => panic!("deque mutex poisoned: {e}"),
        }
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn owner_pops_fifo() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.len(), 3);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn stealer_takes_from_the_front() {
        let w = Worker::new_fifo();
        w.push(10);
        w.push(20);
        let s = w.stealer();
        assert_eq!(s.steal().success(), Some(10));
        assert_eq!(w.pop(), Some(20));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn concurrent_stealers_drain_every_task_exactly_once() {
        let w = Worker::new_fifo();
        for i in 0..1000u32 {
            w.push(i);
        }
        let seen = StdMutex::new(BTreeSet::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = w.stealer();
                let seen = &seen;
                scope.spawn(move || loop {
                    match s.steal() {
                        Steal::Success(t) => {
                            assert!(seen.lock().unwrap().insert(t), "task stolen twice");
                        }
                        Steal::Retry => std::thread::yield_now(),
                        Steal::Empty => break,
                    }
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), 1000);
        assert!(w.is_empty());
    }
}
