//! Property test pinning the tentpole equivalence: on seeded random
//! streams and candidate sets, index-backed decisions (the engine's
//! O(log n) [`ReuseIndex`] path) pick the *same victim* as the legacy
//! O(stream × candidates) scan — distances, victims and tie-break
//! order, for both the LFD oracle and the Local-LFD windows.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtr_core::{LfdPolicy, ReuseIndex, TieBreak};
use rtr_hw::RuId;
use rtr_manager::{DecisionContext, FutureView, ReplacementPolicy, VictimCandidate};
use rtr_sim::SimTime;
use rtr_taskgraph::ConfigId;
use std::sync::Arc;

/// One randomised decision scenario: a backlog of jobs (index 0 is the
/// current graph), a consumed prefix of the current sequence, a
/// Dynamic-List visibility, and a candidate set drawn from configs
/// both present in and absent from the stream (duplicates included, so
/// ties happen).
#[derive(Debug, Clone)]
struct Case {
    /// Jobs already pushed *and retired* before the live ones — they
    /// exercise index pruning and must not affect any distance.
    prehistory: Vec<Vec<ConfigId>>,
    /// Live jobs in activation order; `jobs[0]` is current.
    jobs: Vec<Vec<ConfigId>>,
    /// Entries of the current sequence already placed (seq_pos + 1).
    consumed: usize,
    /// Arrived jobs visible to the decision (the Dynamic List size).
    visible: usize,
    candidates: Vec<VictimCandidate>,
}

fn gen_case(seed: u64) -> Case {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = 2 + (rng.random_range(0..8u32));
    let job = |rng: &mut StdRng| -> Vec<ConfigId> {
        let len = rng.random_range(1..8usize);
        (0..len)
            .map(|_| ConfigId(rng.random_range(0..pool)))
            .collect()
    };
    let prehistory = (0..rng.random_range(0..4usize))
        .map(|_| job(&mut rng))
        .collect();
    let njobs = rng.random_range(1..6usize);
    let jobs: Vec<Vec<ConfigId>> = (0..njobs).map(|_| job(&mut rng)).collect();
    let consumed = rng.random_range(0..=jobs[0].len() + 1);
    let visible = rng.random_range(0..njobs + 2);
    let ncand = rng.random_range(1..6usize);
    let candidates = (0..ncand as u16)
        .map(|i| {
            // ~1 in 3 candidates never occur in the stream (infinite
            // distance); duplicates of in-pool configs create ties.
            let config = if rng.random_range(0..3u32) == 0 {
                ConfigId(900 + u32::from(i % 2))
            } else {
                ConfigId(rng.random_range(0..pool))
            };
            VictimCandidate {
                ru: RuId(i),
                config,
            }
        })
        .collect();
    Case {
        prehistory,
        jobs,
        consumed,
        visible,
        candidates,
    }
}

/// Builds the two backings of the same decision: the incremental index
/// (prehistory pushed then retired, live jobs pushed in activation
/// order) and the legacy segment view.
fn build(case: &Case) -> (ReuseIndex, Vec<&[ConfigId]>) {
    let mut index = ReuseIndex::new();
    for pre in &case.prehistory {
        index.push_job(Arc::new(pre.clone()));
    }
    for _ in &case.prehistory {
        index.retire_front();
    }
    for j in &case.jobs {
        index.push_job(Arc::new(j.clone()));
    }
    let mut segments: Vec<&[ConfigId]> = Vec::new();
    let cur = &case.jobs[0];
    segments.push(&cur[case.consumed.min(cur.len())..]);
    for j in case.jobs.iter().skip(1).take(case.visible) {
        segments.push(j.as_slice());
    }
    (index, segments)
}

fn assert_equivalent(case: &Case) {
    let (index, segments) = build(case);
    // Clamp visibility the way the engine's Lookahead does: at most the
    // arrived backlog.
    let visible = case.visible.min(case.jobs.len() - 1);
    let window = index.window(case.consumed, visible);
    let view = FutureView::new(segments);
    let new_config = ConfigId(777);
    let by_view = DecisionContext::from_view(SimTime::ZERO, new_config, &case.candidates, &view);
    let by_index =
        DecisionContext::indexed(SimTime::ZERO, new_config, &case.candidates, &index, window);

    // Distances agree per candidate (the raw quantity LFD ranks on)…
    prop_assert_eq!(
        by_view.candidate_distances(),
        by_index.candidate_distances(),
        "distances diverged on {:?}",
        case
    );
    prop_assert_eq!(by_view.future_len(), by_index.future_len());
    // …and so does the reconstructed legacy iterator view.
    let a: Vec<ConfigId> = by_view.future_iter().collect();
    let b: Vec<ConfigId> = by_index.future_iter().collect();
    prop_assert_eq!(a, b, "iterator views diverged on {:?}", case);

    // The paper's policy picks the same victim — tie-break included —
    // for the oracle flavour, the Local-LFD flavour (same selection
    // logic, window set by the caller) and the LRU tie-break ablation
    // with primed history.
    let mut oracle = LfdPolicy::oracle();
    prop_assert_eq!(
        oracle.select_victim(&by_view),
        oracle.select_victim(&by_index),
        "LFD victim diverged on {:?}",
        case
    );
    let mut local = LfdPolicy::local(visible);
    prop_assert_eq!(
        local.select_victim(&by_view),
        local.select_victim(&by_index),
        "Local LFD victim diverged on {:?}",
        case
    );
    let mut lru_tb = LfdPolicy::local(visible).with_tie_break(TieBreak::LeastRecentlyUsed);
    for (i, cand) in case.candidates.iter().enumerate() {
        lru_tb.on_load_complete(cand.config, cand.ru, SimTime::from_ms(i as u64));
    }
    prop_assert_eq!(
        lru_tb.select_victim(&by_view),
        lru_tb.select_victim(&by_index),
        "LRU-tie-break victim diverged on {:?}",
        case
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn index_backed_decisions_match_legacy_scan(seed in any::<u64>()) {
        let case = gen_case(seed);
        assert_equivalent(&case);
    }
}

#[test]
fn fully_consumed_current_job_still_equivalent() {
    // Degenerate corner the random generator rarely hits exactly: the
    // current sequence fully placed, nothing visible beyond it.
    let case = Case {
        prehistory: vec![vec![ConfigId(1)]],
        jobs: vec![vec![ConfigId(2), ConfigId(3)]],
        consumed: 2,
        visible: 0,
        candidates: vec![
            VictimCandidate {
                ru: RuId(0),
                config: ConfigId(2),
            },
            VictimCandidate {
                ru: RuId(1),
                config: ConfigId(3),
            },
        ],
    };
    assert_equivalent(&case);
}
