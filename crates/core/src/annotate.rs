//! Design-time artifacts bundled per graph template.
//!
//! The hybrid approach "performs the bulk of the computations at design
//! time in order to save run-time computations": for every *template*
//! (distinct task graph) the mobility vector is computed once and reused
//! by every instance in the application sequence. [`TemplateCache`]
//! provides exactly that memoisation keyed by template identity.

use crate::mobility::{compute_mobility, MobilityError};
use rtr_manager::{JobSpec, ManagerConfig};
use rtr_taskgraph::TaskGraph;
use std::collections::HashMap;
use std::sync::Arc;

/// A graph template plus its design-time annotations.
#[derive(Debug, Clone)]
pub struct AnnotatedTemplate {
    /// The template graph.
    pub graph: Arc<TaskGraph>,
    /// Per-node mobility (aligned with node ids).
    pub mobility: Arc<Vec<u32>>,
}

impl AnnotatedTemplate {
    /// Runs the design-time phase for `graph` on the system in `cfg`.
    pub fn prepare(graph: Arc<TaskGraph>, cfg: &ManagerConfig) -> Result<Self, MobilityError> {
        let mobility = Arc::new(compute_mobility(&graph, cfg)?);
        Ok(AnnotatedTemplate { graph, mobility })
    }

    /// Builds a job instance carrying the annotations.
    pub fn instantiate(&self) -> JobSpec {
        JobSpec::new(Arc::clone(&self.graph)).with_mobility(Arc::clone(&self.mobility))
    }
}

/// Memoised design-time phase, keyed by template pointer identity.
#[derive(Debug, Default)]
pub struct TemplateCache {
    entries: HashMap<*const TaskGraph, AnnotatedTemplate>,
}

impl TemplateCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the annotated template, computing it on first access.
    pub fn get_or_prepare(
        &mut self,
        graph: &Arc<TaskGraph>,
        cfg: &ManagerConfig,
    ) -> Result<AnnotatedTemplate, MobilityError> {
        if let Some(hit) = self.entries.get(&Arc::as_ptr(graph)) {
            return Ok(hit.clone());
        }
        let annotated = AnnotatedTemplate::prepare(Arc::clone(graph), cfg)?;
        self.entries.insert(Arc::as_ptr(graph), annotated.clone());
        Ok(annotated)
    }

    /// Number of distinct templates prepared.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was prepared yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_taskgraph::benchmarks;

    #[test]
    fn prepare_and_instantiate() {
        let cfg = ManagerConfig::paper_default();
        let tpl = AnnotatedTemplate::prepare(Arc::new(benchmarks::fig3_tg2()), &cfg).unwrap();
        assert_eq!(*tpl.mobility, vec![0, 0, 0, 1]);
        let job = tpl.instantiate();
        assert_eq!(*job.mobility.unwrap(), vec![0, 0, 0, 1]);
    }

    #[test]
    fn cache_prepares_each_template_once() {
        let cfg = ManagerConfig::paper_default();
        let g = Arc::new(benchmarks::jpeg());
        let mut cache = TemplateCache::new();
        let a = cache.get_or_prepare(&g, &cfg).unwrap();
        let b = cache.get_or_prepare(&g, &cfg).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(&a.mobility, &b.mobility));
        // A different template adds an entry.
        let h = Arc::new(benchmarks::hough());
        cache.get_or_prepare(&h, &cfg).unwrap();
        assert_eq!(cache.len(), 2);
    }
}
