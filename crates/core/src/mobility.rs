//! The design-time phase: mobility calculation (the paper's Fig. 6).
//!
//! A task's *mobility* is "how many events can be skipped before loading
//! a task without generating any additional delay". The algorithm:
//!
//! 1. Obtain the reference schedule (all mobilities 0) of the graph in
//!    isolation on the target system.
//! 2. For every task except the first in the reconfiguration sequence
//!    (its mobility is 0 by definition), tentatively increase its
//!    mobility and re-simulate with the load delayed that many events;
//!    keep increasing while the makespan does not exceed the reference,
//!    then restore the last feasible value.
//!
//! As in the paper, the probe schedules keep the mobilities already
//! assigned to earlier tasks (the assignments are jointly feasible by
//! construction). A delay whose "following event" never arrives (the
//! simulator reports [`rtr_manager::SimError`]) is infeasible and ends
//! the probing for that task.
//!
//! The per-task search is capped at `max_mobility` (default 64) to
//! bound design time on adversarial graphs; the cap is far above any
//! value reachable on the paper's graphs.

use rtr_manager::{simulate, FirstCandidatePolicy, JobSpec, ManagerConfig};
use rtr_sim::SimDuration;
use rtr_taskgraph::{reconfiguration_sequence, TaskGraph};
use std::fmt;
use std::sync::Arc;

/// Failures of the design-time phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MobilityError {
    /// The reference schedule itself could not be simulated (e.g. the
    /// graph needs more RUs than the system has and deadlocks — cannot
    /// happen for graphs produced by `rtr-taskgraph` builders, but the
    /// API reports it rather than panicking).
    ReferenceFailed(String),
}

impl fmt::Display for MobilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MobilityError::ReferenceFailed(e) => {
                write!(f, "mobility calculation: reference schedule failed: {e}")
            }
        }
    }
}

impl std::error::Error for MobilityError {}

/// Computes per-node mobilities of `graph` on the system described by
/// `cfg` (RU count and reconfiguration latency; lookahead/skip settings
/// are irrelevant for the single-graph probes and are overridden).
pub fn compute_mobility(
    graph: &Arc<TaskGraph>,
    cfg: &ManagerConfig,
) -> Result<Vec<u32>, MobilityError> {
    compute_mobility_capped(graph, cfg, 64)
}

/// [`compute_mobility`] with an explicit per-task search cap.
pub fn compute_mobility_capped(
    graph: &Arc<TaskGraph>,
    cfg: &ManagerConfig,
    max_mobility: u32,
) -> Result<Vec<u32>, MobilityError> {
    // Mobility is a property of the *demand* schedule: probes force the
    // speculative prefetcher off (besides skip events and tracing), so
    // a prefetch-enabled caller gets the same budgets as a plain one —
    // which is also what keeps the registry's mobility memo key
    // (template, RUs, latency, reuse) complete.
    let probe_cfg = ManagerConfig {
        skip_events: false,
        record_trace: false,
        reuse_enabled: cfg.reuse_enabled,
        prefetch: rtr_manager::PrefetchConfig::off(),
        ..cfg.clone()
    };
    let reference = probe_makespan(graph, &probe_cfg, None)
        .map_err(|e| MobilityError::ReferenceFailed(e.to_string()))?;

    let seq = reconfiguration_sequence(graph);
    let mut mobility = vec![0u32; graph.len()];
    // Fig. 6 step 2: every task except the first in the sequence.
    for &node in seq.iter().skip(1) {
        // Fig. 6 steps 5-7: increase while feasible.
        while mobility[node.idx()] < max_mobility {
            mobility[node.idx()] += 1;
            let feasible = match probe_makespan(graph, &probe_cfg, Some(&mobility)) {
                Ok(makespan) => makespan <= reference,
                Err(_) => false, // waits for an event that never comes
            };
            if !feasible {
                // Fig. 6 step 8: restore the previous value.
                mobility[node.idx()] -= 1;
                break;
            }
        }
    }
    Ok(mobility)
}

/// Simulates the graph in isolation with optional forced delays and
/// returns the makespan.
fn probe_makespan(
    graph: &Arc<TaskGraph>,
    cfg: &ManagerConfig,
    delays: Option<&Vec<u32>>,
) -> Result<SimDuration, rtr_manager::SimError> {
    let mut job = JobSpec::new(Arc::clone(graph));
    if let Some(d) = delays {
        job = job.with_forced_delays(Arc::new(d.clone()));
    }
    let out = simulate(cfg, &[job], &mut FirstCandidatePolicy)?;
    Ok(out.stats.makespan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_taskgraph::benchmarks;

    fn cfg() -> ManagerConfig {
        ManagerConfig::paper_default()
    }

    #[test]
    fn fig7_mobilities_match_paper() {
        // Fig. 7: for Task Graph 2 (T4..T7) on 4 RUs with 4 ms latency,
        // "the mobility of Task 5 is set to 0", "the mobility of Task 6
        // is also 0", "the mobility of Task 7 is set to 1".
        let g = Arc::new(benchmarks::fig3_tg2());
        let m = compute_mobility(&g, &cfg()).unwrap();
        assert_eq!(m, vec![0, 0, 0, 1]);
    }

    #[test]
    fn fig2_chains_have_zero_mobility() {
        let g = Arc::new(benchmarks::fig2_tg1());
        assert_eq!(compute_mobility(&g, &cfg()).unwrap(), vec![0, 0, 0]);
        let g2 = Arc::new(benchmarks::fig2_tg2());
        assert_eq!(compute_mobility(&g2, &cfg()).unwrap(), vec![0, 0]);
    }

    #[test]
    fn jpeg_chain_gains_mobility_deeper_in_the_pipe() {
        // Long executions ahead of a task create slack measured in
        // events: IDCT and ColorConv can be delayed past earlier
        // end-of-execution events for free.
        let g = Arc::new(benchmarks::jpeg());
        let m = compute_mobility(&g, &cfg()).unwrap();
        assert_eq!(m[0], 0, "first task is never probed");
        assert!(m[2] >= 1, "IDCT has event slack, got {m:?}");
        assert!(
            m[3] >= m[2],
            "later chain tasks have at least as much slack"
        );
    }

    #[test]
    fn single_node_graph_has_zero_mobility() {
        let mut b = rtr_taskgraph::TaskGraphBuilder::new("solo");
        b.node("t", rtr_taskgraph::ConfigId(1), SimDuration::from_ms(5));
        let g = Arc::new(b.build().unwrap());
        assert_eq!(compute_mobility(&g, &cfg()).unwrap(), vec![0]);
    }

    #[test]
    fn cap_bounds_search() {
        let g = Arc::new(benchmarks::jpeg());
        let m = compute_mobility_capped(&g, &cfg(), 1).unwrap();
        assert!(m.iter().all(|&x| x <= 1));
    }

    #[test]
    fn mobilities_never_degrade_reference() {
        // Joint-feasibility invariant: simulating with the full final
        // assignment reproduces the reference makespan.
        for g in [
            Arc::new(benchmarks::jpeg()),
            Arc::new(benchmarks::mpeg1()),
            Arc::new(benchmarks::hough()),
            Arc::new(benchmarks::fig3_tg2()),
        ] {
            let m = compute_mobility(&g, &cfg()).unwrap();
            let reference = probe_makespan(&g, &cfg().with_trace(false), None).unwrap();
            let delayed = probe_makespan(&g, &cfg().with_trace(false), Some(&m)).unwrap();
            assert_eq!(delayed, reference, "graph {}", g.name());
        }
    }
}
