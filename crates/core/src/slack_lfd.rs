//! Deadline-aware replacement: **Slack-Aware LFD**.
//!
//! Plain LFD ranks victims purely by forward distance — how far away
//! the resident configuration's next request is. Under QoS classes that
//! is blind to *whose* request that is: evicting a configuration whose
//! owner is already out of slack converts a free reuse into a full
//! reload exactly where the schedule can least afford one.
//!
//! Slack-Aware LFD orders victims by their in-window owner's remaining
//! slack first (`deadline − ideal makespan − now`, precomputed by the
//! engine and exposed through
//! [`DecisionContext::owner_slack_of`]): the candidate whose owner has
//! the *most* slack is evicted. A candidate with no slack information —
//! no deadline on the owner, no in-window next use, or a run without
//! deadlines at all — counts as infinitely slack, i.e. the safest
//! victim. Ties (including the all-`None` case) fall back to the exact
//! LFD rule — farthest next use, infinity beats everything, first
//! candidate among equals — so on deadline-free runs the policy decides
//! identically to [`LfdPolicy`](crate::LfdPolicy).

use rtr_hw::RuId;
use rtr_manager::{DecisionContext, ReplacementPolicy};

/// The slack-aware LFD victim-selection policy.
#[derive(Debug, Clone)]
pub struct SlackAwareLfdPolicy {
    label: String,
    /// Reusable distance buffer (see `LfdPolicy::dist_scratch`).
    dist_scratch: Vec<Option<usize>>,
    /// Reusable per-candidate owner-slack buffer; `i64::MAX` = no
    /// slack information = infinitely slack.
    slack_scratch: Vec<i64>,
}

impl SlackAwareLfdPolicy {
    /// Oracle flavour — pair with `Lookahead::All`.
    pub fn oracle() -> Self {
        Self::new("Slack LFD".to_string())
    }

    /// Local flavour with a Dynamic List of `window` graphs — pair with
    /// `Lookahead::Graphs(window)`.
    pub fn local(window: usize) -> Self {
        Self::new(format!("Slack LFD ({window})"))
    }

    fn new(label: String) -> Self {
        SlackAwareLfdPolicy {
            label,
            dist_scratch: Vec::new(),
            slack_scratch: Vec::new(),
        }
    }
}

impl ReplacementPolicy for SlackAwareLfdPolicy {
    fn name(&self) -> &str {
        &self.label
    }

    fn select_victim(&mut self, ctx: &DecisionContext<'_>) -> RuId {
        let candidates = ctx.candidates;
        debug_assert!(!candidates.is_empty());
        let mut dist = std::mem::take(&mut self.dist_scratch);
        ctx.candidate_distances_into(&mut dist);
        let mut slack = std::mem::take(&mut self.slack_scratch);
        slack.clear();
        slack.extend(
            candidates
                .iter()
                .map(|c| ctx.owner_slack_of(c.config).unwrap_or(i64::MAX)),
        );
        let mut best = 0usize;
        for i in 1..candidates.len() {
            let better = match slack[i].cmp(&slack[best]) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                // Equal slack (typically both unconstrained): exact LFD
                // order — strict `>` keeps the earliest candidate.
                std::cmp::Ordering::Equal => match (dist[i], dist[best]) {
                    (None, Some(_)) => true,
                    (Some(a), Some(b)) => a > b,
                    (None, None) | (Some(_), None) => false,
                },
            };
            if better {
                best = i;
            }
        }
        self.dist_scratch = dist;
        self.slack_scratch = slack;
        candidates[best].ru
    }

    fn warm_key(&self) -> Option<String> {
        Some(self.label.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LfdPolicy;
    use rtr_manager::{FutureView, VictimCandidate};
    use rtr_sim::SimTime;
    use rtr_taskgraph::ConfigId;

    fn cand(ru: u16, config: u32) -> VictimCandidate {
        VictimCandidate {
            ru: RuId(ru),
            config: ConfigId(config),
        }
    }

    #[test]
    fn without_slack_info_decides_like_lfd() {
        // View-backed context: no index, hence no owner slack — the
        // policy must reproduce LFD's choice on every stream.
        let streams: [&[u32]; 4] = [&[1, 2, 3], &[1, 3], &[7, 8], &[1, 2, 1]];
        let victims = [cand(0, 1), cand(1, 2), cand(2, 3)];
        for stream in streams {
            let configs: Vec<ConfigId> = stream.iter().map(|&c| ConfigId(c)).collect();
            let future = FutureView::new(vec![&configs]);
            let ctx = DecisionContext::from_view(SimTime::ZERO, ConfigId(99), &victims, &future);
            assert_eq!(
                SlackAwareLfdPolicy::oracle().select_victim(&ctx),
                LfdPolicy::oracle().select_victim(&ctx),
                "stream {stream:?}"
            );
        }
    }

    #[test]
    fn most_slack_owner_is_evicted() {
        use rtr_manager::ReuseIndex;
        use std::sync::Arc;
        // Job A (segment 0, tight slack) requests config 1 next; job B
        // (segment 1, ample slack) requests config 2. LFD alone would
        // evict config 2 (farther), and so does slack-awareness here —
        // but flip the slacks and the decision must flip too, which
        // distance order alone would not.
        let mut index = ReuseIndex::new();
        index.push_job(Arc::new(vec![ConfigId(1)]));
        index.push_job(Arc::new(vec![ConfigId(2)]));
        let window = index.window(0, usize::MAX);
        let victims = [cand(0, 1), cand(1, 2)];
        let tight_a = [0i64, 1_000_000];
        let ctx_a = DecisionContext::indexed(SimTime::ZERO, ConfigId(9), &victims, &index, window)
            .with_owner_slack(&tight_a);
        assert_eq!(
            SlackAwareLfdPolicy::oracle().select_victim(&ctx_a),
            RuId(1),
            "B has the slack: evict B's config"
        );
        let tight_b = [1_000_000i64, 0];
        let ctx_b = DecisionContext::indexed(SimTime::ZERO, ConfigId(9), &victims, &index, window)
            .with_owner_slack(&tight_b);
        assert_eq!(
            SlackAwareLfdPolicy::oracle().select_victim(&ctx_b),
            RuId(0),
            "A has the slack: evict A's config even though it is nearer"
        );
    }
}
