//! Longest Forward Distance replacement (Belady) and its windowed
//! variant, the paper's **Local LFD**.
//!
//! > "LFD selects the candidate that will be requested farthest in the
//! > future and, if it is applied over all the complete sequence of
//! > tasks that will be executed, it guarantees the optimal reuse rate.
//! > Since we apply LFD over just a subset of the total sequence of
//! > tasks (which are those that are enqueued in DL at the moment of
//! > performing a replacement), we have called it Local LFD." (§II)
//!
//! The *window* is not a property of this policy but of the manager's
//! [`Lookahead`](rtr_manager::Lookahead): the same selection logic sees
//! either the whole remaining sequence (oracle LFD) or only the Dynamic
//! List (Local LFD (w)). Distances come from the
//! [`DecisionContext`]: one ordered [`ReuseIndex`](crate::ReuseIndex)
//! lookup per candidate inside the engine (O(log n)), or the legacy
//! linear scan — whose worst-case cost the paper's Table I measures —
//! when the context is view-backed. Both backings produce identical
//! distances, so the choice never changes a decision.
//!
//! Tie-breaking follows the paper: "Local LFD selects the first
//! candidate it finds" — among equal (including never-requested)
//! distances the lowest-indexed RU wins.

use crate::stamp::ConfigStamp;
use rtr_hw::RuId;
use rtr_manager::{DecisionContext, ReplacementPolicy};
use rtr_sim::SimTime;
use rtr_taskgraph::ConfigId;

/// How [`LfdPolicy`] resolves ties (several candidates with the same —
/// typically infinite — forward distance). The paper uses
/// [`TieBreak::FirstCandidate`]; the alternatives exist for the
/// tie-break ablation called out in `DESIGN.md` §7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// "Local LFD selects the first candidate it finds" — lowest RU
    /// index (the paper's behaviour).
    #[default]
    FirstCandidate,
    /// Among tied candidates, evict the least recently used
    /// configuration — recovers LRU's temporal-locality signal exactly
    /// where the Dynamic List runs out of information.
    LeastRecentlyUsed,
}

/// The LFD / Local LFD victim-selection policy.
#[derive(Debug, Clone)]
pub struct LfdPolicy {
    /// Base name of the flavour ("LFD", "Local LFD (w)", …); the
    /// displayed label is always rebuilt from this, so tie-break
    /// overrides never stack or leave stale suffixes.
    base_label: String,
    label: String,
    tie_break: TieBreak,
    /// Touch history, only maintained for the LRU tie-break.
    last_touch: ConfigStamp,
    clock: u64,
    /// Reusable distance buffer — one decision happens per load, so a
    /// fresh Vec here would be a per-load allocation on the hot path.
    dist_scratch: Vec<Option<usize>>,
}

impl LfdPolicy {
    fn new(label: String) -> Self {
        LfdPolicy {
            base_label: label.clone(),
            label,
            tie_break: TieBreak::FirstCandidate,
            last_touch: ConfigStamp::default(),
            clock: 0,
            dist_scratch: Vec::new(),
        }
    }

    /// Oracle flavour — pair with `Lookahead::All`.
    pub fn oracle() -> Self {
        Self::new("LFD".to_string())
    }

    /// Local flavour with a Dynamic List of `window` graphs — pair with
    /// `Lookahead::Graphs(window)`.
    pub fn local(window: usize) -> Self {
        Self::new(format!("Local LFD ({window})"))
    }

    /// Local flavour with Skip Events — same selection logic; the label
    /// distinguishes the manager configuration in reports.
    pub fn local_with_skip(window: usize) -> Self {
        Self::new(format!("Local LFD ({window}) + Skip"))
    }

    /// Overrides the tie-break strategy (ablation). Idempotent: the
    /// label is rebuilt from the base name on every call, so repeated
    /// overrides never stack suffixes and switching back to
    /// [`TieBreak::FirstCandidate`] restores the plain name.
    pub fn with_tie_break(mut self, tie_break: TieBreak) -> Self {
        self.label = match tie_break {
            TieBreak::FirstCandidate => self.base_label.clone(),
            other => format!("{} [tie: {other:?}]", self.base_label),
        };
        self.tie_break = tie_break;
        self
    }

    fn touch(&mut self, config: ConfigId) {
        if self.tie_break == TieBreak::LeastRecentlyUsed {
            self.clock += 1;
            self.last_touch.set(config, self.clock);
        }
    }
}

impl ReplacementPolicy for LfdPolicy {
    fn name(&self) -> &str {
        &self.label
    }

    fn select_victim(&mut self, ctx: &DecisionContext<'_>) -> RuId {
        let candidates = ctx.candidates;
        debug_assert!(!candidates.is_empty());
        // All candidate distances at once: ordered index lookups when
        // the engine's ReuseIndex backs the context, a single joint
        // pass over the stream otherwise. `None` means "not requested
        // in the window" = infinite distance. The buffer is policy
        // state, reused across decisions.
        let mut dist = std::mem::take(&mut self.dist_scratch);
        ctx.candidate_distances_into(&mut dist);
        // Farthest distance wins; infinity beats everything; among ties
        // the configured tie-break decides (paper default: strict `>`
        // keeps the earliest candidate).
        let mut best = 0usize;
        for i in 1..candidates.len() {
            let better = match (dist[i], dist[best]) {
                (None, Some(_)) => true,
                (Some(a), Some(b)) => a > b,
                (None, None) | (Some(_), None) => false,
            };
            let tied = dist[i] == dist[best];
            let lru_override = tied
                && self.tie_break == TieBreak::LeastRecentlyUsed
                && self.last_touch.get(candidates[i].config)
                    < self.last_touch.get(candidates[best].config);
            if better || lru_override {
                best = i;
            }
        }
        self.dist_scratch = dist;
        candidates[best].ru
    }

    fn on_load_complete(&mut self, config: ConfigId, _ru: RuId, _now: SimTime) {
        self.touch(config);
    }
    fn on_reuse(&mut self, config: ConfigId, _ru: RuId, _now: SimTime) {
        self.touch(config);
    }
    fn on_exec_end(&mut self, config: ConfigId, _now: SimTime) {
        self.touch(config);
    }
    fn reset(&mut self) {
        self.last_touch.clear();
        self.clock = 0;
    }

    fn warm_key(&self) -> Option<String> {
        // The label encodes oracle-vs-local, window width and
        // tie-break, all of which change decisions.
        Some(self.label.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_manager::{FutureView, VictimCandidate};
    use rtr_sim::SimTime;
    use rtr_taskgraph::ConfigId;

    fn cand(ru: u16, config: u32) -> VictimCandidate {
        VictimCandidate {
            ru: RuId(ru),
            config: ConfigId(config),
        }
    }

    fn select(candidates: &[VictimCandidate], stream: &[u32]) -> RuId {
        let configs: Vec<ConfigId> = stream.iter().map(|&c| ConfigId(c)).collect();
        let future = FutureView::new(vec![&configs]);
        let ctx = DecisionContext::from_view(SimTime::ZERO, ConfigId(99), candidates, &future);
        LfdPolicy::oracle().select_victim(&ctx)
    }

    #[test]
    fn picks_farthest_request() {
        // Stream 1,2,3: config 3 is requested farthest.
        let victims = [cand(0, 1), cand(1, 2), cand(2, 3)];
        assert_eq!(select(&victims, &[1, 2, 3]), RuId(2));
    }

    #[test]
    fn unreferenced_beats_referenced() {
        let victims = [cand(0, 1), cand(1, 2), cand(2, 3)];
        // Config 2 never appears again.
        assert_eq!(select(&victims, &[1, 3]), RuId(1));
    }

    #[test]
    fn all_unreferenced_picks_first() {
        // The Fig. 2c narrative: all candidates have the same (infinite)
        // forward distance, so "Local LFD selects the first candidate it
        // finds, which is RU1".
        let victims = [cand(0, 1), cand(1, 2), cand(2, 3)];
        assert_eq!(select(&victims, &[7, 8]), RuId(0));
    }

    #[test]
    fn finite_ties_keep_first() {
        // Both candidates' configs first occur via... distinct positions
        // can never tie exactly, so emulate a tie with equal distance by
        // duplicate configs on different RUs.
        let victims = [cand(2, 5), cand(3, 5)];
        assert_eq!(select(&victims, &[1, 5]), RuId(2));
    }

    #[test]
    fn distances_use_first_occurrence() {
        let victims = [cand(0, 1), cand(1, 2)];
        // Config 1 appears early then late; early occurrence counts.
        assert_eq!(select(&victims, &[1, 2, 1]), RuId(1));
    }

    #[test]
    fn names() {
        assert_eq!(LfdPolicy::oracle().name(), "LFD");
        assert_eq!(LfdPolicy::local(4).name(), "Local LFD (4)");
        assert_eq!(LfdPolicy::local_with_skip(1).name(), "Local LFD (1) + Skip");
        assert_eq!(
            LfdPolicy::local(1)
                .with_tie_break(TieBreak::LeastRecentlyUsed)
                .name(),
            "Local LFD (1) [tie: LeastRecentlyUsed]"
        );
    }

    #[test]
    fn tie_break_label_never_stacks_and_reverts_cleanly() {
        // Regression: with_tie_break used to append a suffix to the
        // *current* label, so repeated calls stacked "[tie: ...]" and
        // switching back to FirstCandidate kept a stale suffix.
        let p = LfdPolicy::local(2)
            .with_tie_break(TieBreak::LeastRecentlyUsed)
            .with_tie_break(TieBreak::LeastRecentlyUsed);
        assert_eq!(p.name(), "Local LFD (2) [tie: LeastRecentlyUsed]");
        let p = p.with_tie_break(TieBreak::FirstCandidate);
        assert_eq!(p.name(), "Local LFD (2)");
        let p = p.with_tie_break(TieBreak::LeastRecentlyUsed);
        assert_eq!(p.name(), "Local LFD (2) [tie: LeastRecentlyUsed]");
    }

    #[test]
    fn lru_tie_break_prefers_stale_config_among_ties() {
        let mut p = LfdPolicy::local(1).with_tie_break(TieBreak::LeastRecentlyUsed);
        // Touch config 1 more recently than config 2.
        p.on_load_complete(ConfigId(2), RuId(1), SimTime::ZERO);
        p.on_load_complete(ConfigId(1), RuId(0), SimTime::ZERO);
        let victims = [cand(0, 1), cand(1, 2)];
        // Neither config occurs in the future: a tie. LRU tie-break
        // evicts config 2 (stale), not RU1-first.
        let configs: Vec<ConfigId> = vec![ConfigId(9)];
        let future = FutureView::new(vec![&configs]);
        let ctx = DecisionContext::from_view(SimTime::ZERO, ConfigId(99), &victims, &future);
        assert_eq!(p.select_victim(&ctx), RuId(1));
    }

    #[test]
    fn lru_tie_break_never_overrides_distance_order() {
        let mut p = LfdPolicy::local(1).with_tie_break(TieBreak::LeastRecentlyUsed);
        p.on_load_complete(ConfigId(3), RuId(2), SimTime::ZERO);
        let victims = [cand(0, 1), cand(2, 3)];
        // Config 1 occurs sooner than config 3: farthest (3) must win
        // regardless of recency.
        let configs: Vec<ConfigId> = vec![ConfigId(1), ConfigId(3)];
        let future = FutureView::new(vec![&configs]);
        let ctx = DecisionContext::from_view(SimTime::ZERO, ConfigId(99), &victims, &future);
        assert_eq!(p.select_victim(&ctx), RuId(2));
    }
}
