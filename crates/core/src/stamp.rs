//! Shared per-configuration stamp table for history-aware policies.

use rtr_sim::DenseIdMap;
use rtr_taskgraph::ConfigId;

/// Per-configuration `u64` stamps (touch clocks, load slots, claim
/// counts) over a dense-by-id table ([`DenseIdMap`]) — one array access
/// on the hot path, where even a fast hash map costs a multiply-probe.
/// `0` doubles as "never recorded", matching the policies'
/// default-to-zero convention.
#[derive(Debug, Clone, Default)]
pub(crate) struct ConfigStamp {
    stamps: DenseIdMap<u64>,
}

impl ConfigStamp {
    pub(crate) fn get(&self, config: ConfigId) -> u64 {
        self.stamps.get(config.0).copied().unwrap_or(0)
    }

    pub(crate) fn set(&mut self, config: ConfigId, value: u64) {
        *self.stamps.entry(config.0) = value;
    }

    /// Zeroes every stamp, keeping the table allocation.
    pub(crate) fn clear(&mut self) {
        self.stamps.clear_values(|v| *v = 0);
    }
}
