//! The shared design-time template registry.
//!
//! The paper's hybrid approach banks on "performing the bulk of the
//! computations at design time" — but a sweep harness that recomputes
//! those artifacts per grid cell (or worse, per job instance) pays the
//! design-time cost over and over at run time. [`TemplateRegistry`]
//! is the process-wide memo: it bundles
//!
//! * the structural artifacts of every distinct template
//!   (reconfiguration sequence, configuration projection, predecessor
//!   counts) through a shared [`rtr_taskgraph::TemplateSet`], and
//! * the *mobility* vectors of the design-time phase (the paper's
//!   Fig. 6), memoised per `(template, system)` — mobility depends on
//!   the RU count, the reconfiguration latency and the reuse switch,
//!   but not on the lookahead window or trace settings, so cells that
//!   differ only in policy share one entry.
//!
//! The registry is `Sync`: wrap it in an `Arc` and hand clones to
//! every worker of a parallel grid and to every pooled
//! [`Engine`](rtr_manager::Engine) (via
//! [`Engine::with_templates`](rtr_manager::Engine::with_templates)).
//! Every entry pins its graph `Arc`, so the pointer identity used as
//! the key can never be recycled while the registry lives.

use crate::mobility::{compute_mobility, MobilityError};
use rtr_manager::{JobSpec, ManagerConfig};
use rtr_sim::FxHashMap;
use rtr_taskgraph::{TaskGraph, TemplateArtifacts, TemplateSet};
use std::sync::{Arc, RwLock};

/// The `ManagerConfig` fields mobility actually depends on (see
/// [`compute_mobility`]): the probe schedules run a single graph with
/// `FirstCandidatePolicy`, skips off and traces off, so lookahead and
/// trace settings cannot influence the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MobilityKey {
    graph: usize,
    rus: usize,
    latency_us: u64,
    reuse_enabled: bool,
}

impl MobilityKey {
    fn new(graph: &Arc<TaskGraph>, cfg: &ManagerConfig) -> Self {
        MobilityKey {
            graph: Arc::as_ptr(graph) as usize,
            rus: cfg.rus,
            latency_us: cfg.device.reconfig_latency.as_us(),
            reuse_enabled: cfg.reuse_enabled,
        }
    }
}

/// Process-wide memo of design-time artifacts, shared across grid
/// cells, worker threads and pooled engines.
#[derive(Debug, Default)]
pub struct TemplateRegistry {
    seqs: Arc<TemplateSet>,
    mobility: RwLock<FxHashMap<MobilityKey, Arc<Vec<u32>>>>,
}

impl TemplateRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The structural-artifact table, for
    /// [`Engine::with_templates`](rtr_manager::Engine::with_templates).
    pub fn template_set(&self) -> Arc<TemplateSet> {
        Arc::clone(&self.seqs)
    }

    /// Structural artifacts of `graph` (interned).
    pub fn artifacts(&self, graph: &Arc<TaskGraph>) -> Arc<TemplateArtifacts> {
        self.seqs.get_or_compute(graph)
    }

    /// The mobility vector of `graph` on the system described by `cfg`,
    /// computed on first access per `(template, system)` pair.
    pub fn mobility(
        &self,
        graph: &Arc<TaskGraph>,
        cfg: &ManagerConfig,
    ) -> Result<Arc<Vec<u32>>, MobilityError> {
        // Intern first so the graph is pinned for the key's lifetime.
        let _ = self.seqs.get_or_compute(graph);
        let key = MobilityKey::new(graph, cfg);
        if let Some(hit) = self.mobility.read().expect("registry lock").get(&key) {
            return Ok(Arc::clone(hit));
        }
        let computed = Arc::new(compute_mobility(graph, cfg)?);
        let mut map = self.mobility.write().expect("registry lock");
        // A racing thread may have inserted meanwhile; keep the first
        // entry so every instance shares one Arc.
        Ok(Arc::clone(
            map.entry(key).or_insert_with(|| Arc::clone(&computed)),
        ))
    }

    /// Builds a job for one instance of `graph`, attaching the memoised
    /// mobility annotation when `with_mobility` is requested (policies
    /// using Skip Events need it; pure history policies do not).
    pub fn instantiate(
        &self,
        graph: &Arc<TaskGraph>,
        cfg: &ManagerConfig,
        with_mobility: bool,
    ) -> Result<JobSpec, MobilityError> {
        let job = JobSpec::new(Arc::clone(graph));
        if with_mobility {
            Ok(job.with_mobility(self.mobility(graph, cfg)?))
        } else {
            Ok(job)
        }
    }

    /// Number of distinct templates interned.
    pub fn templates(&self) -> usize {
        self.seqs.len()
    }

    /// Number of memoised `(template, system)` mobility entries.
    pub fn mobility_entries(&self) -> usize {
        self.mobility.read().expect("registry lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_taskgraph::benchmarks;

    #[test]
    fn mobility_is_memoised_per_system() {
        let reg = TemplateRegistry::new();
        let g = Arc::new(benchmarks::jpeg());
        let cfg4 = ManagerConfig::paper_default();
        let a = reg.mobility(&g, &cfg4).unwrap();
        let b = reg.mobility(&g, &cfg4).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same system, one computation");
        assert_eq!(reg.mobility_entries(), 1);
        // A different RU count is a different system.
        let cfg3 = cfg4.clone().with_rus(3);
        let c = reg.mobility(&g, &cfg3).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(reg.mobility_entries(), 2);
        // Lookahead/trace changes do NOT invalidate the memo.
        let cfg_look = cfg4.clone().with_lookahead(rtr_manager::Lookahead::All);
        let d = reg.mobility(&g, &cfg_look).unwrap();
        assert!(Arc::ptr_eq(&a, &d), "lookahead is mobility-irrelevant");
    }

    #[test]
    fn memoised_mobility_matches_direct_computation() {
        let reg = TemplateRegistry::new();
        let cfg = ManagerConfig::paper_default();
        for g in [
            Arc::new(benchmarks::jpeg()),
            Arc::new(benchmarks::mpeg1()),
            Arc::new(benchmarks::fig3_tg2()),
        ] {
            let memo = reg.mobility(&g, &cfg).unwrap();
            let direct = compute_mobility(&g, &cfg).unwrap();
            assert_eq!(*memo, direct, "graph {}", g.name());
        }
        assert_eq!(reg.templates(), 3);
    }

    #[test]
    fn instantiate_attaches_mobility_on_request() {
        let reg = TemplateRegistry::new();
        let cfg = ManagerConfig::paper_default();
        let g = Arc::new(benchmarks::hough());
        let plain = reg.instantiate(&g, &cfg, false).unwrap();
        assert!(plain.mobility.is_none());
        let annotated = reg.instantiate(&g, &cfg, true).unwrap();
        let again = reg.instantiate(&g, &cfg, true).unwrap();
        assert!(Arc::ptr_eq(
            annotated.mobility.as_ref().unwrap(),
            again.mobility.as_ref().unwrap()
        ));
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = Arc::new(TemplateRegistry::new());
        let g = Arc::new(benchmarks::jpeg());
        let cfg = ManagerConfig::paper_default();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let g = Arc::clone(&g);
                let cfg = cfg.clone();
                std::thread::spawn(move || reg.mobility(&g, &cfg).unwrap().len())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), g.len());
        }
        assert_eq!(reg.mobility_entries(), 1);
    }
}
