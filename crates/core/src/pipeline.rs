//! End-to-end preparation pipelines: hybrid (design-time) vs purely
//! run-time.
//!
//! The paper's headline efficiency claim: "by performing the bulk of
//! the computations at design time, we reduce the execution time of the
//! replacement technique by 10 times with respect to an equivalent
//! purely run-time one." The two functions here make that comparison
//! concrete and benchmarkable:
//!
//! * [`prepare_jobs_hybrid`] — the mobility of each *template* is
//!   computed once (design time) and every instance reuses it; the
//!   per-arrival run-time cost is a cache lookup.
//! * [`prepare_jobs_runtime`] — an "equivalent purely run-time"
//!   pipeline recomputes the mobility at every graph arrival, the way a
//!   system without the design-time phase would have to.
//!
//! Both produce identical job sequences (same annotations), so the
//! simulated schedules agree — only the preparation cost differs.

use crate::annotate::TemplateCache;
use crate::mobility::{compute_mobility, MobilityError};
use rtr_manager::{JobSpec, ManagerConfig};
use rtr_taskgraph::TaskGraph;
use std::sync::Arc;

/// Annotates an application sequence the hybrid way: one design-time
/// mobility computation per distinct template.
pub fn prepare_jobs_hybrid(
    sequence: &[Arc<TaskGraph>],
    cfg: &ManagerConfig,
) -> Result<Vec<JobSpec>, MobilityError> {
    let mut cache = TemplateCache::new();
    sequence
        .iter()
        .map(|g| Ok(cache.get_or_prepare(g, cfg)?.instantiate()))
        .collect()
}

/// Annotates an application sequence the purely run-time way: mobility
/// recomputed at every arrival (no template cache). Functionally
/// identical, deliberately wasteful — this is the baseline of the
/// paper's 10× claim.
pub fn prepare_jobs_runtime(
    sequence: &[Arc<TaskGraph>],
    cfg: &ManagerConfig,
) -> Result<Vec<JobSpec>, MobilityError> {
    sequence
        .iter()
        .map(|g| {
            let mobility = Arc::new(compute_mobility(g, cfg)?);
            Ok(JobSpec::new(Arc::clone(g)).with_mobility(mobility))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_taskgraph::benchmarks;

    #[test]
    fn hybrid_and_runtime_agree() {
        let cfg = ManagerConfig::paper_default();
        let tpls = [
            Arc::new(benchmarks::jpeg()),
            Arc::new(benchmarks::mpeg1()),
            Arc::new(benchmarks::hough()),
        ];
        let seq: Vec<Arc<TaskGraph>> = (0..9).map(|i| Arc::clone(&tpls[i % 3])).collect();
        let hybrid = prepare_jobs_hybrid(&seq, &cfg).unwrap();
        let runtime = prepare_jobs_runtime(&seq, &cfg).unwrap();
        assert_eq!(hybrid.len(), runtime.len());
        for (h, r) in hybrid.iter().zip(&runtime) {
            assert_eq!(h.mobility.as_deref(), r.mobility.as_deref());
            assert!(Arc::ptr_eq(&h.graph, &r.graph));
        }
    }

    #[test]
    fn hybrid_shares_annotations_across_instances() {
        let cfg = ManagerConfig::paper_default();
        let g = Arc::new(benchmarks::jpeg());
        let jobs = prepare_jobs_hybrid(&[Arc::clone(&g), Arc::clone(&g)], &cfg).unwrap();
        let a = jobs[0].mobility.as_ref().unwrap();
        let b = jobs[1].mobility.as_ref().unwrap();
        assert!(Arc::ptr_eq(a, b), "hybrid instances share one mobility Arc");
    }
}
