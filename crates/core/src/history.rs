//! History-based replacement baselines.
//!
//! LRU is the paper's primary baseline ("the scheduler uses LRU, the
//! reuse rate is very low"); FIFO, MRU, LFU and Random extend the
//! comparison for the ablation experiments. All of them key their state
//! by *configuration* (not RU): the quantity being cached is the
//! bitstream.
//!
//! A configuration counts as "used" when it is loaded, reused, or when
//! a task running it starts or finishes — i.e. recency reflects the
//! last time the configuration was touched by the schedule.

use crate::stamp::ConfigStamp;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtr_hw::RuId;
use rtr_manager::{DecisionContext, ReplacementPolicy};
use rtr_sim::SimTime;
use rtr_taskgraph::ConfigId;

/// Least Recently Used.
#[derive(Debug, Clone, Default)]
pub struct LruPolicy {
    /// Monotonic touch counter per configuration (larger = more recent).
    last_touch: ConfigStamp,
    clock: u64,
}

impl LruPolicy {
    /// Fresh policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn touch(&mut self, config: ConfigId) {
        self.clock += 1;
        self.last_touch.set(config, self.clock);
    }
}

impl ReplacementPolicy for LruPolicy {
    fn name(&self) -> &str {
        "LRU"
    }

    fn select_victim(&mut self, ctx: &DecisionContext<'_>) -> RuId {
        // Least-recent touch wins; configurations never touched (only
        // possible right after reset) count as touch 0. Ties keep the
        // first (lowest RU).
        let mut best = 0usize;
        let mut best_touch = u64::MAX;
        for (i, cand) in ctx.candidates.iter().enumerate() {
            let touch = self.last_touch.get(cand.config);
            if touch < best_touch {
                best_touch = touch;
                best = i;
            }
        }
        ctx.candidates[best].ru
    }

    fn on_load_complete(&mut self, config: ConfigId, _ru: RuId, _now: SimTime) {
        self.touch(config);
    }
    fn on_reuse(&mut self, config: ConfigId, _ru: RuId, _now: SimTime) {
        self.touch(config);
    }
    fn on_exec_start(&mut self, config: ConfigId, _now: SimTime) {
        self.touch(config);
    }
    fn on_exec_end(&mut self, config: ConfigId, _now: SimTime) {
        self.touch(config);
    }
    fn reset(&mut self) {
        self.last_touch.clear();
        self.clock = 0;
    }

    fn warm_key(&self) -> Option<String> {
        Some("LRU".to_string())
    }
}

/// Most Recently Used — pathological for looping workloads, included as
/// an ablation extreme.
#[derive(Debug, Clone, Default)]
pub struct MruPolicy {
    last_touch: ConfigStamp,
    clock: u64,
}

impl MruPolicy {
    /// Fresh policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn touch(&mut self, config: ConfigId) {
        self.clock += 1;
        self.last_touch.set(config, self.clock);
    }
}

impl ReplacementPolicy for MruPolicy {
    fn name(&self) -> &str {
        "MRU"
    }

    fn select_victim(&mut self, ctx: &DecisionContext<'_>) -> RuId {
        let mut best = 0usize;
        let mut best_touch = 0u64;
        for (i, cand) in ctx.candidates.iter().enumerate() {
            let touch = self.last_touch.get(cand.config);
            if touch > best_touch {
                best_touch = touch;
                best = i;
            }
        }
        ctx.candidates[best].ru
    }

    fn on_load_complete(&mut self, config: ConfigId, _ru: RuId, _now: SimTime) {
        self.touch(config);
    }
    fn on_reuse(&mut self, config: ConfigId, _ru: RuId, _now: SimTime) {
        self.touch(config);
    }
    fn on_exec_start(&mut self, config: ConfigId, _now: SimTime) {
        self.touch(config);
    }
    fn on_exec_end(&mut self, config: ConfigId, _now: SimTime) {
        self.touch(config);
    }
    fn reset(&mut self) {
        self.last_touch.clear();
        self.clock = 0;
    }

    fn warm_key(&self) -> Option<String> {
        Some("MRU".to_string())
    }
}

/// First In, First Out — evicts the configuration *loaded* longest ago;
/// reuses do not refresh the load time (classic FIFO).
#[derive(Debug, Clone, Default)]
pub struct FifoPolicy {
    loaded_at: ConfigStamp,
    clock: u64,
}

impl FifoPolicy {
    /// Fresh policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for FifoPolicy {
    fn name(&self) -> &str {
        "FIFO"
    }

    fn select_victim(&mut self, ctx: &DecisionContext<'_>) -> RuId {
        let mut best = 0usize;
        let mut best_seq = u64::MAX;
        for (i, cand) in ctx.candidates.iter().enumerate() {
            let seq = self.loaded_at.get(cand.config);
            if seq < best_seq {
                best_seq = seq;
                best = i;
            }
        }
        ctx.candidates[best].ru
    }

    fn on_load_complete(&mut self, config: ConfigId, _ru: RuId, _now: SimTime) {
        self.clock += 1;
        self.loaded_at.set(config, self.clock);
    }
    fn reset(&mut self) {
        self.loaded_at.clear();
        self.clock = 0;
    }

    fn warm_key(&self) -> Option<String> {
        Some("FIFO".to_string())
    }
}

/// Least Frequently Used — evicts the configuration claimed (loaded or
/// reused) the fewest times; ties keep the first candidate.
#[derive(Debug, Clone, Default)]
pub struct LfuPolicy {
    claims: ConfigStamp,
}

impl LfuPolicy {
    /// Fresh policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for LfuPolicy {
    fn name(&self) -> &str {
        "LFU"
    }

    fn select_victim(&mut self, ctx: &DecisionContext<'_>) -> RuId {
        let mut best = 0usize;
        let mut best_count = u64::MAX;
        for (i, cand) in ctx.candidates.iter().enumerate() {
            let count = self.claims.get(cand.config);
            if count < best_count {
                best_count = count;
                best = i;
            }
        }
        ctx.candidates[best].ru
    }

    fn on_load_complete(&mut self, config: ConfigId, _ru: RuId, _now: SimTime) {
        self.claims.set(config, self.claims.get(config) + 1);
    }
    fn on_reuse(&mut self, config: ConfigId, _ru: RuId, _now: SimTime) {
        self.claims.set(config, self.claims.get(config) + 1);
    }
    fn reset(&mut self) {
        self.claims.clear();
    }

    fn warm_key(&self) -> Option<String> {
        Some("LFU".to_string())
    }
}

/// Uniform-random victim, seeded for reproducibility.
#[derive(Debug)]
pub struct RandomPolicy {
    seed: u64,
    rng: StdRng,
}

impl RandomPolicy {
    /// Policy drawing victims from a deterministic stream.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn name(&self) -> &str {
        "Random"
    }

    fn select_victim(&mut self, ctx: &DecisionContext<'_>) -> RuId {
        let i = self.rng.random_range(0..ctx.candidates.len());
        ctx.candidates[i].ru
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_manager::{FutureView, VictimCandidate};

    fn cand(ru: u16, config: u32) -> VictimCandidate {
        VictimCandidate {
            ru: RuId(ru),
            config: ConfigId(config),
        }
    }

    fn ctx_select(policy: &mut dyn ReplacementPolicy, candidates: &[VictimCandidate]) -> RuId {
        let future = FutureView::empty();
        let ctx = DecisionContext::from_view(SimTime::ZERO, ConfigId(99), candidates, &future);
        policy.select_victim(&ctx)
    }

    #[test]
    fn lru_evicts_least_recent_touch() {
        let mut p = LruPolicy::new();
        p.on_load_complete(ConfigId(1), RuId(0), SimTime::ZERO);
        p.on_load_complete(ConfigId(2), RuId(1), SimTime::ZERO);
        p.on_exec_end(ConfigId(1), SimTime::from_ms(5));
        // Config 2 is now least recently touched.
        assert_eq!(ctx_select(&mut p, &[cand(0, 1), cand(1, 2)]), RuId(1));
    }

    #[test]
    fn lru_reuse_refreshes() {
        let mut p = LruPolicy::new();
        p.on_load_complete(ConfigId(1), RuId(0), SimTime::ZERO);
        p.on_load_complete(ConfigId(2), RuId(1), SimTime::ZERO);
        p.on_reuse(ConfigId(1), RuId(0), SimTime::from_ms(9));
        assert_eq!(ctx_select(&mut p, &[cand(0, 1), cand(1, 2)]), RuId(1));
    }

    #[test]
    fn mru_evicts_most_recent() {
        let mut p = MruPolicy::new();
        p.on_load_complete(ConfigId(1), RuId(0), SimTime::ZERO);
        p.on_load_complete(ConfigId(2), RuId(1), SimTime::ZERO);
        assert_eq!(ctx_select(&mut p, &[cand(0, 1), cand(1, 2)]), RuId(1));
    }

    #[test]
    fn fifo_ignores_reuse() {
        let mut p = FifoPolicy::new();
        p.on_load_complete(ConfigId(1), RuId(0), SimTime::ZERO);
        p.on_load_complete(ConfigId(2), RuId(1), SimTime::ZERO);
        // Reusing 1 does not refresh its load slot.
        p.on_reuse(ConfigId(1), RuId(0), SimTime::from_ms(20));
        assert_eq!(ctx_select(&mut p, &[cand(0, 1), cand(1, 2)]), RuId(0));
    }

    #[test]
    fn lfu_evicts_least_claimed() {
        let mut p = LfuPolicy::new();
        p.on_load_complete(ConfigId(1), RuId(0), SimTime::ZERO);
        p.on_reuse(ConfigId(1), RuId(0), SimTime::ZERO);
        p.on_load_complete(ConfigId(2), RuId(1), SimTime::ZERO);
        assert_eq!(ctx_select(&mut p, &[cand(0, 1), cand(1, 2)]), RuId(1));
    }

    #[test]
    fn random_is_deterministic_per_seed_and_valid() {
        let candidates = [cand(0, 1), cand(1, 2), cand(2, 3)];
        let picks1: Vec<RuId> = {
            let mut p = RandomPolicy::new(7);
            (0..10).map(|_| ctx_select(&mut p, &candidates)).collect()
        };
        let picks2: Vec<RuId> = {
            let mut p = RandomPolicy::new(7);
            (0..10).map(|_| ctx_select(&mut p, &candidates)).collect()
        };
        assert_eq!(picks1, picks2);
        assert!(picks1.iter().all(|r| r.0 < 3));
    }

    #[test]
    fn reset_clears_history() {
        let mut p = LruPolicy::new();
        p.on_load_complete(ConfigId(2), RuId(1), SimTime::ZERO);
        p.reset();
        // After reset both candidates are untouched; first wins.
        assert_eq!(ctx_select(&mut p, &[cand(0, 1), cand(1, 2)]), RuId(0));
    }
}
