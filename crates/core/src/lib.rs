//! The paper's contribution: configuration-replacement policies that
//! maximise task reuse, and the hybrid design-time/run-time pipeline.
//!
//! * [`lfd`] — the Longest-Forward-Distance policy. With the manager's
//!   `Lookahead::All` it is Belady's clairvoyant LFD (the paper's
//!   optimal-reuse upper bound); with `Lookahead::Graphs(w)` it is the
//!   paper's **Local LFD (w)**, which only sees the Dynamic List.
//! * [`history`] — the run-time baselines: LRU (the paper's main
//!   comparison point), and FIFO / MRU / LFU / Random for the extended
//!   ablations.
//! * [`mobility`] — the design-time phase (the paper's Fig. 6): per-task
//!   *mobility* values obtained by probing delayed schedules against the
//!   reference ASAP schedule.
//! * [`annotate`] — bundling graphs with their design-time artifacts and
//!   caching them per template (the "bulk of the computations at design
//!   time").
//! * [`pipeline`] — end-to-end helpers that build annotated job
//!   sequences the hybrid way (precomputed once per template) or the
//!   purely run-time way (recomputed at every arrival), backing the
//!   paper's 10× claim.
//! * [`slack_lfd`] — the deadline-aware **Slack-Aware LFD**: victims
//!   ordered by their owner's remaining slack, LFD order as tie-break
//!   (identical to LFD on deadline-free runs).
//! * [`registry`] — the process-wide design-time memo
//!   ([`TemplateRegistry`]): structural artifacts plus mobility
//!   vectors, shared across grid cells, worker threads and pooled
//!   engines.

pub mod annotate;
pub mod history;
pub mod lfd;
pub mod mobility;
pub mod pipeline;
pub mod registry;
pub mod slack_lfd;
mod stamp;

pub use annotate::{AnnotatedTemplate, TemplateCache};
pub use history::{FifoPolicy, LfuPolicy, LruPolicy, MruPolicy, RandomPolicy};
pub use lfd::{LfdPolicy, TieBreak};
pub use mobility::{compute_mobility, MobilityError};
pub use registry::TemplateRegistry;
pub use slack_lfd::SlackAwareLfdPolicy;
// The incremental next-occurrence index lives in `rtr-manager` (the
// engine maintains it), but it is the paper's decision-layer machinery,
// so the canonical path re-exports here.
pub use rtr_manager::{DecisionContext, ReuseIndex, ReuseWindow};
