//! Device presets.
//!
//! A [`DeviceSpec`] bundles the hardware parameters the simulator needs:
//! reconfiguration latency, per-RU bitstream size and the energy cost of
//! one reconfiguration. The figures are representative of the devices
//! the paper mentions (Virtex-II Pro XC2VP30 in its measurements,
//! Virtex-5 for the latency citation) — the *experiments* only depend on
//! the latency, which the paper fixes at 4 ms in every example.

use rtr_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Parameters of a reconfigurable device partitioned into equal RUs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable device name.
    pub name: String,
    /// Latency of one RU reconfiguration.
    pub reconfig_latency: SimDuration,
    /// Size of one RU's partial bitstream in bytes (drives bus-traffic
    /// accounting).
    pub bitstream_bytes: u64,
    /// Energy of one reconfiguration, in microjoules (drives the energy
    /// accounting; the paper's ref.&nbsp;4 reports tens of mJ per load).
    pub energy_per_load_uj: u64,
}

impl DeviceSpec {
    /// The configuration used throughout the paper's examples and
    /// experiments: 4 ms per reconfiguration.
    pub fn paper_default() -> Self {
        DeviceSpec {
            name: "paper-default (4ms)".to_string(),
            reconfig_latency: SimDuration::from_ms(4),
            // ~1/4 of a XC2VP30 full bitstream (~1.4 MB) per RU.
            bitstream_bytes: 350 * 1024,
            // ~20 mJ per partial reconfiguration.
            energy_per_load_uj: 20_000,
        }
    }

    /// A Virtex-II Pro XC2VP30-flavoured preset (the paper's measurement
    /// platform).
    pub fn virtex2_pro() -> Self {
        DeviceSpec {
            name: "Virtex-II Pro XC2VP30".to_string(),
            reconfig_latency: SimDuration::from_ms(4),
            bitstream_bytes: 350 * 1024,
            energy_per_load_uj: 20_000,
        }
    }

    /// A Virtex-5-flavoured preset (larger bitstreams, faster port).
    pub fn virtex5() -> Self {
        DeviceSpec {
            name: "Virtex-5".to_string(),
            reconfig_latency: SimDuration::from_ms(2),
            bitstream_bytes: 900 * 1024,
            energy_per_load_uj: 35_000,
        }
    }

    /// Same device with a different reconfiguration latency — used by
    /// the latency-sweep ablation.
    pub fn with_latency(mut self, latency: SimDuration) -> Self {
        self.reconfig_latency = latency;
        self
    }

    /// A representative repair time for a hard-faulted RU on this
    /// device: re-initialising and scrubbing a region costs on the
    /// order of several full reconfigurations (5× here). Fault plans
    /// use it as the default heal delay.
    pub fn default_repair_latency(&self) -> SimDuration {
        self.reconfig_latency * 5
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        DeviceSpec::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_4ms() {
        assert_eq!(
            DeviceSpec::paper_default().reconfig_latency,
            SimDuration::from_ms(4)
        );
    }

    #[test]
    fn with_latency_overrides() {
        let d = DeviceSpec::paper_default().with_latency(SimDuration::from_ms(8));
        assert_eq!(d.reconfig_latency, SimDuration::from_ms(8));
        assert_eq!(d.bitstream_bytes, 350 * 1024);
    }

    #[test]
    fn serde_round_trip() {
        let d = DeviceSpec::virtex5();
        let json = serde_json::to_string(&d).unwrap();
        let back: DeviceSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
