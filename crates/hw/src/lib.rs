//! Hardware model of the multi-RU reconfigurable system.
//!
//! The paper targets "a reconfigurable multitasking system that is
//! composed of a set of equal-sized reconfigurable units (RUs)" (its
//! refs [7, 8]) with a single reconfiguration circuitry: only one
//! configuration can be loading at any time, each load taking a fixed
//! latency (4 ms in all of the paper's examples).
//!
//! This crate models exactly that:
//!
//! * [`RuPool`] — the RUs with a checked state machine per unit
//!   (`Empty → Loading → Loaded ⇄ Executing`), including the *claim*
//!   notion the replacement semantics need (a loaded-but-not-yet-run
//!   task must not be evicted; a task that finished its execution is an
//!   eviction candidate even while its graph is still running).
//! * [`ReconfigController`] — the single reconfiguration port.
//! * [`device`] — named device presets (latency, bitstream size, energy
//!   per load) with the paper's 4 ms setup as the default.
//! * [`energy`] — energy/bus-traffic accounting: the paper argues that
//!   raising reuse cuts energy and memory pressure because every
//!   reconfiguration moves a full bitstream from external memory.
//! * [`bitstream`] — a synthetic bitstream repository standing in for
//!   the external configuration memory.

pub mod bitstream;
pub mod controller;
pub mod device;
pub mod energy;
pub mod ru;

pub use bitstream::BitstreamRepository;
pub use controller::{InFlight, LoadLane, ReconfigController};
pub use device::DeviceSpec;
pub use energy::{EnergyModel, TrafficStats};
pub use ru::{RuId, RuPool, RuState};
