//! Reconfigurable-unit (RU) pool with a checked state machine.
//!
//! State machine per RU:
//!
//! ```text
//!            begin_load                finish_load
//!   Empty ───────────────▶ Loading ───────────────▶ Loaded{claimed}
//!     ▲                                                 │  ▲
//!     │                                begin_execution  │  │ finish_execution
//!     │                                                 ▼  │ (→ unclaimed)
//!     └───(never: configs persist)                   Executing
//!
//!   Loaded{unclaimed} ── claim_for_reuse ──▶ Loaded{claimed}
//!   Loaded{unclaimed} ── begin_load(evict) ─▶ Loading (new config)
//! ```
//!
//! The *claim* flag encodes the eviction rule reverse-engineered from the
//! paper's figures: a configuration is evictable exactly when it is
//! resident and **unclaimed** — i.e. the task that loaded or reused it
//! has already finished executing. (In Fig. 3b, right after task 4
//! finishes, tasks 1 *and* 4 are the two candidates, while the
//! loaded-but-not-run tasks 5 and 6 are not.)

use rtr_sim::DenseIdMap;
use rtr_taskgraph::ConfigId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-configuration bitmasks of the RUs where that configuration is
/// resident *and unclaimed* — the set [`RuPool::find_reusable`] probes
/// once per sequence head, turning the reuse check from an O(RUs) state
/// scan into a `trailing_zeros`. Only maintained for pools of ≤ 64 RUs
/// (one `u64` of mask); larger pools fall back to the scan.
#[derive(Debug, Clone, Default)]
struct ReusableTable {
    masks: DenseIdMap<u64>,
}

impl ReusableTable {
    fn mark(&mut self, config: ConfigId, ru: usize) {
        *self.masks.entry(config.0) |= 1 << ru;
    }

    fn unmark(&mut self, config: ConfigId, ru: usize) {
        *self.masks.entry(config.0) &= !(1 << ru);
    }

    fn mask(&self, config: ConfigId) -> u64 {
        self.masks.get(config.0).copied().unwrap_or(0)
    }

    fn clear(&mut self) {
        self.masks.clear_values(|m| *m = 0);
    }
}

/// Index of a reconfigurable unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct RuId(pub u16);

impl RuId {
    /// Index usable for slice access.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // 1-based like the paper's figures (RU1..RU4).
        write!(f, "RU{}", self.0 + 1)
    }
}

/// State of one RU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuState {
    /// Nothing resident (only at system start).
    Empty,
    /// A reconfiguration is writing `config` into this RU.
    Loading {
        /// Configuration being written.
        config: ConfigId,
    },
    /// `config` is resident. `claimed` is true while a pending task of
    /// the active graph owns it (not evictable).
    Loaded {
        /// Resident configuration.
        config: ConfigId,
        /// True while a not-yet-finished task owns the configuration.
        claimed: bool,
    },
    /// The task using `config` is currently executing.
    Executing {
        /// Resident configuration.
        config: ConfigId,
    },
    /// The unit hard-faulted and is out of the pool: nothing resident,
    /// no placement, claim or prefetch may target it until it heals
    /// back to [`RuState::Empty`].
    Quarantined,
}

impl RuState {
    /// The configuration physically present in the RU, if any.
    pub fn resident_config(self) -> Option<ConfigId> {
        match self {
            RuState::Empty | RuState::Quarantined => None,
            RuState::Loading { config }
            | RuState::Loaded { config, .. }
            | RuState::Executing { config } => Some(config),
        }
    }

    /// True when the replacement module may evict this RU's contents.
    pub fn is_eviction_candidate(self) -> bool {
        matches!(self, RuState::Loaded { claimed: false, .. })
    }
}

/// Errors raised on invalid state transitions — these indicate manager
/// bugs, so they carry enough context to debug the event trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionError {
    /// The RU on which the transition was attempted.
    pub ru: RuId,
    /// The state it was in.
    pub found: RuState,
    /// What the caller attempted.
    pub attempted: &'static str,
}

impl fmt::Display for TransitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid RU transition: {} on {} in state {:?}",
            self.attempted, self.ru, self.found
        )
    }
}

impl std::error::Error for TransitionError {}

/// The pool of equal-sized RUs.
#[derive(Debug, Clone)]
pub struct RuPool {
    states: Vec<RuState>,
    /// Number of RUs currently in [`RuState::Empty`] — lets the hot
    /// "is there a free RU?" check short-circuit once the pool fills
    /// (only a cancelled speculative load can re-empty an RU).
    empties: usize,
    /// Unclaimed-resident masks per configuration (see
    /// [`ReusableTable`]); maintained only when `mask_tracking`.
    reusable: ReusableTable,
    /// True for pools of ≤ 64 RUs, where one `u64` covers the pool.
    mask_tracking: bool,
    /// Per-RU upset flags: `true` marks a resident, unclaimed bitstream
    /// silently invalidated by an SEU — physically present but never
    /// reusable until the RU is rewritten.
    corrupt: Vec<bool>,
    /// Number of RUs currently in [`RuState::Quarantined`].
    quarantined: usize,
}

impl RuPool {
    /// Creates `count` empty RUs.
    ///
    /// # Panics
    /// Panics if `count` is zero or exceeds `u16::MAX`.
    pub fn new(count: usize) -> Self {
        assert!(count > 0, "a reconfigurable system needs at least one RU");
        assert!(count <= u16::MAX as usize, "RU count exceeds RuId range");
        RuPool {
            states: vec![RuState::Empty; count],
            empties: count,
            reusable: ReusableTable::default(),
            mask_tracking: count <= 64,
            corrupt: vec![false; count],
            quarantined: 0,
        }
    }

    /// Number of RUs.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Always false (constructor requires ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// All RU ids in index order.
    pub fn ids(&self) -> impl Iterator<Item = RuId> + '_ {
        (0..self.states.len() as u16).map(RuId)
    }

    /// Current state of `ru`.
    pub fn state(&self, ru: RuId) -> RuState {
        self.states[ru.idx()]
    }

    /// Lowest-indexed empty RU, if any. O(1) when the pool is full —
    /// the steady state of every run after warm-up.
    pub fn first_empty(&self) -> Option<RuId> {
        if self.empties == 0 {
            return None;
        }
        self.ids().find(|&r| self.states[r.idx()] == RuState::Empty)
    }

    /// The RU where `config` is resident and **unclaimed** (available
    /// for a reuse claim), lowest index first. One mask probe plus a
    /// `trailing_zeros` on pools of ≤ 64 RUs; a state scan otherwise.
    pub fn find_reusable(&self, config: ConfigId) -> Option<RuId> {
        if self.mask_tracking {
            let mask = self.reusable.mask(config);
            if mask == 0 {
                return None;
            }
            let ru = RuId(mask.trailing_zeros() as u16);
            debug_assert!(matches!(
                self.states[ru.idx()],
                RuState::Loaded { config: c, claimed: false } if c == config
            ));
            return Some(ru);
        }
        self.ids().find(|&r| {
            !self.corrupt[r.idx()]
                && matches!(
                    self.states[r.idx()],
                    RuState::Loaded { config: c, claimed: false } if c == config
                )
        })
    }

    /// Finds a reusable RU for `config` and claims it in one step —
    /// the fused form of [`RuPool::find_reusable`] +
    /// [`RuPool::claim_for_reuse`] the engine's reuse cascade calls
    /// once per sequence head.
    pub fn try_claim_reuse(&mut self, config: ConfigId) -> Option<RuId> {
        let ru = self.find_reusable(config)?;
        if self.mask_tracking {
            self.reusable.unmark(config, ru.idx());
        }
        self.states[ru.idx()] = RuState::Loaded {
            config,
            claimed: true,
        };
        Some(ru)
    }

    /// Whether `config` is resident anywhere (any state). Upset
    /// residents do not count — their bits are garbage, so a re-fetch
    /// of the same configuration is useful, not redundant.
    pub fn is_resident(&self, config: ConfigId) -> bool {
        self.ids().any(|r| {
            !self.corrupt[r.idx()] && self.states[r.idx()].resident_config() == Some(config)
        })
    }

    /// Eviction candidates in RU-index order (the paper's tie-break:
    /// "Local LFD selects the first candidate it finds").
    pub fn eviction_candidates(&self) -> Vec<RuId> {
        self.iter_eviction_candidates().map(|(r, _)| r).collect()
    }

    /// Eviction candidates with their resident configurations, in
    /// RU-index order — the allocation-free form the engine's decision
    /// hot path fills its pooled scratch buffer from.
    pub fn iter_eviction_candidates(&self) -> impl Iterator<Item = (RuId, ConfigId)> + '_ {
        self.ids().filter_map(|r| match self.states[r.idx()] {
            RuState::Loaded {
                config,
                claimed: false,
            } => Some((r, config)),
            _ => None,
        })
    }

    /// Returns every RU to [`RuState::Empty`], keeping the pool's
    /// allocation — the power-on state a pooled engine resets to.
    pub fn reset(&mut self) {
        self.states.fill(RuState::Empty);
        self.empties = self.states.len();
        self.reusable.clear();
        self.corrupt.fill(false);
        self.quarantined = 0;
    }

    /// Resets and, if `count` differs from the current size, resizes the
    /// pool (used when a pooled engine is re-targeted at another system
    /// configuration).
    ///
    /// # Panics
    /// Panics if `count` is zero or exceeds `u16::MAX`.
    pub fn reset_to(&mut self, count: usize) {
        assert!(count > 0, "a reconfigurable system needs at least one RU");
        assert!(count <= u16::MAX as usize, "RU count exceeds RuId range");
        self.states.clear();
        self.states.resize(count, RuState::Empty);
        self.empties = count;
        self.reusable.clear();
        self.mask_tracking = count <= 64;
        self.corrupt.clear();
        self.corrupt.resize(count, false);
        self.quarantined = 0;
    }

    /// Starts loading `config` into `ru`, evicting any unclaimed
    /// resident configuration.
    pub fn begin_load(&mut self, ru: RuId, config: ConfigId) -> Result<(), TransitionError> {
        match self.states[ru.idx()] {
            RuState::Empty => {
                self.empties -= 1;
                self.states[ru.idx()] = RuState::Loading { config };
                Ok(())
            }
            RuState::Loaded {
                config: evicted,
                claimed: false,
            } => {
                if self.mask_tracking {
                    self.reusable.unmark(evicted, ru.idx());
                }
                // Rewriting the unit repairs any pending upset.
                self.corrupt[ru.idx()] = false;
                self.states[ru.idx()] = RuState::Loading { config };
                Ok(())
            }
            found => Err(TransitionError {
                ru,
                found,
                attempted: "begin_load",
            }),
        }
    }

    /// Completes the in-flight load; the new configuration starts out
    /// claimed by the task that requested it.
    pub fn finish_load(&mut self, ru: RuId) -> Result<ConfigId, TransitionError> {
        match self.states[ru.idx()] {
            RuState::Loading { config } => {
                self.states[ru.idx()] = RuState::Loaded {
                    config,
                    claimed: true,
                };
                Ok(config)
            }
            found => Err(TransitionError {
                ru,
                found,
                attempted: "finish_load",
            }),
        }
    }

    /// Completes the in-flight load *unclaimed* — the landing state of a
    /// speculative prefetch: no task owns the configuration yet, so it
    /// is immediately a reuse and eviction candidate.
    pub fn finish_load_unclaimed(&mut self, ru: RuId) -> Result<ConfigId, TransitionError> {
        match self.states[ru.idx()] {
            RuState::Loading { config } => {
                if self.mask_tracking {
                    self.reusable.mark(config, ru.idx());
                }
                self.states[ru.idx()] = RuState::Loaded {
                    config,
                    claimed: false,
                };
                Ok(config)
            }
            found => Err(TransitionError {
                ru,
                found,
                attempted: "finish_load_unclaimed",
            }),
        }
    }

    /// Aborts an in-flight load: the partially written bitstream is
    /// discarded and the RU returns to [`RuState::Empty`] (whatever was
    /// resident before was already evicted at load start). Used when a
    /// demand load cancels a speculative prefetch mid-write.
    pub fn cancel_load(&mut self, ru: RuId) -> Result<ConfigId, TransitionError> {
        match self.states[ru.idx()] {
            RuState::Loading { config } => {
                self.states[ru.idx()] = RuState::Empty;
                self.empties += 1;
                Ok(config)
            }
            found => Err(TransitionError {
                ru,
                found,
                attempted: "cancel_load",
            }),
        }
    }

    /// Claims a resident unclaimed configuration for reuse.
    pub fn claim_for_reuse(&mut self, ru: RuId, config: ConfigId) -> Result<(), TransitionError> {
        match self.states[ru.idx()] {
            RuState::Loaded {
                config: c,
                claimed: false,
            } if c == config => {
                if self.mask_tracking {
                    self.reusable.unmark(config, ru.idx());
                }
                self.states[ru.idx()] = RuState::Loaded {
                    config,
                    claimed: true,
                };
                Ok(())
            }
            found => Err(TransitionError {
                ru,
                found,
                attempted: "claim_for_reuse",
            }),
        }
    }

    /// Moves a claimed RU into execution.
    pub fn begin_execution(&mut self, ru: RuId) -> Result<ConfigId, TransitionError> {
        match self.states[ru.idx()] {
            RuState::Loaded {
                config,
                claimed: true,
            } => {
                self.states[ru.idx()] = RuState::Executing { config };
                Ok(config)
            }
            found => Err(TransitionError {
                ru,
                found,
                attempted: "begin_execution",
            }),
        }
    }

    /// Revokes an in-flight execution — the preemption path. The task
    /// stops immediately; its configuration stays resident and becomes
    /// **unclaimed** (a reuse and eviction candidate), so a preemptor
    /// can always find a victim RU. Whether the interrupted work is
    /// replayed from scratch (kill) or resumed from a checkpoint is the
    /// manager's accounting, not the pool's.
    pub fn revoke_execution(&mut self, ru: RuId) -> Result<ConfigId, TransitionError> {
        match self.states[ru.idx()] {
            RuState::Executing { config } => {
                if self.mask_tracking {
                    self.reusable.mark(config, ru.idx());
                }
                self.states[ru.idx()] = RuState::Loaded {
                    config,
                    claimed: false,
                };
                Ok(config)
            }
            found => Err(TransitionError {
                ru,
                found,
                attempted: "revoke_execution",
            }),
        }
    }

    /// Releases a claim without executing — the other preemption path:
    /// a configuration placed for a task that has not started yet is
    /// handed back to the pool (resident, unclaimed) when its graph is
    /// suspended. The suspended job re-claims it on resume if it is
    /// still there.
    pub fn release_claim(&mut self, ru: RuId) -> Result<ConfigId, TransitionError> {
        match self.states[ru.idx()] {
            RuState::Loaded {
                config,
                claimed: true,
            } => {
                if self.mask_tracking {
                    self.reusable.mark(config, ru.idx());
                }
                self.states[ru.idx()] = RuState::Loaded {
                    config,
                    claimed: false,
                };
                Ok(config)
            }
            found => Err(TransitionError {
                ru,
                found,
                attempted: "release_claim",
            }),
        }
    }

    /// Finishes execution; the configuration stays resident, unclaimed
    /// (it becomes a reuse and eviction candidate).
    pub fn finish_execution(&mut self, ru: RuId) -> Result<ConfigId, TransitionError> {
        match self.states[ru.idx()] {
            RuState::Executing { config } => {
                if self.mask_tracking {
                    self.reusable.mark(config, ru.idx());
                }
                self.states[ru.idx()] = RuState::Loaded {
                    config,
                    claimed: false,
                };
                Ok(config)
            }
            found => Err(TransitionError {
                ru,
                found,
                attempted: "finish_execution",
            }),
        }
    }

    /// Marks the resident, unclaimed bitstream of `ru` as upset: it
    /// stays physically present (and evictable) but stops counting as
    /// reusable or resident until the unit is rewritten or
    /// quarantined. Returns the invalidated configuration.
    pub fn mark_corrupt(&mut self, ru: RuId) -> Result<ConfigId, TransitionError> {
        match self.states[ru.idx()] {
            RuState::Loaded {
                config,
                claimed: false,
            } if !self.corrupt[ru.idx()] => {
                if self.mask_tracking {
                    self.reusable.unmark(config, ru.idx());
                }
                self.corrupt[ru.idx()] = true;
                Ok(config)
            }
            found => Err(TransitionError {
                ru,
                found,
                attempted: "mark_corrupt",
            }),
        }
    }

    /// True while `ru` holds an upset (invalid) resident bitstream.
    pub fn is_corrupt(&self, ru: RuId) -> bool {
        self.corrupt[ru.idx()]
    }

    /// Takes `ru` out of the pool after a hard fault or retry
    /// exhaustion. Only quiescent units can be quarantined directly —
    /// the manager revokes executions, releases claims and cancels
    /// in-flight loads first. Returns the discarded resident
    /// configuration, if any.
    pub fn quarantine(&mut self, ru: RuId) -> Result<Option<ConfigId>, TransitionError> {
        match self.states[ru.idx()] {
            RuState::Empty => {
                self.empties -= 1;
                self.quarantined += 1;
                self.states[ru.idx()] = RuState::Quarantined;
                Ok(None)
            }
            RuState::Loaded {
                config,
                claimed: false,
            } => {
                if self.mask_tracking {
                    self.reusable.unmark(config, ru.idx());
                }
                self.corrupt[ru.idx()] = false;
                self.quarantined += 1;
                self.states[ru.idx()] = RuState::Quarantined;
                Ok(Some(config))
            }
            found => Err(TransitionError {
                ru,
                found,
                attempted: "quarantine",
            }),
        }
    }

    /// Returns a quarantined unit to the pool, empty.
    pub fn heal(&mut self, ru: RuId) -> Result<(), TransitionError> {
        match self.states[ru.idx()] {
            RuState::Quarantined => {
                self.quarantined -= 1;
                self.empties += 1;
                self.states[ru.idx()] = RuState::Empty;
                Ok(())
            }
            found => Err(TransitionError {
                ru,
                found,
                attempted: "heal",
            }),
        }
    }

    /// Number of RUs currently quarantined out of the pool.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined
    }

    /// Number of RUs still in service (total minus quarantined).
    pub fn usable_len(&self) -> usize {
        self.states.len() - self.quarantined
    }

    /// Resident configurations with their claim status, for diagnostics.
    pub fn snapshot(&self) -> Vec<(RuId, RuState)> {
        self.ids().map(|r| (r, self.states[r.idx()])).collect()
    }

    /// Writes the unclaimed residency of each RU into `out` — `None`
    /// for empty, `Some(config)` for an unclaimed resident — or `None`
    /// (the outer option) if any RU is mid-load, claimed, or executing.
    ///
    /// Only fully quiescent pools are capturable: this is the warm-start
    /// checkpoint format, restorable later via
    /// [`RuPool::restore_unclaimed`].
    pub fn capture_unclaimed(&self, out: &mut Vec<Option<ConfigId>>) -> bool {
        out.clear();
        for (i, s) in self.states.iter().enumerate() {
            if self.corrupt[i] {
                // An upset resident is not a replayable residency.
                return false;
            }
            match *s {
                RuState::Empty => out.push(None),
                RuState::Loaded {
                    config,
                    claimed: false,
                } => out.push(Some(config)),
                _ => return false,
            }
        }
        true
    }

    /// Force-sets every RU to the given quiescent residency (`None` =
    /// empty, `Some(config)` = unclaimed resident), rebuilding the
    /// empty count and the reusable-config mask.
    ///
    /// This is the warm-start restore hook: `residency` must come from
    /// [`RuPool::capture_unclaimed`] on an identically-sized pool.
    ///
    /// # Panics
    /// Panics if `residency.len()` differs from the pool size.
    pub fn restore_unclaimed(&mut self, residency: &[Option<ConfigId>]) {
        assert_eq!(
            residency.len(),
            self.states.len(),
            "warm-start residency snapshot does not match the pool size"
        );
        self.reusable.clear();
        self.empties = 0;
        self.corrupt.fill(false);
        self.quarantined = 0;
        for (ru, (slot, r)) in self.states.iter_mut().zip(residency).enumerate() {
            match *r {
                None => {
                    *slot = RuState::Empty;
                    self.empties += 1;
                }
                Some(config) => {
                    *slot = RuState::Loaded {
                        config,
                        claimed: false,
                    };
                    if self.mask_tracking {
                        self.reusable.mark(config, ru);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C1: ConfigId = ConfigId(1);
    const C2: ConfigId = ConfigId(2);

    #[test]
    fn fresh_pool_is_all_empty() {
        let pool = RuPool::new(4);
        assert_eq!(pool.len(), 4);
        assert_eq!(pool.first_empty(), Some(RuId(0)));
        assert!(pool.eviction_candidates().is_empty());
        assert!(!pool.is_resident(C1));
    }

    #[test]
    fn full_lifecycle() {
        let mut pool = RuPool::new(2);
        let ru = RuId(0);
        pool.begin_load(ru, C1).unwrap();
        assert_eq!(pool.state(ru), RuState::Loading { config: C1 });
        assert!(pool.is_resident(C1));
        assert_eq!(pool.find_reusable(C1), None, "loading is not reusable");

        assert_eq!(pool.finish_load(ru).unwrap(), C1);
        assert!(!pool.state(ru).is_eviction_candidate(), "claimed");

        pool.begin_execution(ru).unwrap();
        assert_eq!(pool.state(ru), RuState::Executing { config: C1 });

        assert_eq!(pool.finish_execution(ru).unwrap(), C1);
        assert!(pool.state(ru).is_eviction_candidate());
        assert_eq!(pool.find_reusable(C1), Some(ru));
        assert_eq!(pool.eviction_candidates(), vec![ru]);
    }

    #[test]
    fn reuse_claim_cycle() {
        let mut pool = RuPool::new(1);
        let ru = RuId(0);
        pool.begin_load(ru, C1).unwrap();
        pool.finish_load(ru).unwrap();
        pool.begin_execution(ru).unwrap();
        pool.finish_execution(ru).unwrap();

        pool.claim_for_reuse(ru, C1).unwrap();
        assert!(!pool.state(ru).is_eviction_candidate());
        pool.begin_execution(ru).unwrap();
        pool.finish_execution(ru).unwrap();
    }

    #[test]
    fn eviction_replaces_unclaimed_config() {
        let mut pool = RuPool::new(1);
        let ru = RuId(0);
        pool.begin_load(ru, C1).unwrap();
        pool.finish_load(ru).unwrap();
        pool.begin_execution(ru).unwrap();
        pool.finish_execution(ru).unwrap();

        pool.begin_load(ru, C2).unwrap();
        assert!(!pool.is_resident(C1), "old config evicted at load start");
        assert!(pool.is_resident(C2));
    }

    #[test]
    fn cannot_evict_claimed_or_executing() {
        let mut pool = RuPool::new(1);
        let ru = RuId(0);
        pool.begin_load(ru, C1).unwrap();
        pool.finish_load(ru).unwrap();
        // Claimed: eviction rejected.
        let err = pool.begin_load(ru, C2).unwrap_err();
        assert_eq!(err.attempted, "begin_load");
        pool.begin_execution(ru).unwrap();
        // Executing: eviction rejected.
        assert!(pool.begin_load(ru, C2).is_err());
    }

    #[test]
    fn cannot_claim_wrong_or_claimed_config() {
        let mut pool = RuPool::new(1);
        let ru = RuId(0);
        pool.begin_load(ru, C1).unwrap();
        pool.finish_load(ru).unwrap();
        // Claimed already.
        assert!(pool.claim_for_reuse(ru, C1).is_err());
        pool.begin_execution(ru).unwrap();
        pool.finish_execution(ru).unwrap();
        // Wrong config.
        assert!(pool.claim_for_reuse(ru, C2).is_err());
        // Right config, unclaimed.
        assert!(pool.claim_for_reuse(ru, C1).is_ok());
    }

    #[test]
    fn invalid_transitions_are_rejected() {
        let mut pool = RuPool::new(1);
        let ru = RuId(0);
        assert!(pool.finish_load(ru).is_err());
        assert!(pool.begin_execution(ru).is_err());
        assert!(pool.finish_execution(ru).is_err());
        assert!(pool.claim_for_reuse(ru, C1).is_err());
    }

    #[test]
    fn candidates_ordered_by_index() {
        let mut pool = RuPool::new(3);
        for (i, c) in [(0u16, ConfigId(10)), (1, ConfigId(11)), (2, ConfigId(12))] {
            let ru = RuId(i);
            pool.begin_load(ru, c).unwrap();
            pool.finish_load(ru).unwrap();
            pool.begin_execution(ru).unwrap();
            pool.finish_execution(ru).unwrap();
        }
        assert_eq!(pool.eviction_candidates(), vec![RuId(0), RuId(1), RuId(2)]);
    }

    #[test]
    fn speculative_load_lands_unclaimed_and_reusable() {
        let mut pool = RuPool::new(2);
        let ru = RuId(1);
        pool.begin_load(ru, C1).unwrap();
        assert_eq!(pool.finish_load_unclaimed(ru).unwrap(), C1);
        assert!(pool.state(ru).is_eviction_candidate());
        assert_eq!(pool.find_reusable(C1), Some(ru));
        // A reuse claim consumes it exactly like a post-execution one.
        assert_eq!(pool.try_claim_reuse(C1), Some(ru));
        assert_eq!(pool.find_reusable(C1), None);
    }

    #[test]
    fn cancelled_load_returns_the_ru_to_empty() {
        let mut pool = RuPool::new(1);
        let ru = RuId(0);
        pool.begin_load(ru, C1).unwrap();
        assert_eq!(pool.first_empty(), None);
        assert_eq!(pool.cancel_load(ru).unwrap(), C1);
        assert_eq!(pool.state(ru), RuState::Empty);
        assert_eq!(pool.first_empty(), Some(ru));
        assert!(!pool.is_resident(C1));
        // Cancelling with nothing loading is rejected.
        assert!(pool.cancel_load(ru).is_err());
    }

    #[test]
    fn revoked_execution_leaves_config_unclaimed_and_reusable() {
        let mut pool = RuPool::new(2);
        let ru = RuId(0);
        pool.begin_load(ru, C1).unwrap();
        pool.finish_load(ru).unwrap();
        pool.begin_execution(ru).unwrap();
        // Preempt mid-execution: config stays, claim drops.
        assert_eq!(pool.revoke_execution(ru).unwrap(), C1);
        assert_eq!(
            pool.state(ru),
            RuState::Loaded {
                config: C1,
                claimed: false
            }
        );
        assert!(pool.state(ru).is_eviction_candidate());
        assert_eq!(pool.find_reusable(C1), Some(ru));
        // The suspended owner (or anyone else) can re-claim and run.
        pool.claim_for_reuse(ru, C1).unwrap();
        pool.begin_execution(ru).unwrap();
        pool.finish_execution(ru).unwrap();
        // Revoking a non-executing RU is rejected.
        assert!(pool.revoke_execution(ru).is_err());
        assert!(pool.revoke_execution(RuId(1)).is_err());
    }

    #[test]
    fn released_claim_becomes_candidate_and_reclaims() {
        let mut pool = RuPool::new(1);
        let ru = RuId(0);
        pool.begin_load(ru, C1).unwrap();
        pool.finish_load(ru).unwrap(); // claimed, not yet executing
        assert_eq!(pool.release_claim(ru).unwrap(), C1);
        assert!(pool.state(ru).is_eviction_candidate());
        // Evictable by a preemptor's load...
        assert_eq!(pool.find_reusable(C1), Some(ru));
        // ...or re-claimable by the suspended owner on resume.
        pool.claim_for_reuse(ru, C1).unwrap();
        // Releasing an unclaimed or executing RU is rejected.
        pool.begin_execution(ru).unwrap();
        assert!(pool.release_claim(ru).is_err());
        pool.finish_execution(ru).unwrap();
        assert!(pool.release_claim(ru).is_err());
    }

    #[test]
    fn upset_resident_is_not_reusable_until_rewritten() {
        let mut pool = RuPool::new(2);
        let ru = RuId(0);
        pool.begin_load(ru, C1).unwrap();
        pool.finish_load(ru).unwrap();
        pool.begin_execution(ru).unwrap();
        pool.finish_execution(ru).unwrap();
        assert_eq!(pool.find_reusable(C1), Some(ru));

        assert_eq!(pool.mark_corrupt(ru).unwrap(), C1);
        assert!(pool.is_corrupt(ru));
        // The garbage bits are neither reusable nor resident...
        assert_eq!(pool.find_reusable(C1), None);
        assert_eq!(pool.try_claim_reuse(C1), None);
        assert!(!pool.is_resident(C1));
        // ...but the unit is still an eviction candidate, and a rewrite
        // (same or different config) repairs it.
        assert_eq!(pool.eviction_candidates(), vec![ru]);
        pool.begin_load(ru, C1).unwrap();
        assert!(!pool.is_corrupt(ru));
        pool.finish_load(ru).unwrap();
        pool.begin_execution(ru).unwrap();
        pool.finish_execution(ru).unwrap();
        assert_eq!(pool.find_reusable(C1), Some(ru));
        // Double upsets and upsets of claimed/executing/empty units are
        // rejected.
        pool.mark_corrupt(ru).unwrap();
        assert!(pool.mark_corrupt(ru).is_err());
        assert!(pool.mark_corrupt(RuId(1)).is_err());
    }

    #[test]
    fn quarantine_removes_and_heal_restores() {
        let mut pool = RuPool::new(2);
        let ru = RuId(0);
        pool.begin_load(ru, C1).unwrap();
        pool.finish_load(ru).unwrap();
        pool.begin_execution(ru).unwrap();
        pool.finish_execution(ru).unwrap();

        assert_eq!(pool.quarantine(ru).unwrap(), Some(C1));
        assert_eq!(pool.state(ru), RuState::Quarantined);
        assert_eq!(pool.quarantined_count(), 1);
        assert_eq!(pool.usable_len(), 1);
        assert!(!pool.is_resident(C1));
        assert_eq!(pool.find_reusable(C1), None);
        assert!(pool.eviction_candidates().is_empty());
        // A quarantined unit accepts no transitions but heal.
        assert!(pool.begin_load(ru, C2).is_err());
        assert!(pool.quarantine(ru).is_err());
        pool.heal(ru).unwrap();
        assert_eq!(pool.state(ru), RuState::Empty);
        assert_eq!(pool.quarantined_count(), 0);
        assert_eq!(pool.first_empty(), Some(ru));
        assert!(pool.heal(ru).is_err());

        // Quarantining an empty unit removes it from the free list.
        let other = RuId(1);
        assert_eq!(pool.quarantine(other).unwrap(), None);
        assert_eq!(pool.first_empty(), Some(ru));
        assert_eq!(pool.usable_len(), 1);
        // Busy units cannot be quarantined directly.
        pool.begin_load(ru, C2).unwrap();
        assert!(pool.quarantine(ru).is_err());
        // Reset clears quarantine and upset flags.
        pool.reset();
        assert_eq!(pool.quarantined_count(), 0);
        assert_eq!(pool.first_empty(), Some(RuId(0)));
    }

    #[test]
    fn corrupt_pool_is_not_capturable() {
        let mut pool = RuPool::new(1);
        let ru = RuId(0);
        pool.begin_load(ru, C1).unwrap();
        pool.finish_load(ru).unwrap();
        pool.begin_execution(ru).unwrap();
        pool.finish_execution(ru).unwrap();
        let mut out = Vec::new();
        assert!(pool.capture_unclaimed(&mut out));
        pool.mark_corrupt(ru).unwrap();
        assert!(!pool.capture_unclaimed(&mut out));
        // Restoring a clean snapshot wipes the upset flag.
        pool.restore_unclaimed(&[Some(C1)]);
        assert!(!pool.is_corrupt(ru));
        assert_eq!(pool.find_reusable(C1), Some(ru));
    }

    #[test]
    fn display_is_one_based() {
        assert_eq!(RuId(0).to_string(), "RU1");
        assert_eq!(RuId(3).to_string(), "RU4");
    }

    #[test]
    #[should_panic]
    fn zero_rus_rejected() {
        let _ = RuPool::new(0);
    }
}
