//! Synthetic bitstream repository.
//!
//! Real systems keep partial bitstreams in external memory and DMA them
//! through the configuration port. The experiments only need the *cost*
//! of that movement (latency, energy, bytes — see [`crate::energy`]),
//! but a faithful substrate should also exercise the data path, so this
//! module provides a repository of deterministic pseudo-random
//! bitstreams keyed by [`ConfigId`]. Blobs are [`bytes::Bytes`], so
//! handing a bitstream to a simulated DMA engine is a cheap reference
//! count, like pointing real DMA at a buffer.

use bytes::Bytes;
use rtr_taskgraph::ConfigId;
use std::collections::HashMap;

/// A repository of synthetic partial bitstreams.
#[derive(Debug, Clone)]
pub struct BitstreamRepository {
    size_bytes: usize,
    blobs: HashMap<ConfigId, Bytes>,
    sums: HashMap<ConfigId, u64>,
}

impl BitstreamRepository {
    /// Creates a repository producing `size_bytes`-sized bitstreams.
    pub fn new(size_bytes: usize) -> Self {
        BitstreamRepository {
            size_bytes,
            blobs: HashMap::new(),
            sums: HashMap::new(),
        }
    }

    /// Fetches (generating on first access) the bitstream for `config`.
    pub fn fetch(&mut self, config: ConfigId) -> Bytes {
        self.blobs
            .entry(config)
            .or_insert_with(|| synthesize(config, self.size_bytes))
            .clone()
    }

    /// Number of distinct bitstreams generated so far.
    pub fn generated(&self) -> usize {
        self.blobs.len()
    }

    /// The golden checksum of `config`'s bitstream (generating the blob
    /// on first access, memoising the sum) — what an integrity check
    /// compares a transferred copy against.
    pub fn expected_checksum(&mut self, config: ConfigId) -> u64 {
        if let Some(&sum) = self.sums.get(&config) {
            return sum;
        }
        let sum = checksum(&self.fetch(config));
        self.sums.insert(config, sum);
        sum
    }

    /// Bitstream size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }
}

/// Generates a deterministic pseudo-random blob for `config` using a
/// SplitMix64 stream seeded by the config id — stable across runs and
/// platforms.
fn synthesize(config: ConfigId, size: usize) -> Bytes {
    let mut out = Vec::with_capacity(size);
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (u64::from(config.0) << 17);
    while out.len() < size {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let chunk = z.to_le_bytes();
        let take = chunk.len().min(size - out.len());
        out.extend_from_slice(&chunk[..take]);
    }
    Bytes::from(out)
}

/// A Fletcher-style checksum used to emulate integrity checking of a
/// transferred bitstream (the fault model's "CRC").
pub fn checksum(data: &Bytes) -> u64 {
    let mut a: u64 = 1;
    let mut b: u64 = 0;
    for &byte in data.iter() {
        a = (a + u64::from(byte)) % 65_521;
        b = (b + a) % 65_521;
    }
    (b << 32) | a
}

/// A transfer-corrupted copy of `data`: one byte (picked by `salt`) is
/// flipped by a non-zero XOR derived from `salt`. A single-byte delta
/// is never ≡ 0 mod 65 521, so [`verify`] always detects it.
pub fn corrupt(data: &Bytes, salt: u64) -> Bytes {
    assert!(!data.is_empty(), "cannot corrupt an empty bitstream");
    let mut out = data.to_vec();
    let idx = (salt % data.len() as u64) as usize;
    let flip = (salt >> 32) as u8 | 1; // never zero: the byte must change
    out[idx] ^= flip;
    Bytes::from(out)
}

/// Integrity check of a transferred bitstream against its golden
/// checksum.
pub fn verify(data: &Bytes, expected: u64) -> bool {
    checksum(data) == expected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitstreams_have_requested_size() {
        let mut repo = BitstreamRepository::new(1_000);
        assert_eq!(repo.fetch(ConfigId(1)).len(), 1_000);
    }

    #[test]
    fn deterministic_per_config() {
        let mut r1 = BitstreamRepository::new(256);
        let mut r2 = BitstreamRepository::new(256);
        assert_eq!(r1.fetch(ConfigId(7)), r2.fetch(ConfigId(7)));
        assert_ne!(r1.fetch(ConfigId(7)), r1.fetch(ConfigId(8)));
    }

    #[test]
    fn fetch_is_cached_and_cheap() {
        let mut repo = BitstreamRepository::new(64);
        let a = repo.fetch(ConfigId(3));
        let b = repo.fetch(ConfigId(3));
        assert_eq!(repo.generated(), 1);
        // Bytes clones share the same backing storage.
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn checksum_detects_difference() {
        let mut repo = BitstreamRepository::new(512);
        let a = checksum(&repo.fetch(ConfigId(1)));
        let b = checksum(&repo.fetch(ConfigId(2)));
        assert_ne!(a, b);
    }

    #[test]
    fn corruption_is_always_detected() {
        let mut repo = BitstreamRepository::new(512);
        let golden = repo.expected_checksum(ConfigId(5));
        let clean = repo.fetch(ConfigId(5));
        assert!(verify(&clean, golden));
        // Any salt yields a one-byte flip the checksum catches.
        for salt in [0u64, 1, 511, 512, 0xDEAD_BEEF_0000_0000, u64::MAX] {
            let bad = corrupt(&clean, salt);
            assert_eq!(bad.len(), clean.len());
            assert_ne!(bad, clean);
            assert!(!verify(&bad, golden), "salt {salt} went undetected");
        }
        // The memoised golden sum matches a fresh computation.
        assert_eq!(golden, checksum(&clean));
    }
}
