//! The single-port reconfiguration controller.
//!
//! FPGAs expose one configuration interface (e.g. the ICAP port on
//! Xilinx devices): reconfigurations are strictly serialised. The
//! controller tracks the in-flight operation and enforces that
//! exclusivity; the manager polls [`ReconfigController::is_idle`] at
//! every event, exactly like the `reconfiguration_circuitry_idle()`
//! checks in the paper's Fig. 4 pseudo-code.

use crate::ru::RuId;
use rtr_sim::{SimDuration, SimTime};
use rtr_taskgraph::ConfigId;

/// An in-flight reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlight {
    /// Destination RU.
    pub ru: RuId,
    /// Configuration being written.
    pub config: ConfigId,
    /// When the write started.
    pub started: SimTime,
    /// When the write completes.
    pub completes: SimTime,
}

/// The reconfiguration circuitry: at most one load at a time, each
/// taking a fixed latency.
#[derive(Debug, Clone)]
pub struct ReconfigController {
    latency: SimDuration,
    in_flight: Option<InFlight>,
    completed_loads: u64,
    busy_time: SimDuration,
}

impl ReconfigController {
    /// Creates an idle controller with the given per-load latency.
    ///
    /// # Panics
    /// Panics on a zero latency — use the manager's ideal-baseline mode
    /// for zero-latency experiments instead, so the event semantics stay
    /// well defined.
    pub fn new(latency: SimDuration) -> Self {
        assert!(
            !latency.is_zero(),
            "reconfiguration latency must be positive (the ideal baseline \
             is simulated separately)"
        );
        ReconfigController {
            latency,
            in_flight: None,
            completed_loads: 0,
            busy_time: SimDuration::ZERO,
        }
    }

    /// The fixed per-load latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// True when no reconfiguration is in flight.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_none()
    }

    /// The in-flight operation, if any.
    pub fn in_flight(&self) -> Option<InFlight> {
        self.in_flight
    }

    /// Starts writing `config` into `ru` at time `now`; returns the
    /// completion time.
    ///
    /// # Panics
    /// Panics if the controller is busy — callers must check
    /// [`Self::is_idle`] first (the manager does, mirroring Fig. 4).
    pub fn start(&mut self, ru: RuId, config: ConfigId, now: SimTime) -> SimTime {
        assert!(
            self.in_flight.is_none(),
            "reconfiguration controller is single-ported: start() while busy"
        );
        let completes = now + self.latency;
        self.in_flight = Some(InFlight {
            ru,
            config,
            started: now,
            completes,
        });
        completes
    }

    /// Completes the in-flight operation; `now` must match the promised
    /// completion time.
    pub fn complete(&mut self, now: SimTime) -> InFlight {
        let op = self
            .in_flight
            .take()
            .expect("complete() called with no reconfiguration in flight");
        assert_eq!(
            op.completes, now,
            "reconfiguration completion fired at the wrong time"
        );
        self.completed_loads += 1;
        self.busy_time += op.completes.since(op.started);
        op
    }

    /// Number of completed loads (reuses do not count: they perform no
    /// reconfiguration).
    pub fn completed_loads(&self) -> u64 {
        self.completed_loads
    }

    /// Total time the port spent writing bitstreams.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Returns the controller to its just-constructed state (idle,
    /// zeroed counters), optionally retargeting the per-load latency —
    /// the pooled engine's reset hook.
    ///
    /// # Panics
    /// Panics on a zero latency, like [`ReconfigController::new`].
    pub fn reset(&mut self, latency: SimDuration) {
        assert!(
            !latency.is_zero(),
            "reconfiguration latency must be positive (the ideal baseline \
             is simulated separately)"
        );
        self.latency = latency;
        self.in_flight = None;
        self.completed_loads = 0;
        self.busy_time = SimDuration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> ReconfigController {
        ReconfigController::new(SimDuration::from_ms(4))
    }

    #[test]
    fn starts_idle_and_tracks_in_flight() {
        let mut c = ctl();
        assert!(c.is_idle());
        let done = c.start(RuId(0), ConfigId(1), SimTime::from_ms(10));
        assert_eq!(done, SimTime::from_ms(14));
        assert!(!c.is_idle());
        assert_eq!(c.in_flight().unwrap().config, ConfigId(1));
    }

    #[test]
    fn complete_updates_stats() {
        let mut c = ctl();
        c.start(RuId(1), ConfigId(2), SimTime::ZERO);
        let op = c.complete(SimTime::from_ms(4));
        assert_eq!(op.ru, RuId(1));
        assert!(c.is_idle());
        assert_eq!(c.completed_loads(), 1);
        assert_eq!(c.busy_time(), SimDuration::from_ms(4));
    }

    #[test]
    #[should_panic(expected = "single-ported")]
    fn concurrent_loads_rejected() {
        let mut c = ctl();
        c.start(RuId(0), ConfigId(1), SimTime::ZERO);
        c.start(RuId(1), ConfigId(2), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "wrong time")]
    fn completion_time_is_checked() {
        let mut c = ctl();
        c.start(RuId(0), ConfigId(1), SimTime::ZERO);
        c.complete(SimTime::from_ms(3));
    }

    #[test]
    #[should_panic]
    fn zero_latency_rejected() {
        let _ = ReconfigController::new(SimDuration::ZERO);
    }

    #[test]
    fn busy_time_accumulates() {
        let mut c = ctl();
        c.start(RuId(0), ConfigId(1), SimTime::ZERO);
        c.complete(SimTime::from_ms(4));
        c.start(RuId(1), ConfigId(2), SimTime::from_ms(10));
        c.complete(SimTime::from_ms(14));
        assert_eq!(c.busy_time(), SimDuration::from_ms(8));
        assert_eq!(c.completed_loads(), 2);
    }
}
