//! The single-port reconfiguration controller.
//!
//! FPGAs expose one configuration interface (e.g. the ICAP port on
//! Xilinx devices): reconfigurations are strictly serialised. The
//! controller tracks the in-flight operation and enforces that
//! exclusivity; the manager polls [`ReconfigController::is_idle`] at
//! every event, exactly like the `reconfiguration_circuitry_idle()`
//! checks in the paper's Fig. 4 pseudo-code.
//!
//! The port carries two *lanes* sharing the one physical interface:
//!
//! * [`LoadLane::Demand`] — a load the current graph's reconfiguration
//!   sequence requires now. Demand loads always run to completion.
//! * [`LoadLane::Speculative`] — a prefetch issued while the port was
//!   otherwise idle. A speculative load is *cancellable*: when the
//!   demand path needs the port mid-write, [`cancel`] aborts the write
//!   (the partially written target RU is discarded) so demand is never
//!   delayed by speculation.
//!
//! [`cancel`]: ReconfigController::cancel

use crate::ru::RuId;
use rtr_sim::{SimDuration, SimTime};
use rtr_taskgraph::ConfigId;

/// Which lane an in-flight reconfiguration belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadLane {
    /// A load the current graph demands now; runs to completion.
    Demand,
    /// A speculative prefetch; cancellable when demand needs the port.
    Speculative,
}

/// An in-flight reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlight {
    /// Destination RU.
    pub ru: RuId,
    /// Configuration being written.
    pub config: ConfigId,
    /// When the write started.
    pub started: SimTime,
    /// When the write completes.
    pub completes: SimTime,
    /// Demand load or speculative prefetch.
    pub lane: LoadLane,
}

/// The reconfiguration circuitry: at most one load at a time, each
/// taking a fixed latency.
#[derive(Debug, Clone)]
pub struct ReconfigController {
    latency: SimDuration,
    in_flight: Option<InFlight>,
    completed_loads: u64,
    busy_time: SimDuration,
}

impl ReconfigController {
    /// Creates an idle controller with the given per-load latency.
    ///
    /// # Panics
    /// Panics on a zero latency — use the manager's ideal-baseline mode
    /// for zero-latency experiments instead, so the event semantics stay
    /// well defined.
    pub fn new(latency: SimDuration) -> Self {
        assert!(
            !latency.is_zero(),
            "reconfiguration latency must be positive (the ideal baseline \
             is simulated separately)"
        );
        ReconfigController {
            latency,
            in_flight: None,
            completed_loads: 0,
            busy_time: SimDuration::ZERO,
        }
    }

    /// The fixed per-load latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// True when no reconfiguration is in flight.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_none()
    }

    /// The in-flight operation, if any.
    pub fn in_flight(&self) -> Option<InFlight> {
        self.in_flight
    }

    /// Starts a demand load of `config` into `ru` at time `now`;
    /// returns the completion time.
    ///
    /// # Panics
    /// Panics if the controller is busy — callers must check
    /// [`Self::is_idle`] first (the manager does, mirroring Fig. 4),
    /// cancelling any speculative occupant before claiming the port.
    pub fn start(&mut self, ru: RuId, config: ConfigId, now: SimTime) -> SimTime {
        self.start_in_lane(ru, config, now, LoadLane::Demand)
    }

    /// Starts a speculative (prefetch) load of `config` into `ru`;
    /// returns the completion time. Same exclusivity rules as
    /// [`Self::start`], but the operation may later be aborted through
    /// [`Self::cancel`].
    pub fn start_speculative(&mut self, ru: RuId, config: ConfigId, now: SimTime) -> SimTime {
        self.start_in_lane(ru, config, now, LoadLane::Speculative)
    }

    fn start_in_lane(
        &mut self,
        ru: RuId,
        config: ConfigId,
        now: SimTime,
        lane: LoadLane,
    ) -> SimTime {
        assert!(
            self.in_flight.is_none(),
            "reconfiguration controller is single-ported: start() while busy"
        );
        let completes = now + self.latency;
        self.in_flight = Some(InFlight {
            ru,
            config,
            started: now,
            completes,
            lane,
        });
        completes
    }

    /// Re-arms the port for a backoff retry of a corrupt load: the
    /// port is held from `now`, but the actual rewrite only occupies
    /// `[now + backoff, now + backoff + latency]` — only that write
    /// window is accounted as busy time. The retry keeps its lane, so
    /// a speculative retry stays cancellable by demand (including
    /// during the backoff wait, which then costs no port time).
    ///
    /// # Panics
    /// Panics if the controller is busy, like [`Self::start`].
    pub fn start_retry(
        &mut self,
        ru: RuId,
        config: ConfigId,
        now: SimTime,
        lane: LoadLane,
        backoff: SimDuration,
    ) -> SimTime {
        assert!(
            self.in_flight.is_none(),
            "reconfiguration controller is single-ported: start() while busy"
        );
        let started = now + backoff;
        let completes = started + self.latency;
        self.in_flight = Some(InFlight {
            ru,
            config,
            started,
            completes,
            lane,
        });
        completes
    }

    /// Completes the in-flight operation; `now` must match the promised
    /// completion time.
    pub fn complete(&mut self, now: SimTime) -> InFlight {
        let op = self
            .in_flight
            .take()
            .expect("complete() called with no reconfiguration in flight");
        assert_eq!(
            op.completes, now,
            "reconfiguration completion fired at the wrong time"
        );
        if op.lane == LoadLane::Demand {
            self.completed_loads += 1;
        }
        self.busy_time += op.completes.since(op.started);
        op
    }

    /// Aborts the in-flight *speculative* load at time `now` (demand
    /// needs the port). The port time actually spent writing is still
    /// accounted as busy; the caller discards the partially written RU.
    ///
    /// # Panics
    /// Panics if nothing is in flight, if the in-flight operation is a
    /// demand load (demand loads always complete), or if `now` lies
    /// after the operation's completion. Cancellation *before*
    /// `started` is legal — it aborts a backoff retry that has not
    /// begun rewriting yet, and charges no port time.
    pub fn cancel(&mut self, now: SimTime) -> InFlight {
        let op = self
            .in_flight
            .take()
            .expect("cancel() called with no reconfiguration in flight");
        assert_eq!(
            op.lane,
            LoadLane::Speculative,
            "only speculative loads are cancellable"
        );
        assert!(
            now <= op.completes,
            "cancellation at {now} after the write completed at {}",
            op.completes
        );
        self.busy_time += now.saturating_since(op.started);
        op
    }

    /// Number of completed demand loads (reuses do not count: they
    /// perform no reconfiguration, and speculative loads are tracked by
    /// the engine's prefetch counters — the port itself only tallies
    /// demand completions and its total busy time).
    pub fn completed_loads(&self) -> u64 {
        self.completed_loads
    }

    /// Total time the port spent writing bitstreams (demand loads,
    /// completed prefetches, and the written part of cancelled ones).
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Returns the controller to its just-constructed state (idle,
    /// zeroed counters), optionally retargeting the per-load latency —
    /// the pooled engine's reset hook.
    ///
    /// # Panics
    /// Panics on a zero latency, like [`ReconfigController::new`].
    pub fn reset(&mut self, latency: SimDuration) {
        assert!(
            !latency.is_zero(),
            "reconfiguration latency must be positive (the ideal baseline \
             is simulated separately)"
        );
        self.latency = latency;
        self.in_flight = None;
        self.completed_loads = 0;
        self.busy_time = SimDuration::ZERO;
    }

    /// Force-sets the accounting counters of an idle controller — the
    /// warm-start restore hook, fed from a snapshot taken at an idle
    /// checkpoint of a previously recorded run.
    ///
    /// # Panics
    /// Panics if a load is in flight: counters of a busy controller are
    /// not a consistent snapshot.
    pub fn restore_counters(&mut self, completed_loads: u64, busy_time: SimDuration) {
        assert!(
            self.in_flight.is_none(),
            "cannot restore counters onto a busy controller"
        );
        self.completed_loads = completed_loads;
        self.busy_time = busy_time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> ReconfigController {
        ReconfigController::new(SimDuration::from_ms(4))
    }

    #[test]
    fn starts_idle_and_tracks_in_flight() {
        let mut c = ctl();
        assert!(c.is_idle());
        let done = c.start(RuId(0), ConfigId(1), SimTime::from_ms(10));
        assert_eq!(done, SimTime::from_ms(14));
        assert!(!c.is_idle());
        assert_eq!(c.in_flight().unwrap().config, ConfigId(1));
        assert_eq!(c.in_flight().unwrap().lane, LoadLane::Demand);
    }

    #[test]
    fn complete_updates_stats() {
        let mut c = ctl();
        c.start(RuId(1), ConfigId(2), SimTime::ZERO);
        let op = c.complete(SimTime::from_ms(4));
        assert_eq!(op.ru, RuId(1));
        assert!(c.is_idle());
        assert_eq!(c.completed_loads(), 1);
        assert_eq!(c.busy_time(), SimDuration::from_ms(4));
    }

    #[test]
    #[should_panic(expected = "single-ported")]
    fn concurrent_loads_rejected() {
        let mut c = ctl();
        c.start(RuId(0), ConfigId(1), SimTime::ZERO);
        c.start(RuId(1), ConfigId(2), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "single-ported")]
    fn speculative_respects_exclusivity() {
        let mut c = ctl();
        c.start_speculative(RuId(0), ConfigId(1), SimTime::ZERO);
        c.start(RuId(1), ConfigId(2), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "wrong time")]
    fn completion_time_is_checked() {
        let mut c = ctl();
        c.start(RuId(0), ConfigId(1), SimTime::ZERO);
        c.complete(SimTime::from_ms(3));
    }

    #[test]
    #[should_panic]
    fn zero_latency_rejected() {
        let _ = ReconfigController::new(SimDuration::ZERO);
    }

    #[test]
    fn busy_time_accumulates() {
        let mut c = ctl();
        c.start(RuId(0), ConfigId(1), SimTime::ZERO);
        c.complete(SimTime::from_ms(4));
        c.start(RuId(1), ConfigId(2), SimTime::from_ms(10));
        c.complete(SimTime::from_ms(14));
        assert_eq!(c.busy_time(), SimDuration::from_ms(8));
        assert_eq!(c.completed_loads(), 2);
    }

    #[test]
    fn speculative_completion_counts_in_its_lane() {
        let mut c = ctl();
        c.start_speculative(RuId(0), ConfigId(9), SimTime::ZERO);
        let op = c.complete(SimTime::from_ms(4));
        assert_eq!(op.lane, LoadLane::Speculative);
        assert_eq!(
            c.completed_loads(),
            0,
            "speculative completions are the engine's tally"
        );
        assert_eq!(c.busy_time(), SimDuration::from_ms(4));
    }

    #[test]
    fn cancel_frees_the_port_and_charges_partial_time() {
        let mut c = ctl();
        c.start_speculative(RuId(2), ConfigId(7), SimTime::from_ms(10));
        let op = c.cancel(SimTime::from_ms(13));
        assert_eq!(op.ru, RuId(2));
        assert!(c.is_idle());
        assert_eq!(c.completed_loads(), 0);
        assert_eq!(c.busy_time(), SimDuration::from_ms(3));
        // The port is immediately available for a demand load.
        let done = c.start(RuId(0), ConfigId(1), SimTime::from_ms(13));
        assert_eq!(done, SimTime::from_ms(17));
    }

    #[test]
    #[should_panic(expected = "only speculative")]
    fn demand_loads_are_not_cancellable() {
        let mut c = ctl();
        c.start(RuId(0), ConfigId(1), SimTime::ZERO);
        c.cancel(SimTime::from_ms(1));
    }

    #[test]
    fn retry_delays_the_write_window() {
        let mut c = ctl();
        // Backoff 8 ms from t = 10: the rewrite occupies [18, 22].
        let done = c.start_retry(
            RuId(0),
            ConfigId(1),
            SimTime::from_ms(10),
            LoadLane::Demand,
            SimDuration::from_ms(8),
        );
        assert_eq!(done, SimTime::from_ms(22));
        assert!(!c.is_idle());
        let op = c.complete(SimTime::from_ms(22));
        assert_eq!(op.started, SimTime::from_ms(18));
        // Only the write itself is port-busy, not the backoff wait.
        assert_eq!(c.busy_time(), SimDuration::from_ms(4));
        assert_eq!(c.completed_loads(), 1);
    }

    #[test]
    fn cancel_during_backoff_charges_nothing() {
        let mut c = ctl();
        c.start_retry(
            RuId(0),
            ConfigId(1),
            SimTime::from_ms(10),
            LoadLane::Speculative,
            SimDuration::from_ms(8),
        );
        // Demand claims the port at t = 12, before the rewrite begins
        // at t = 18: no port time was spent.
        let op = c.cancel(SimTime::from_ms(12));
        assert_eq!(op.lane, LoadLane::Speculative);
        assert!(c.is_idle());
        assert_eq!(c.busy_time(), SimDuration::ZERO);
    }

    #[test]
    fn reset_zeroes_every_counter() {
        let mut c = ctl();
        c.start(RuId(0), ConfigId(1), SimTime::ZERO);
        c.complete(SimTime::from_ms(4));
        c.start_speculative(RuId(1), ConfigId(2), SimTime::from_ms(4));
        c.cancel(SimTime::from_ms(6));
        c.reset(SimDuration::from_ms(4));
        assert!(c.is_idle());
        assert_eq!(c.completed_loads(), 0);
        assert_eq!(c.busy_time(), SimDuration::ZERO);
    }
}
