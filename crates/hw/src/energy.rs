//! Energy and bus-traffic accounting.
//!
//! §VI of the paper: "higher reuse rates reduce the system energy
//! consumption, since a reconfiguration process consumes a large amount
//! of energy. In addition, higher reuse rates also reduce the pressure
//! over the external memory and the system bus, since the
//! reconfigurations involve moving large amounts of data from an
//! external memory to the FPGA." This module turns that argument into
//! measurable quantities: every *performed* load adds one bitstream of
//! bus traffic and one load's worth of energy; every *reuse* adds
//! nothing.

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Accumulated reconfiguration cost statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Demand reconfigurations actually performed.
    pub loads: u64,
    /// Loads avoided through reuse.
    pub reuses: u64,
    /// Speculative (prefetch) reconfigurations that ran to completion.
    /// Cancelled prefetches are not charged here — the bitstream write
    /// was aborted (the port time they held is tracked by the
    /// controller's busy time).
    pub prefetch_loads: u64,
    /// Bytes moved from external memory to the device (demand and
    /// completed speculative loads alike).
    pub bytes_moved: u64,
    /// Energy spent on reconfigurations, in microjoules.
    pub energy_uj: u64,
}

/// Converts load/reuse counts into energy and traffic for a device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnergyModel {
    device: DeviceSpec,
    stats: TrafficStats,
}

impl EnergyModel {
    /// Model for `device`, with zeroed counters.
    pub fn new(device: DeviceSpec) -> Self {
        EnergyModel {
            device,
            stats: TrafficStats::default(),
        }
    }

    /// Records one performed reconfiguration.
    pub fn record_load(&mut self) {
        self.stats.loads += 1;
        self.stats.bytes_moved += self.device.bitstream_bytes;
        self.stats.energy_uj += self.device.energy_per_load_uj;
    }

    /// Records one reuse (no traffic, no energy).
    pub fn record_reuse(&mut self) {
        self.stats.reuses += 1;
    }

    /// Records one *completed* speculative load: a full bitstream moved
    /// and a full load's energy spent, accounted in the prefetch lane.
    pub fn record_prefetch(&mut self) {
        self.stats.prefetch_loads += 1;
        self.stats.bytes_moved += self.device.bitstream_bytes;
        self.stats.energy_uj += self.device.energy_per_load_uj;
    }

    /// Zeroes the counters, optionally retargeting the device — the
    /// pooled engine's reset hook.
    pub fn reset(&mut self, device: DeviceSpec) {
        self.device = device;
        self.stats = TrafficStats::default();
    }

    /// Current counters.
    pub fn stats(&self) -> TrafficStats {
        self.stats
    }

    /// Force-sets the counters — the warm-start restore hook, fed from
    /// a [`TrafficStats`] snapshot of a previously recorded run.
    pub fn restore_stats(&mut self, stats: TrafficStats) {
        self.stats = stats;
    }

    /// The device this model accounts for.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Energy that *would* have been spent had every reuse claim been a
    /// demand load — the savings headline the paper argues for. Gross
    /// of speculation: claims of prefetched configurations count here
    /// while their speculative write is charged in
    /// [`TrafficStats::prefetch_loads`]/`energy_uj`; net savings are
    /// the difference.
    pub fn energy_saved_uj(&self) -> u64 {
        self.stats.reuses * self.device.energy_per_load_uj
    }

    /// Bus traffic avoided through reuse claims, in bytes (gross of
    /// speculative traffic, like [`Self::energy_saved_uj`]).
    pub fn bytes_saved(&self) -> u64 {
        self.stats.reuses * self.device.bitstream_bytes
    }
}

impl TrafficStats {
    /// Fraction of load requests satisfied by reuse, in `[0, 1]`.
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.loads + self.reuses;
        if total == 0 {
            0.0
        } else {
            self.reuses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_accumulate_energy_and_traffic() {
        let mut m = EnergyModel::new(DeviceSpec::paper_default());
        m.record_load();
        m.record_load();
        let s = m.stats();
        assert_eq!(s.loads, 2);
        assert_eq!(s.bytes_moved, 2 * 350 * 1024);
        assert_eq!(s.energy_uj, 40_000);
    }

    #[test]
    fn reuses_cost_nothing_but_count_savings() {
        let mut m = EnergyModel::new(DeviceSpec::paper_default());
        m.record_load();
        m.record_reuse();
        m.record_reuse();
        let s = m.stats();
        assert_eq!(s.reuses, 2);
        assert_eq!(s.energy_uj, 20_000);
        assert_eq!(m.energy_saved_uj(), 40_000);
        assert_eq!(m.bytes_saved(), 2 * 350 * 1024);
    }

    #[test]
    fn prefetch_loads_charge_traffic_in_their_own_lane() {
        let mut m = EnergyModel::new(DeviceSpec::paper_default());
        m.record_load();
        m.record_prefetch();
        let s = m.stats();
        assert_eq!(s.loads, 1);
        assert_eq!(s.prefetch_loads, 1);
        assert_eq!(s.bytes_moved, 2 * 350 * 1024);
        assert_eq!(s.energy_uj, 40_000);
    }

    #[test]
    fn reuse_ratio() {
        let mut s = TrafficStats::default();
        assert_eq!(s.reuse_ratio(), 0.0);
        s.loads = 3;
        s.reuses = 1;
        assert!((s.reuse_ratio() - 0.25).abs() < 1e-12);
    }
}
