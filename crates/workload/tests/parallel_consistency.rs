//! Determinism of the parallel sweep substrate: `parallel_map` must be
//! observationally identical to a sequential map for any item/worker
//! combination, and a whole `Scenario` must tabulate identically
//! whether its policy cells run sequentially or fanned out.

use proptest::prelude::*;
use rtr_workload::arrivals::ArrivalProcess;
use rtr_workload::parallel::parallel_map;
use rtr_workload::Scenario;

/// A cheap but order-sensitive function: mixes the value with its
/// position so any reordering or dropped/duplicated item shows up.
fn mix(idx_value: (usize, u64)) -> u64 {
    let (idx, value) = idx_value;
    let mut z = value ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_map_equals_sequential_map(
        seed in any::<u64>(),
        items in 0usize..300,
        workers in 1usize..24,
    ) {
        let input: Vec<(usize, u64)> = (0..items)
            .map(|i| (i, seed.wrapping_add(i as u64)))
            .collect();
        let sequential: Vec<u64> = input.clone().into_iter().map(mix).collect();
        let parallel = parallel_map(input, workers, mix);
        prop_assert_eq!(parallel, sequential);
    }
}

#[test]
fn scenario_tables_identical_sequential_vs_parallel() {
    for scenario in [
        Scenario::paper_fig9(4, 40, 9),
        Scenario::streaming(
            4,
            40,
            9,
            ArrivalProcess::Poisson {
                mean_gap_us: 60_000,
            },
        ),
    ] {
        let sequential = scenario.run_with_workers(1);
        let parallel = scenario.run_with_workers(8);
        assert_eq!(
            sequential.to_markdown(),
            parallel.to_markdown(),
            "scenario {} diverged between sequential and parallel runs",
            scenario.name
        );
        assert_eq!(sequential.to_csv(), parallel.to_csv());
    }
}
