//! Property tests over every [`ArrivalProcess`] variant: outputs are
//! non-decreasing, deterministic per seed, exactly `count` long, and
//! `generate(0, _)` is an empty vector that nothing downstream panics
//! on — including the whole scenario pipeline.

use proptest::prelude::*;
use rtr_workload::{ArrivalProcess, Scenario};

/// The variant under test, drawn from a small strategy space. Index 0–3
/// selects the variant; the parameters are clamped to valid ranges (the
/// degenerate values have their own tests in `arrivals.rs`).
fn process(kind: u8, a: u64, b: u64) -> ArrivalProcess {
    let nonzero = |x: u64| 1 + (x % 1_000_000);
    match kind % 4 {
        0 => ArrivalProcess::Batch,
        1 => ArrivalProcess::Poisson {
            mean_gap_us: nonzero(a),
        },
        2 => ArrivalProcess::Periodic {
            period_us: nonzero(a),
        },
        _ => ArrivalProcess::Bursty {
            size: 1 + (b % 9) as usize,
            mean_gap_us: nonzero(a),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Counts 0, 1 and large: the output has exactly `count` entries,
    /// is sorted, and is bit-identical across calls with the same seed.
    #[test]
    fn outputs_are_sized_sorted_and_deterministic(
        kind in 0u8..4,
        a in any::<u64>(),
        b in any::<u64>(),
        seed in any::<u64>(),
        count_sel in 0usize..4,
        count_var in 2usize..50,
    ) {
        // Edge counts 0 and 1, a small varying count, and a large one.
        let count = match count_sel {
            0 => 0,
            1 => 1,
            2 => count_var,
            _ => 2_000,
        };
        let p = process(kind, a, b);
        prop_assert_eq!(p.validate(), Ok(()));
        let ts = p.try_generate(count, seed).expect("valid parameters");
        prop_assert_eq!(ts.len(), count);
        prop_assert!(ts.windows(2).all(|w| w[0] <= w[1]), "non-monotone: {:?}", ts);
        prop_assert_eq!(&ts, &p.generate(count, seed), "generate must be deterministic");
        // Zero jobs never panic, for any variant.
        prop_assert!(p.try_generate(0, seed).expect("valid").is_empty());
    }
}

/// A zero-application streaming scenario flows through sequence
/// generation, job preparation and the pooled engine without ever
/// reaching for a `last().unwrap()`-style pattern: the table simply has
/// its policy rows with all-zero metrics.
#[test]
fn zero_app_scenario_runs_end_to_end() {
    for arrivals in [
        ArrivalProcess::Batch,
        ArrivalProcess::Poisson {
            mean_gap_us: 50_000,
        },
        ArrivalProcess::Periodic { period_us: 10_000 },
        ArrivalProcess::Bursty {
            size: 4,
            mean_gap_us: 80_000,
        },
    ] {
        let s = Scenario::streaming(4, 0, 11, arrivals);
        let t = s.run();
        assert_eq!(t.len(), s.policies.len());
    }
}

/// One application exercises the no-backlog edge of every variant.
#[test]
fn single_app_scenario_runs_end_to_end() {
    let s = Scenario::streaming(
        4,
        1,
        5,
        ArrivalProcess::Bursty {
            size: 8,
            mean_gap_us: 100_000,
        },
    );
    let t = s.run();
    assert_eq!(t.len(), s.policies.len());
}
