//! Declarative QoS assignment for scenario and experiment workloads.
//!
//! A [`QosSpec`] describes how a generated application sequence is
//! split into service classes: every `stride`-th job is promoted to a
//! high-priority lane, optionally with a deadline derived from the
//! graph's ideal makespan (`arrival + ideal × stretch / 100`). The
//! default spec promotes nobody — exactly the pre-QoS uniform
//! best-effort workload — and deserializes from JSON `null` (and
//! therefore from an *absent* field), so pre-QoS scenario files keep
//! loading unchanged.

use rtr_manager::ideal::ideal_graph_makespan;
use rtr_manager::QosClass;
use rtr_sim::SimTime;
use rtr_taskgraph::TaskGraph;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How a workload's jobs are split into QoS classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QosSpec {
    /// Every `stride`-th job (1-based: jobs `stride-1, 2·stride-1, …`)
    /// is promoted; `0` promotes nobody (the pre-QoS workload).
    pub stride: usize,
    /// Lane priority of promoted jobs (best-effort jobs stay at 0).
    pub priority: u8,
    /// Deadline slack of promoted jobs, as a percentage of the graph's
    /// ideal makespan: `deadline = arrival + ideal × pct / 100`.
    /// `None` promotes without deadlines (lanes only).
    pub deadline_stretch_pct: Option<u64>,
}

impl QosSpec {
    /// The pre-QoS workload: one best-effort lane, no deadlines.
    pub const UNIFORM: QosSpec = QosSpec {
        stride: 0,
        priority: 0,
        deadline_stretch_pct: None,
    };

    /// Promotes every `stride`-th job to `priority` with a deadline of
    /// `stretch_pct`% of its ideal makespan after arrival.
    pub fn strided(stride: usize, priority: u8, stretch_pct: u64) -> Self {
        QosSpec {
            stride,
            priority,
            deadline_stretch_pct: Some(stretch_pct),
        }
    }

    /// True when this spec leaves the workload uniform best-effort.
    pub fn is_uniform(&self) -> bool {
        self.stride == 0 || (self.priority == 0 && self.deadline_stretch_pct.is_none())
    }

    /// Materialises per-job classes for `sequence` arriving at
    /// `arrivals` on an `rus`-wide device. Returns `None` for a
    /// uniform spec so callers keep the engine's zero-overhead
    /// default-QoS path.
    pub fn assign(
        &self,
        sequence: &[Arc<TaskGraph>],
        arrivals: &[SimTime],
        rus: usize,
    ) -> Option<Vec<QosClass>> {
        if self.is_uniform() {
            return None;
        }
        debug_assert_eq!(sequence.len(), arrivals.len());
        Some(
            sequence
                .iter()
                .zip(arrivals)
                .enumerate()
                .map(|(i, (g, &arrival))| {
                    if (i + 1) % self.stride != 0 {
                        return QosClass::default();
                    }
                    let mut q = QosClass::priority(self.priority);
                    if let Some(pct) = self.deadline_stretch_pct {
                        let ideal = ideal_graph_makespan(g, rus);
                        let slack_us = ideal.as_us().saturating_mul(pct) / 100;
                        q = q.with_deadline(arrival + rtr_sim::SimDuration::from_us(slack_us));
                    }
                    q
                })
                .collect(),
        )
    }
}

impl Default for QosSpec {
    fn default() -> Self {
        QosSpec::UNIFORM
    }
}

impl Serialize for QosSpec {
    fn serialize(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("stride".to_string(), Serialize::serialize(&self.stride));
        m.insert("priority".to_string(), Serialize::serialize(&self.priority));
        m.insert(
            "deadline_stretch_pct".to_string(),
            Serialize::serialize(&self.deadline_stretch_pct),
        );
        serde::Value::Object(m)
    }
}

impl Deserialize for QosSpec {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        // `null` / absent field → the uniform pre-QoS workload.
        if matches!(v, serde::Value::Null) {
            return Ok(QosSpec::default());
        }
        let m = serde::as_object(v)?;
        Ok(QosSpec {
            stride: serde::field(m, "stride")?,
            priority: serde::field(m, "priority")?,
            deadline_stretch_pct: serde::field(m, "deadline_stretch_pct")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_taskgraph::benchmarks;

    #[test]
    fn uniform_spec_assigns_nothing() {
        let seq: Vec<Arc<TaskGraph>> = vec![Arc::new(benchmarks::jpeg())];
        assert_eq!(QosSpec::UNIFORM.assign(&seq, &[SimTime::ZERO], 4), None);
        assert!(QosSpec::default().is_uniform());
    }

    #[test]
    fn strided_spec_promotes_every_kth_job() {
        let seq: Vec<Arc<TaskGraph>> = (0..6).map(|_| Arc::new(benchmarks::jpeg())).collect();
        let arrivals: Vec<SimTime> = (0..6).map(|i| SimTime::from_ms(10 * i)).collect();
        let spec = QosSpec::strided(3, 7, 150);
        let classes = spec.assign(&seq, &arrivals, 4).expect("non-uniform");
        assert_eq!(classes.len(), 6);
        for (i, c) in classes.iter().enumerate() {
            if (i + 1) % 3 == 0 {
                assert_eq!(c.priority, 7);
                // jpeg ideal on 4 RUs is 79 ms; 150% = 118.5 ms slack.
                let expected = arrivals[i] + rtr_sim::SimDuration::from_us(118_500);
                assert_eq!(c.deadline, Some(expected));
            } else {
                assert!(c.is_default());
            }
        }
    }

    #[test]
    fn round_trips_and_defaults_from_null() {
        let spec = QosSpec::strided(4, 3, 120);
        let back = QosSpec::deserialize(&spec.serialize()).unwrap();
        assert_eq!(back, spec);
        let legacy = QosSpec::deserialize(&serde::Value::Null).unwrap();
        assert_eq!(legacy, QosSpec::UNIFORM);
    }
}
