//! Application-sequence models.
//!
//! §VI of the paper: "we have executed a sequence of 500 applications
//! randomly selected from our set of benchmarks". [`SequenceModel`]
//! reproduces that (uniform) selection and adds weighted, bursty and
//! round-robin variants for the ablation experiments. All models are
//! deterministic given a seed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtr_taskgraph::TaskGraph;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How application instances are drawn from the template set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SequenceModel {
    /// Uniform random selection — the paper's model.
    UniformRandom,
    /// Weighted random selection (weights aligned with the template
    /// list; they need not sum to 1).
    Weighted(Vec<f64>),
    /// Markovian bursts: with probability `repeat_prob` the previous
    /// application repeats, otherwise a uniform fresh draw. High repeat
    /// probabilities model the recurrent-task workloads reuse thrives
    /// on.
    Bursty {
        /// Probability of repeating the previous application.
        repeat_prob: f64,
    },
    /// Deterministic round-robin over the template list.
    RoundRobin,
}

impl SequenceModel {
    /// Draws a sequence of `count` application instances.
    ///
    /// # Panics
    /// Panics if `templates` is empty, or if `Weighted` weights are
    /// invalid (wrong length, negative, or all zero).
    pub fn generate(
        &self,
        templates: &[Arc<TaskGraph>],
        count: usize,
        seed: u64,
    ) -> Vec<Arc<TaskGraph>> {
        assert!(!templates.is_empty(), "need at least one template");
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            SequenceModel::UniformRandom => (0..count)
                .map(|_| Arc::clone(&templates[rng.random_range(0..templates.len())]))
                .collect(),
            SequenceModel::Weighted(weights) => {
                assert_eq!(
                    weights.len(),
                    templates.len(),
                    "one weight per template required"
                );
                assert!(
                    weights.iter().all(|w| *w >= 0.0),
                    "weights must be non-negative"
                );
                let total: f64 = weights.iter().sum();
                assert!(total > 0.0, "weights must not all be zero");
                (0..count)
                    .map(|_| {
                        let mut x = rng.random_range(0.0..total);
                        let mut idx = 0;
                        for (i, w) in weights.iter().enumerate() {
                            if x < *w {
                                idx = i;
                                break;
                            }
                            x -= w;
                            idx = i;
                        }
                        Arc::clone(&templates[idx])
                    })
                    .collect()
            }
            SequenceModel::Bursty { repeat_prob } => {
                assert!(
                    (0.0..=1.0).contains(repeat_prob),
                    "repeat_prob must be a probability"
                );
                let mut out: Vec<Arc<TaskGraph>> = Vec::with_capacity(count);
                for _ in 0..count {
                    let repeat = !out.is_empty() && rng.random_bool(*repeat_prob);
                    if repeat {
                        out.push(Arc::clone(out.last().expect("non-empty")));
                    } else {
                        out.push(Arc::clone(&templates[rng.random_range(0..templates.len())]));
                    }
                }
                out
            }
            SequenceModel::RoundRobin => (0..count)
                .map(|i| Arc::clone(&templates[i % templates.len()]))
                .collect(),
        }
    }
}

/// The paper's experimental workload: 500 uniform-random picks from
/// {JPEG, MPEG-1, Hough}.
pub fn paper_workload(seed: u64) -> Vec<Arc<TaskGraph>> {
    let templates: Vec<Arc<TaskGraph>> = rtr_taskgraph::benchmarks::multimedia_suite()
        .into_iter()
        .map(Arc::new)
        .collect();
    SequenceModel::UniformRandom.generate(&templates, 500, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_taskgraph::benchmarks;

    fn templates() -> Vec<Arc<TaskGraph>> {
        benchmarks::multimedia_suite()
            .into_iter()
            .map(Arc::new)
            .collect()
    }

    #[test]
    fn uniform_is_deterministic_and_covers_templates() {
        let t = templates();
        let a = SequenceModel::UniformRandom.generate(&t, 500, 42);
        let b = SequenceModel::UniformRandom.generate(&t, 500, 42);
        assert_eq!(a.len(), 500);
        assert!(a.iter().zip(&b).all(|(x, y)| Arc::ptr_eq(x, y)));
        // All three templates appear in a 500-long sequence.
        for tpl in &t {
            assert!(a.iter().any(|g| Arc::ptr_eq(g, tpl)));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let t = templates();
        let a = SequenceModel::UniformRandom.generate(&t, 100, 1);
        let b = SequenceModel::UniformRandom.generate(&t, 100, 2);
        assert!(a.iter().zip(&b).any(|(x, y)| !Arc::ptr_eq(x, y)));
    }

    #[test]
    fn weighted_respects_zero_weight() {
        let t = templates();
        let seq = SequenceModel::Weighted(vec![1.0, 0.0, 0.0]).generate(&t, 50, 3);
        assert!(seq.iter().all(|g| Arc::ptr_eq(g, &t[0])));
    }

    #[test]
    fn bursty_one_repeats_forever() {
        let t = templates();
        let seq = SequenceModel::Bursty { repeat_prob: 1.0 }.generate(&t, 20, 5);
        assert!(seq.iter().all(|g| Arc::ptr_eq(g, &seq[0])));
    }

    #[test]
    fn bursty_zero_equals_uniform_draws() {
        let t = templates();
        let seq = SequenceModel::Bursty { repeat_prob: 0.0 }.generate(&t, 50, 5);
        assert_eq!(seq.len(), 50);
    }

    #[test]
    fn round_robin_cycles() {
        let t = templates();
        let seq = SequenceModel::RoundRobin.generate(&t, 7, 0);
        for (i, g) in seq.iter().enumerate() {
            assert!(Arc::ptr_eq(g, &t[i % 3]));
        }
    }

    #[test]
    fn paper_workload_is_500_apps() {
        let w = paper_workload(42);
        assert_eq!(w.len(), 500);
    }

    #[test]
    fn serde_round_trip() {
        let m = SequenceModel::Bursty { repeat_prob: 0.25 };
        let json = serde_json::to_string(&m).unwrap();
        assert_eq!(serde_json::from_str::<SequenceModel>(&json).unwrap(), m);
    }

    #[test]
    #[should_panic(expected = "at least one template")]
    fn empty_templates_panics() {
        SequenceModel::UniformRandom.generate(&[], 5, 0);
    }
}
