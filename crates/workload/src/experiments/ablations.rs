//! Ablations beyond the paper's evaluation (DESIGN.md §7).
//!
//! * Dynamic-List window sweep (1–8 graphs): how much future knowledge
//!   Local LFD actually needs.
//! * Reconfiguration-latency sweep: where replacement stops mattering.
//! * Sequence-model sweep: burstier workloads give all policies more
//!   reuse, but the LFD-family advantage persists.

use crate::parallel::parallel_map_with;
use crate::policies::PolicyKind;
use crate::runner::{pooled_workers, CellConfig};
use crate::sequence::SequenceModel;
use crate::table::{fmt_f, Table};
use rtr_core::TemplateRegistry;
use rtr_hw::DeviceSpec;
use rtr_sim::SimDuration;
use rtr_taskgraph::TaskGraph;
use std::sync::Arc;

fn templates() -> Vec<Arc<TaskGraph>> {
    rtr_taskgraph::benchmarks::multimedia_suite()
        .into_iter()
        .map(Arc::new)
        .collect()
}

/// Sweep of the Dynamic-List window for Local LFD (reuse % and
/// remaining overhead % on a fixed system).
pub fn dl_window_sweep(apps: usize, seed: u64, rus: usize, windows: &[usize]) -> Table {
    let seq = SequenceModel::UniformRandom.generate(&templates(), apps, seed);
    let registry = Arc::new(TemplateRegistry::new());
    let results = parallel_map_with(
        windows.to_vec(),
        crate::parallel::default_workers(),
        pooled_workers(&registry),
        |runner, w| {
            let cell = CellConfig::new(
                PolicyKind::LocalLfd {
                    window: w,
                    skip: false,
                },
                rus,
            );
            let out = runner.run(&seq, &cell).expect("sweep cell simulates");
            (
                w,
                out.stats.reuse_rate_pct(),
                out.stats.remaining_overhead_pct(),
            )
        },
    );
    let mut t = Table::new(
        format!("Ablation — DL window sweep ({rus} RUs, {apps} apps)"),
        &["DL window", "Reuse (%)", "Remaining overhead (%)"],
    );
    for (w, reuse, rem) in results {
        t.push_row(vec![w.to_string(), fmt_f(reuse, 2), fmt_f(rem, 2)]);
    }
    t
}

/// Sweep of the reconfiguration latency for a fixed policy pair.
pub fn latency_sweep(apps: usize, seed: u64, rus: usize, latencies_ms: &[u64]) -> Table {
    let seq = SequenceModel::UniformRandom.generate(&templates(), apps, seed);
    let grid: Vec<(u64, PolicyKind)> = latencies_ms
        .iter()
        .flat_map(|&l| {
            [
                (l, PolicyKind::Lru),
                (
                    l,
                    PolicyKind::LocalLfd {
                        window: 1,
                        skip: false,
                    },
                ),
                (l, PolicyKind::Lfd),
            ]
        })
        .collect();
    let registry = Arc::new(TemplateRegistry::new());
    let results = parallel_map_with(
        grid,
        crate::parallel::default_workers(),
        pooled_workers(&registry),
        |runner, (l, policy)| {
            let mut cell = CellConfig::new(policy, rus);
            cell.device = DeviceSpec::paper_default().with_latency(SimDuration::from_ms(l));
            let out = runner.run(&seq, &cell).expect("sweep cell simulates");
            (l, policy, out.stats.total_overhead().as_ms_f64())
        },
    );
    let mut t = Table::new(
        format!("Ablation — reconfiguration latency sweep ({rus} RUs, overhead in ms)"),
        &["Latency (ms)", "LRU", "Local LFD (1)", "LFD"],
    );
    for &l in latencies_ms {
        let get = |p: &PolicyKind| {
            results
                .iter()
                .find(|(ll, pp, _)| *ll == l && pp == p)
                .map(|(_, _, o)| *o)
                .expect("grid covered")
        };
        t.push_row(vec![
            l.to_string(),
            fmt_f(get(&PolicyKind::Lru), 1),
            fmt_f(
                get(&PolicyKind::LocalLfd {
                    window: 1,
                    skip: false,
                }),
                1,
            ),
            fmt_f(get(&PolicyKind::Lfd), 1),
        ]);
    }
    t
}

/// Tie-break ablation: the paper's first-candidate rule vs an LRU
/// tie-break among equally-distant victims, across DL windows.
pub fn tie_break_sweep(apps: usize, seed: u64, rus: usize) -> Table {
    use rtr_core::{LfdPolicy, TieBreak};
    use rtr_manager::{Engine, JobSpec, Lookahead, ManagerConfig};

    let seq = SequenceModel::UniformRandom.generate(&templates(), apps, seed);
    let jobs: Vec<JobSpec> = seq.iter().map(|g| JobSpec::new(Arc::clone(g))).collect();
    let mut t = Table::new(
        format!("Ablation — Local LFD tie-break ({rus} RUs, reuse % / overhead ms)"),
        &["DL window", "First candidate (paper)", "LRU tie-break"],
    );
    // One pooled engine serves all six runs; each `reset_with_config`
    // is bit-exact with a fresh `simulate` (the sweep's window axis is
    // a config change, not an engine rebuild).
    let base_cfg = ManagerConfig::paper_default()
        .with_rus(rus)
        .with_trace(false);
    let mut engine = Engine::new(&base_cfg);
    let run = |engine: &mut Engine, cfg: &ManagerConfig, policy: &mut LfdPolicy| {
        use rtr_manager::ReplacementPolicy;
        policy.reset();
        engine.reset_with_config(cfg, &jobs);
        engine.run(policy);
        engine.outcome().expect("tie-break cell simulates")
    };
    for window in [1usize, 2, 4] {
        let cfg = base_cfg.clone().with_lookahead(Lookahead::Graphs(window));
        let mut first = LfdPolicy::local(window);
        let a = run(&mut engine, &cfg, &mut first);
        let mut lru = LfdPolicy::local(window).with_tie_break(TieBreak::LeastRecentlyUsed);
        let b = run(&mut engine, &cfg, &mut lru);
        t.push_row(vec![
            window.to_string(),
            format!(
                "{} / {}",
                fmt_f(a.stats.reuse_rate_pct(), 2),
                fmt_f(a.stats.total_overhead().as_ms_f64(), 0)
            ),
            format!(
                "{} / {}",
                fmt_f(b.stats.reuse_rate_pct(), 2),
                fmt_f(b.stats.total_overhead().as_ms_f64(), 0)
            ),
        ]);
    }
    t
}

/// Sweep of the sequence model (workload shape).
pub fn sequence_model_sweep(apps: usize, seed: u64, rus: usize) -> Table {
    let models: Vec<(&str, SequenceModel)> = vec![
        ("Uniform", SequenceModel::UniformRandom),
        ("Bursty 0.5", SequenceModel::Bursty { repeat_prob: 0.5 }),
        ("Bursty 0.8", SequenceModel::Bursty { repeat_prob: 0.8 }),
        ("RoundRobin", SequenceModel::RoundRobin),
    ];
    let tpls = templates();
    let grid: Vec<(usize, PolicyKind)> = (0..models.len())
        .flat_map(|i| {
            [
                (i, PolicyKind::Lru),
                (
                    i,
                    PolicyKind::LocalLfd {
                        window: 1,
                        skip: false,
                    },
                ),
                (i, PolicyKind::Lfd),
            ]
        })
        .collect();
    let sequences: Vec<Vec<Arc<TaskGraph>>> = models
        .iter()
        .map(|(_, m)| m.generate(&tpls, apps, seed))
        .collect();
    let registry = Arc::new(TemplateRegistry::new());
    let results = parallel_map_with(
        grid,
        crate::parallel::default_workers(),
        pooled_workers(&registry),
        |runner, (mi, policy)| {
            let cell = CellConfig::new(policy, rus);
            let out = runner
                .run(&sequences[mi], &cell)
                .expect("sweep cell simulates");
            (mi, policy, out.stats.reuse_rate_pct())
        },
    );
    let mut t = Table::new(
        format!("Ablation — workload model sweep ({rus} RUs, reuse %)"),
        &["Model", "LRU", "Local LFD (1)", "LFD"],
    );
    for (mi, (name, _)) in models.iter().enumerate() {
        let get = |p: &PolicyKind| {
            results
                .iter()
                .find(|(m, pp, _)| *m == mi && pp == p)
                .map(|(_, _, r)| *r)
                .expect("grid covered")
        };
        t.push_row(vec![
            name.to_string(),
            fmt_f(get(&PolicyKind::Lru), 2),
            fmt_f(
                get(&PolicyKind::LocalLfd {
                    window: 1,
                    skip: false,
                }),
                2,
            ),
            fmt_f(get(&PolicyKind::Lfd), 2),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dl_sweep_reuse_is_monotonic_ish() {
        let t = dl_window_sweep(60, 5, 4, &[1, 2, 4, 8]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn tie_break_sweep_runs() {
        let t = tie_break_sweep(60, 9, 6);
        assert_eq!(t.len(), 3);
        assert!(t.to_markdown().contains("LRU tie-break"));
    }

    #[test]
    fn latency_sweep_overhead_grows_with_latency() {
        let t = latency_sweep(40, 6, 4, &[1, 4, 16]);
        let csv = t.to_csv();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        let overhead = |row: &str| -> f64 { row.split(',').nth(3).unwrap().parse().unwrap() };
        assert!(overhead(rows[2]) >= overhead(rows[0]));
    }

    #[test]
    fn bursty_beats_uniform_reuse_for_lfd() {
        // A clairvoyant policy exploits bursts (immediate repeats of a
        // graph reuse its resident configurations); LRU may not — its
        // own loads evict the configs the repeat needs (the pathology
        // the paper's Fig. 2 illustrates).
        let t = sequence_model_sweep(300, 7, 4);
        let csv = t.to_csv();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        let lfd = |row: &str| -> f64 { row.split(',').nth(3).unwrap().parse().unwrap() };
        let uniform = lfd(rows[0]);
        let bursty8 = lfd(rows[2]);
        assert!(
            bursty8 > uniform,
            "bursty 0.8 ({bursty8}) should beat uniform ({uniform}) for LFD"
        );
    }
}
