//! Per-figure/table experiment drivers.
//!
//! Each module regenerates one artefact of the paper's evaluation
//! section; see `DESIGN.md` §6 for the experiment index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results.

pub mod ablations;
pub mod arrivals;
pub mod faults;
pub mod fig9;
pub mod fleet;
pub mod prefetch;
pub mod qos;
pub mod table1;
pub mod table2;
