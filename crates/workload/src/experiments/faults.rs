//! `fig_faults` — graceful degradation under injected hardware
//! faults.
//!
//! Sweeps fault-rate class × replacement policy × RU count on the
//! multimedia workload (the paper's batch setting). Each cell runs
//! the same application sequence under a seeded [`FaultPlan`]:
//! transient load corruption retried with bounded exponential
//! backoff, resident-configuration upsets repaired by lazy re-load,
//! and RU hard faults that quarantine the unit and let the engine run
//! gracefully degraded until the unit heals. Reported per cell: the
//! fault/retry/repair/quarantine/heal counters, the degraded-pool and
//! lost-work totals, the availability (time-weighted fraction of the
//! run with the full pool), and the makespan/reuse degradation the
//! recovery machinery costs.
//!
//! The fault-off rows must be byte-identical to the plain batch path
//! ([`assert_faults_off_matches_baseline`] pins that; CI runs it
//! through the `fig_faults -- smoke` binary).

use crate::parallel::parallel_map_with;
use crate::policies::PolicyKind;
use crate::runner::{pooled_workers, CellConfig, CellRunner};
use crate::sequence::SequenceModel;
use crate::table::{fmt_f, Table};
use rtr_core::TemplateRegistry;
use rtr_manager::FaultPlan;
use rtr_taskgraph::TaskGraph;
use std::sync::Arc;

/// Salt decorrelating the fault-decision stream from the
/// application-sequence stream drawn with the same experiment seed.
const FAULT_SEED_SALT: u64 = 0xDE6A_DE01;

/// The fault-rate axis, benign → hostile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultRate {
    /// No faults — the exact pre-fault code path (the control row).
    Off,
    /// [`FaultPlan::low`]: occasional corruption, rare upsets/hard
    /// faults, 20 ms repairs.
    Low,
    /// [`FaultPlan::high`]: frequent corruption, tight retry budget,
    /// 40 ms repairs.
    High,
}

impl FaultRate {
    /// All rates, in sweep order (the control row first).
    pub const ALL: [FaultRate; 3] = [FaultRate::Off, FaultRate::Low, FaultRate::High];

    /// Stable label (table rows, CSV).
    pub fn label(&self) -> &'static str {
        match self {
            FaultRate::Off => "off",
            FaultRate::Low => "low",
            FaultRate::High => "high",
        }
    }

    /// The plan this rate decodes to under `seed`.
    pub fn plan(&self, seed: u64) -> FaultPlan {
        match self {
            FaultRate::Off => FaultPlan::off(),
            FaultRate::Low => FaultPlan::low(seed ^ FAULT_SEED_SALT),
            FaultRate::High => FaultPlan::high(seed ^ FAULT_SEED_SALT),
        }
    }
}

/// Grid parameters.
#[derive(Debug, Clone)]
pub struct FaultParams {
    /// Applications per run.
    pub apps: usize,
    /// Seed for the sequence and fault streams.
    pub seed: u64,
    /// RU counts to sweep (the degraded-pool axis).
    pub rus: Vec<usize>,
    /// Replacement policies to compare.
    pub policies: Vec<PolicyKind>,
    /// Fault-rate classes to sweep.
    pub rates: Vec<FaultRate>,
    /// Worker threads for the sweep.
    pub workers: usize,
}

impl Default for FaultParams {
    fn default() -> Self {
        FaultParams {
            apps: 200,
            seed: 42,
            rus: vec![2, 4, 6],
            policies: vec![PolicyKind::Lru, PolicyKind::Lfd],
            rates: FaultRate::ALL.to_vec(),
            workers: crate::parallel::default_workers(),
        }
    }
}

impl FaultParams {
    /// A small grid for tests and CI smoke runs.
    pub fn smoke() -> Self {
        FaultParams {
            apps: 60,
            seed: 7,
            rus: vec![2, 4],
            policies: vec![PolicyKind::Lru],
            ..FaultParams::default()
        }
    }
}

/// Runs the (rate × policy × RU) grid and tabulates it.
pub fn fig_faults(params: &FaultParams) -> Table {
    let templates: Vec<Arc<TaskGraph>> = rtr_taskgraph::benchmarks::multimedia_suite()
        .into_iter()
        .map(Arc::new)
        .collect();
    let sequence = SequenceModel::UniformRandom.generate(&templates, params.apps, params.seed);

    let mut grid: Vec<(FaultRate, PolicyKind, usize)> = Vec::new();
    for &rate in &params.rates {
        for &policy in &params.policies {
            for &rus in &params.rus {
                grid.push((rate, policy, rus));
            }
        }
    }

    let registry = Arc::new(TemplateRegistry::new());
    let rows = parallel_map_with(
        grid,
        params.workers,
        pooled_workers(&registry),
        |runner, (rate, policy, rus)| {
            let cell = CellConfig::new(policy, rus).with_faults(rate.plan(params.seed));
            let out = runner
                .run(&sequence, &cell)
                .expect("fault cell simulates to completion");
            let f = &out.stats.faults;
            vec![
                rate.label().to_string(),
                policy.label(),
                rus.to_string(),
                out.stats.graph_completions.len().to_string(),
                f.injected.to_string(),
                f.retries.to_string(),
                f.repairs.to_string(),
                f.quarantines.to_string(),
                f.heals.to_string(),
                fmt_f(f.degraded_time.as_ms_f64(), 1),
                fmt_f(f.lost_work_cycles.as_ms_f64(), 1),
                fmt_f(out.stats.availability_pct(), 2),
                fmt_f(out.stats.reuse_rate_pct(), 2),
                out.stats.loads.to_string(),
                fmt_f(out.stats.makespan.as_ms_f64(), 1),
            ]
        },
    );

    let mut t = Table::new(
        format!(
            "fig_faults — {} apps, seed {} (off = fault-free control)",
            params.apps, params.seed
        ),
        &[
            "Faults",
            "Policy",
            "RUs",
            "Jobs",
            "Injected",
            "Retries",
            "Repairs",
            "Quarantines",
            "Heals",
            "Degraded (ms)",
            "Lost work (ms)",
            "Availability (%)",
            "Reuse (%)",
            "Loads",
            "Makespan (ms)",
        ],
    );
    for row in rows {
        t.push_row(row);
    }
    t
}

/// Asserts that every fault-off cell of the given parameters is
/// byte-identical (stats *and* trace, serialised to JSON) to the same
/// cell run through a [`CellConfig`] that never mentions faults. This
/// is the golden guard CI runs: a fault-model regression that leaks
/// into the disabled path turns the build red instead of silently
/// drifting a golden number.
///
/// # Panics
/// Panics on the first differing cell.
pub fn assert_faults_off_matches_baseline(params: &FaultParams) {
    let templates: Vec<Arc<TaskGraph>> = rtr_taskgraph::benchmarks::multimedia_suite()
        .into_iter()
        .map(Arc::new)
        .collect();
    let sequence = SequenceModel::UniformRandom.generate(&templates, params.apps, params.seed);
    let mut runner = CellRunner::new();
    for &policy in &params.policies {
        for &rus in &params.rus {
            let mut off =
                CellConfig::new(policy, rus).with_faults(FaultRate::Off.plan(params.seed));
            off.record_trace = true;
            let mut plain = CellConfig::new(policy, rus);
            plain.record_trace = true;
            let a = runner.run(&sequence, &off).expect("cell simulates");
            let b = runner.run(&sequence, &plain).expect("cell simulates");
            let a_json = (
                serde_json::to_string(&a.stats).expect("stats serialise"),
                serde_json::to_string(&a.trace).expect("trace serialises"),
            );
            let b_json = (
                serde_json::to_string(&b.stats).expect("stats serialise"),
                serde_json::to_string(&b.trace).expect("trace serialises"),
            );
            assert_eq!(
                a_json,
                b_json,
                "fault-off output diverged from the baseline path ({} × {rus} RUs)",
                policy.label()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_is_deterministic() {
        let params = FaultParams::smoke();
        let a = fig_faults(&params);
        let b = fig_faults(&params);
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(
            a.len(),
            params.rates.len() * params.policies.len() * params.rus.len()
        );
    }

    #[test]
    fn faults_off_rows_match_plain_batch_path() {
        assert_faults_off_matches_baseline(&FaultParams::smoke());
    }

    /// The acceptance properties: the degraded-pool path never loses a
    /// job (every row completes the full batch), the low-rate rows
    /// keep availability above 90%, and faults actually inject at both
    /// non-zero rates.
    #[test]
    fn low_rate_keeps_availability_and_no_jobs_are_lost() {
        let params = FaultParams::smoke();
        let csv = fig_faults(&params).to_csv();
        let mut low_rows = 0;
        let mut injected_by_rate = [0u64; 3];
        for line in csv.lines().skip(1) {
            let c: Vec<&str> = line.split(',').collect();
            let jobs: u64 = c[3].parse().expect("jobs");
            assert_eq!(
                jobs, params.apps as u64,
                "a fault row lost jobs:\n{line}\n{csv}"
            );
            let rate_idx = FaultRate::ALL
                .iter()
                .position(|r| r.label() == c[0])
                .expect("rate label");
            injected_by_rate[rate_idx] += c[4].parse::<u64>().expect("injected");
            if c[0] == "low" {
                low_rows += 1;
                let availability: f64 = c[11].parse().expect("availability");
                assert!(
                    availability > 90.0,
                    "low-rate availability {availability}% !> 90%:\n{line}"
                );
            }
        }
        assert!(low_rows > 0, "low-rate rows present:\n{csv}");
        assert_eq!(injected_by_rate[0], 0, "off rows must not inject");
        assert!(
            injected_by_rate[1] > 0 && injected_by_rate[2] > 0,
            "non-zero rates must inject, got {injected_by_rate:?}:\n{csv}"
        );
    }
}
