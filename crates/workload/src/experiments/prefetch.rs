//! `fig_prefetch` — reuse-aware configuration prefetching under
//! streaming arrivals.
//!
//! Sweeps prefetch depth × policy × arrival intensity on the multimedia
//! workload: with the reconfiguration port otherwise idle, the engine's
//! planner speculatively loads the nearest upcoming configurations into
//! RUs whose residents have farther next uses (never evicting a nearer
//! one — the Fig. 3 guard). Reported per cell: the zero-latency reuse
//! rate *and* the traffic-free demand reuse rate (a prefetch hit hides
//! the port latency but still moved a bitstream on the speculative
//! lane — the two columns bracket that trade), visible overhead,
//! loads, and the prefetch issue/hit/cancel/waste counters.
//!
//! Depth 0 rows are the prefetch-off baseline and must be byte-identical
//! to the plain streaming path ([`assert_prefetch_off_matches_baseline`]
//! pins that; CI runs it through the `fig_prefetch -- smoke` binary).

use crate::arrivals::ArrivalProcess;
use crate::parallel::parallel_map_with;
use crate::policies::PolicyKind;
use crate::runner::{pooled_workers, CellConfig, CellRunner};
use crate::sequence::SequenceModel;
use crate::table::{fmt_f, Table};
use rtr_core::TemplateRegistry;
use rtr_taskgraph::TaskGraph;
use std::sync::Arc;

/// Salt decorrelating arrival instants from the application sequence.
const ARRIVAL_SEED_SALT: u64 = 0xF16A_7713;

/// Grid parameters.
#[derive(Debug, Clone)]
pub struct PrefetchParams {
    /// Applications per run.
    pub apps: usize,
    /// Seed for sequence + arrival streams.
    pub seed: u64,
    /// RU counts to sweep.
    pub rus: Vec<usize>,
    /// Policies to compare.
    pub policies: Vec<PolicyKind>,
    /// Arrival processes to sweep (the intensity axis; includes batch
    /// as the paper-setting control).
    pub processes: Vec<ArrivalProcess>,
    /// Prefetch depths to sweep (0 = off baseline).
    pub depths: Vec<usize>,
    /// Worker threads for the sweep.
    pub workers: usize,
}

impl Default for PrefetchParams {
    fn default() -> Self {
        PrefetchParams {
            apps: 200,
            seed: 42,
            rus: vec![4, 8],
            policies: vec![
                PolicyKind::Lru,
                PolicyKind::LocalLfd {
                    window: 1,
                    skip: false,
                },
                PolicyKind::LocalLfd {
                    window: 4,
                    skip: false,
                },
                PolicyKind::Lfd,
            ],
            processes: default_processes(),
            depths: vec![0, 1, 2, 4],
            workers: crate::parallel::default_workers(),
        }
    }
}

impl PrefetchParams {
    /// A small grid for tests and CI smoke runs.
    pub fn smoke() -> Self {
        PrefetchParams {
            apps: 40,
            seed: 7,
            rus: vec![4],
            policies: vec![
                PolicyKind::LocalLfd {
                    window: 1,
                    skip: false,
                },
                PolicyKind::Lfd,
            ],
            processes: vec![
                ArrivalProcess::Batch,
                ArrivalProcess::Poisson {
                    mean_gap_us: 100_000,
                },
            ],
            depths: vec![0, 4],
            workers: 2,
        }
    }
}

/// The arrival-intensity axis: batch (the paper's setting) plus the
/// Poisson sweep and the structured feeds of `fig_arrivals`.
pub fn default_processes() -> Vec<ArrivalProcess> {
    vec![
        ArrivalProcess::Batch,
        ArrivalProcess::Poisson {
            mean_gap_us: 25_000,
        },
        ArrivalProcess::Poisson {
            mean_gap_us: 100_000,
        },
        ArrivalProcess::Poisson {
            mean_gap_us: 400_000,
        },
        ArrivalProcess::Periodic { period_us: 100_000 },
        ArrivalProcess::Bursty {
            size: 8,
            mean_gap_us: 800_000,
        },
    ]
}

/// Runs the (process × RU × policy × depth) grid and tabulates it.
///
/// # Panics
/// Panics on the driving thread — before any worker spawns — if a
/// degenerate arrival process is configured (see
/// [`ArrivalProcess::validate`]).
pub fn fig_prefetch(params: &PrefetchParams) -> Table {
    for p in &params.processes {
        p.validate()
            .unwrap_or_else(|e| panic!("fig_prefetch parameters: {e}"));
    }
    let templates: Vec<Arc<TaskGraph>> = rtr_taskgraph::benchmarks::multimedia_suite()
        .into_iter()
        .map(Arc::new)
        .collect();
    let sequence = SequenceModel::UniformRandom.generate(&templates, params.apps, params.seed);
    let arrival_streams: Vec<Vec<rtr_sim::SimTime>> = params
        .processes
        .iter()
        .map(|p| p.generate(params.apps, params.seed ^ ARRIVAL_SEED_SALT))
        .collect();

    let mut grid: Vec<(usize, usize, PolicyKind, usize)> = Vec::new();
    for proc_idx in 0..params.processes.len() {
        for &rus in &params.rus {
            for &policy in &params.policies {
                for &depth in &params.depths {
                    grid.push((proc_idx, rus, policy, depth));
                }
            }
        }
    }

    let registry = Arc::new(TemplateRegistry::new());
    let rows = parallel_map_with(
        grid,
        params.workers,
        pooled_workers(&registry),
        |runner, (proc_idx, rus, policy, depth)| {
            let cell = CellConfig::new(policy, rus).with_prefetch_depth(depth);
            let out = runner
                .run_with_arrivals(&sequence, Some(&arrival_streams[proc_idx]), &cell)
                .expect("prefetch cell simulates to completion");
            let pf = out.stats.prefetch;
            vec![
                params.processes[proc_idx].label(),
                rus.to_string(),
                policy.label(),
                depth.to_string(),
                fmt_f(out.stats.reuse_rate_pct(), 2),
                fmt_f(out.stats.demand_reuse_rate_pct(), 2),
                fmt_f(out.stats.total_overhead().as_ms_f64(), 1),
                fmt_f(out.stats.remaining_overhead_pct(), 2),
                out.stats.loads.to_string(),
                pf.issued.to_string(),
                pf.hits.to_string(),
                pf.cancelled.to_string(),
                pf.wasted.to_string(),
                fmt_f(out.stats.mean_sojourn_ms(), 1),
            ]
        },
    );

    let mut t = Table::new(
        format!(
            "fig_prefetch — {} apps, seed {} (depth 0 = prefetch off)",
            params.apps, params.seed
        ),
        &[
            "Arrivals",
            "RUs",
            "Policy",
            "Depth",
            "Reuse (%)",
            "Demand reuse (%)",
            "Overhead (ms)",
            "Remaining (%)",
            "Loads",
            "PF issued",
            "PF hits",
            "PF cancelled",
            "PF wasted",
            "Mean sojourn (ms)",
        ],
    );
    for row in rows {
        t.push_row(row);
    }
    t
}

/// Asserts that every depth-0 cell of the given parameters is
/// byte-identical (stats *and* trace, serialised to JSON) to the same
/// cell run through the plain pre-prefetch streaming path
/// (a [`CellConfig`] that never mentions prefetch). This is the golden
/// guard CI runs: a prefetch regression that leaks into the disabled
/// path turns the build red instead of silently drifting a reuse rate.
///
/// # Panics
/// Panics on the first differing cell.
pub fn assert_prefetch_off_matches_baseline(params: &PrefetchParams) {
    let templates: Vec<Arc<TaskGraph>> = rtr_taskgraph::benchmarks::multimedia_suite()
        .into_iter()
        .map(Arc::new)
        .collect();
    let sequence = SequenceModel::UniformRandom.generate(&templates, params.apps, params.seed);
    let mut runner = CellRunner::new();
    for process in &params.processes {
        let arrivals = process.generate(params.apps, params.seed ^ ARRIVAL_SEED_SALT);
        for &rus in &params.rus {
            for &policy in &params.policies {
                let mut off = CellConfig::new(policy, rus).with_prefetch_depth(0);
                off.record_trace = true;
                let mut plain = CellConfig::new(policy, rus);
                plain.record_trace = true;
                let a = runner
                    .run_with_arrivals(&sequence, Some(&arrivals), &off)
                    .expect("cell simulates");
                let b = runner
                    .run_with_arrivals(&sequence, Some(&arrivals), &plain)
                    .expect("cell simulates");
                let a_json = (
                    serde_json::to_string(&a.stats).expect("stats serialise"),
                    serde_json::to_string(&a.trace).expect("trace serialises"),
                );
                let b_json = (
                    serde_json::to_string(&b.stats).expect("stats serialise"),
                    serde_json::to_string(&b.trace).expect("trace serialises"),
                );
                assert_eq!(
                    a_json,
                    b_json,
                    "prefetch-off output diverged from the baseline path \
                     ({} / {rus} RUs / {})",
                    process.label(),
                    policy.label()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_is_deterministic() {
        let params = PrefetchParams::smoke();
        let a = fig_prefetch(&params);
        let b = fig_prefetch(&params);
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(
            a.len(),
            params.processes.len() * params.rus.len() * params.policies.len() * params.depths.len()
        );
    }

    #[test]
    fn prefetch_off_rows_match_plain_streaming_path() {
        assert_prefetch_off_matches_baseline(&PrefetchParams::smoke());
    }

    /// The acceptance property: on a non-batch arrival intensity, both
    /// Local LFD and the LFD oracle see their visible reconfiguration
    /// overhead drop with prefetch on — without losing reuse rate.
    #[test]
    fn prefetch_improves_lfd_policies_on_streaming_arrivals() {
        let params = PrefetchParams::smoke();
        let csv = fig_prefetch(&params).to_csv();
        let cell = |policy: &str, depth: usize| -> (f64, f64) {
            let row = csv
                .lines()
                .find(|l| {
                    let c: Vec<&str> = l.split(',').collect();
                    c[0] == "poisson(100ms)" && c[2] == policy && c[3] == depth.to_string()
                })
                .unwrap_or_else(|| panic!("missing row {policy}/{depth} in\n{csv}"));
            let c: Vec<&str> = row.split(',').collect();
            (
                c[4].parse().expect("reuse"),
                c[6].parse().expect("overhead"),
            )
        };
        for policy in ["Local LFD (1)", "LFD"] {
            let (reuse_off, overhead_off) = cell(policy, 0);
            let (reuse_on, overhead_on) = cell(policy, 4);
            assert!(
                overhead_on < overhead_off,
                "{policy}: prefetch-on overhead {overhead_on} !< {overhead_off}"
            );
            assert!(
                reuse_on >= reuse_off,
                "{policy}: the guard must not trade reuse away \
                 ({reuse_on} < {reuse_off})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "batch setting")]
    fn degenerate_processes_fail_on_the_driving_thread() {
        let mut params = PrefetchParams::smoke();
        params.processes = vec![ArrivalProcess::Poisson { mean_gap_us: 0 }];
        let _ = fig_prefetch(&params);
    }
}
