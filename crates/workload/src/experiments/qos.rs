//! `fig_qos` — preemptive, deadline-aware scheduling under streaming
//! arrivals.
//!
//! Sweeps preemption mode × QoS class mix × arrival intensity on the
//! multimedia workload. Every `stride`-th application is promoted to a
//! high-priority lane with a deadline derived from its ideal makespan;
//! the engine either ignores the lanes for suspension
//! ([`PreemptionMode::Off`] — the run-to-completion baseline), kills
//! in-flight work on preemption (`Kill`, replaying it later), or
//! checkpoints it (`Checkpoint`, resuming the remainder plus a restore
//! penalty). Reported per cell: the promoted class's deadline-miss
//! rate and sojourn percentiles, the best-effort class's mean sojourn
//! (the price the low lane pays), the preemption/checkpoint/replay
//! counters with the lost-work total, and the run's reuse rate — the
//! configuration-reuse cost of preemption, which disturbs residency.
//!
//! The uniform-mix `Off` rows must be byte-identical to the plain
//! streaming path ([`assert_preemption_off_matches_baseline`] pins
//! that; CI runs it through the `fig_qos -- smoke` binary).

use crate::arrivals::ArrivalProcess;
use crate::parallel::parallel_map_with;
use crate::policies::PolicyKind;
use crate::qos::QosSpec;
use crate::runner::{pooled_workers, CellConfig, CellRunner};
use crate::sequence::SequenceModel;
use crate::table::{fmt_f, Table};
use rtr_core::TemplateRegistry;
use rtr_manager::PreemptionMode;
use rtr_taskgraph::TaskGraph;
use std::sync::Arc;

/// Salt decorrelating arrival instants from the application sequence.
const ARRIVAL_SEED_SALT: u64 = 0xF16A_7713;

/// Grid parameters.
#[derive(Debug, Clone)]
pub struct QosParams {
    /// Applications per run.
    pub apps: usize,
    /// Seed for sequence + arrival streams.
    pub seed: u64,
    /// RU count.
    pub rus: usize,
    /// Replacement policy driving every cell.
    pub policy: PolicyKind,
    /// Arrival processes, ordered light → heavy (the intensity axis).
    pub processes: Vec<ArrivalProcess>,
    /// Preemption modes to compare.
    pub modes: Vec<PreemptionMode>,
    /// Class mixes to compare (uniform is the pre-QoS control).
    pub mixes: Vec<QosSpec>,
    /// Worker threads for the sweep.
    pub workers: usize,
}

impl Default for QosParams {
    fn default() -> Self {
        QosParams {
            apps: 200,
            seed: 42,
            rus: 4,
            policy: PolicyKind::Lru,
            processes: default_processes(),
            modes: PreemptionMode::ALL.to_vec(),
            mixes: vec![QosSpec::UNIFORM, QosSpec::strided(4, 5, 150)],
            workers: crate::parallel::default_workers(),
        }
    }
}

impl QosParams {
    /// A small grid for tests and CI smoke runs.
    pub fn smoke() -> Self {
        QosParams {
            apps: 60,
            seed: 7,
            processes: vec![
                ArrivalProcess::Poisson {
                    mean_gap_us: 200_000,
                },
                ArrivalProcess::Poisson {
                    mean_gap_us: 30_000,
                },
            ],
            ..QosParams::default()
        }
    }

    /// The heaviest configured intensity (the last process — the axis
    /// is ordered light → heavy).
    pub fn highest_intensity(&self) -> &ArrivalProcess {
        self.processes.last().expect("at least one process")
    }
}

/// The arrival-intensity axis, light → heavy: generous gaps first,
/// then gaps well under the suite's ideal makespans so queues build
/// and the run-to-completion baseline blows promoted deadlines.
pub fn default_processes() -> Vec<ArrivalProcess> {
    vec![
        ArrivalProcess::Poisson {
            mean_gap_us: 400_000,
        },
        ArrivalProcess::Poisson {
            mean_gap_us: 100_000,
        },
        ArrivalProcess::Poisson {
            mean_gap_us: 30_000,
        },
    ]
}

/// Runs the (process × mix × mode) grid and tabulates it.
///
/// # Panics
/// Panics on the driving thread — before any worker spawns — if a
/// degenerate arrival process is configured.
pub fn fig_qos(params: &QosParams) -> Table {
    for p in &params.processes {
        p.validate()
            .unwrap_or_else(|e| panic!("fig_qos parameters: {e}"));
    }
    let templates: Vec<Arc<TaskGraph>> = rtr_taskgraph::benchmarks::multimedia_suite()
        .into_iter()
        .map(Arc::new)
        .collect();
    let sequence = SequenceModel::UniformRandom.generate(&templates, params.apps, params.seed);
    let arrival_streams: Vec<Vec<rtr_sim::SimTime>> = params
        .processes
        .iter()
        .map(|p| p.generate(params.apps, params.seed ^ ARRIVAL_SEED_SALT))
        .collect();
    let class_streams: Vec<Vec<Option<Vec<rtr_manager::QosClass>>>> = arrival_streams
        .iter()
        .map(|arrivals| {
            params
                .mixes
                .iter()
                .map(|mix| mix.assign(&sequence, arrivals, params.rus))
                .collect()
        })
        .collect();

    let mut grid: Vec<(usize, usize, PreemptionMode)> = Vec::new();
    for proc_idx in 0..params.processes.len() {
        for mix_idx in 0..params.mixes.len() {
            for &mode in &params.modes {
                grid.push((proc_idx, mix_idx, mode));
            }
        }
    }

    let registry = Arc::new(TemplateRegistry::new());
    let rows = parallel_map_with(
        grid,
        params.workers,
        pooled_workers(&registry),
        |runner, (proc_idx, mix_idx, mode)| {
            let cell = CellConfig::new(params.policy, params.rus).with_preemption(mode);
            let out = runner
                .run_with_arrivals_qos(
                    &sequence,
                    Some(&arrival_streams[proc_idx]),
                    class_streams[proc_idx][mix_idx].as_deref(),
                    &cell,
                )
                .expect("qos cell simulates to completion");
            let mix = &params.mixes[mix_idx];
            let q = &out.stats.qos;
            let high = q.class(mix.priority).cloned().unwrap_or_else(|| {
                rtr_manager::ClassSojournStats::from_samples(
                    mix.priority,
                    &mut Vec::new(),
                    0,
                    rtr_sim::SimDuration::ZERO,
                )
            });
            let low = q.class(0).cloned().unwrap_or_else(|| {
                rtr_manager::ClassSojournStats::from_samples(
                    0,
                    &mut Vec::new(),
                    0,
                    rtr_sim::SimDuration::ZERO,
                )
            });
            vec![
                params.processes[proc_idx].label(),
                mix_label(mix),
                mode.label().to_string(),
                high.jobs.to_string(),
                high.deadline_misses.to_string(),
                fmt_f(high.miss_rate() * 100.0, 2),
                fmt_f(high.p50.as_ms_f64(), 1),
                fmt_f(high.p95.as_ms_f64(), 1),
                fmt_f(high.max.as_ms_f64(), 1),
                fmt_f(low.mean_sojourn_ms(), 1),
                q.preemptions.to_string(),
                q.checkpoints.to_string(),
                q.replayed_nodes.to_string(),
                fmt_f(q.lost_work_cycles.as_ms_f64(), 1),
                fmt_f(out.stats.reuse_rate_pct(), 2),
                out.stats.loads.to_string(),
                fmt_f(out.stats.makespan.as_ms_f64(), 1),
            ]
        },
    );

    let mut t = Table::new(
        format!(
            "fig_qos — {} apps, seed {}, {} RUs, {} (uniform mix = pre-QoS control)",
            params.apps,
            params.seed,
            params.rus,
            params.policy.label()
        ),
        &[
            "Arrivals",
            "Mix",
            "Preemption",
            "Hi jobs",
            "Hi misses",
            "Hi miss (%)",
            "Hi p50 (ms)",
            "Hi p95 (ms)",
            "Hi max (ms)",
            "Lo mean (ms)",
            "Preempts",
            "Checkpoints",
            "Replays",
            "Lost work (ms)",
            "Reuse (%)",
            "Loads",
            "Makespan (ms)",
        ],
    );
    for row in rows {
        t.push_row(row);
    }
    t
}

/// Stable mix label for CSV rows.
pub fn mix_label(mix: &QosSpec) -> String {
    if mix.is_uniform() {
        "uniform".to_string()
    } else {
        match mix.deadline_stretch_pct {
            Some(pct) => format!("strided({})@p{}+{}%", mix.stride, mix.priority, pct),
            None => format!("strided({})@p{}", mix.stride, mix.priority),
        }
    }
}

/// Asserts that every uniform-mix `Off` cell of the given parameters
/// is byte-identical (stats *and* trace, serialised to JSON) to the
/// same cell run through the plain streaming path (a [`CellConfig`]
/// that never mentions preemption or QoS). This is the golden guard CI
/// runs: a QoS regression that leaks into the disabled path turns the
/// build red instead of silently drifting a reuse rate.
///
/// # Panics
/// Panics on the first differing cell.
pub fn assert_preemption_off_matches_baseline(params: &QosParams) {
    let templates: Vec<Arc<TaskGraph>> = rtr_taskgraph::benchmarks::multimedia_suite()
        .into_iter()
        .map(Arc::new)
        .collect();
    let sequence = SequenceModel::UniformRandom.generate(&templates, params.apps, params.seed);
    let mut runner = CellRunner::new();
    for process in &params.processes {
        let arrivals = process.generate(params.apps, params.seed ^ ARRIVAL_SEED_SALT);
        let mut off =
            CellConfig::new(params.policy, params.rus).with_preemption(PreemptionMode::Off);
        off.record_trace = true;
        let mut plain = CellConfig::new(params.policy, params.rus);
        plain.record_trace = true;
        let a = runner
            .run_with_arrivals_qos(&sequence, Some(&arrivals), None, &off)
            .expect("cell simulates");
        let b = runner
            .run_with_arrivals(&sequence, Some(&arrivals), &plain)
            .expect("cell simulates");
        let a_json = (
            serde_json::to_string(&a.stats).expect("stats serialise"),
            serde_json::to_string(&a.trace).expect("trace serialises"),
        );
        let b_json = (
            serde_json::to_string(&b.stats).expect("stats serialise"),
            serde_json::to_string(&b.trace).expect("trace serialises"),
        );
        assert_eq!(
            a_json,
            b_json,
            "preemption-off output diverged from the baseline path ({})",
            process.label()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_is_deterministic() {
        let params = QosParams::smoke();
        let a = fig_qos(&params);
        let b = fig_qos(&params);
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(
            a.len(),
            params.processes.len() * params.mixes.len() * params.modes.len()
        );
    }

    #[test]
    fn preemption_off_rows_match_plain_streaming_path() {
        assert_preemption_off_matches_baseline(&QosParams::smoke());
    }

    /// The acceptance property: at the highest arrival intensity,
    /// checkpointing preemption cuts the promoted class's deadline-miss
    /// rate by at least half relative to run-to-completion — and the
    /// CSV carries the reuse cost alongside.
    #[test]
    fn checkpoint_halves_high_priority_misses_at_peak_intensity() {
        let params = QosParams::smoke();
        let csv = fig_qos(&params).to_csv();
        let peak = params.highest_intensity().label();
        let cell = |mode: &str| -> (f64, f64) {
            let row = csv
                .lines()
                .find(|l| {
                    let c: Vec<&str> = l.split(',').collect();
                    c[0] == peak && c[1] != "uniform" && c[2] == mode
                })
                .unwrap_or_else(|| panic!("missing row {mode} in\n{csv}"));
            let c: Vec<&str> = row.split(',').collect();
            (
                c[5].parse().expect("miss rate"),
                c[14].parse().expect("reuse"),
            )
        };
        let (off_miss, _) = cell("off");
        let (ckpt_miss, ckpt_reuse) = cell("checkpoint");
        assert!(
            off_miss > 0.0,
            "the baseline must miss deadlines at peak intensity, got {off_miss}%"
        );
        assert!(
            ckpt_miss <= off_miss / 2.0,
            "checkpoint miss rate {ckpt_miss}% !<= half of off's {off_miss}%"
        );
        assert!(ckpt_reuse.is_finite());
    }

    #[test]
    fn uniform_rows_are_mode_invariant() {
        // With nobody promoted there is nothing to preempt: all three
        // modes must produce identical uniform-mix rows (modulo the
        // mode column itself).
        let params = QosParams::smoke();
        let csv = fig_qos(&params).to_csv();
        for process in &params.processes {
            let rows: Vec<Vec<&str>> = csv
                .lines()
                .filter(|l| {
                    let c: Vec<&str> = l.split(',').collect();
                    c[0] == process.label() && c[1] == "uniform"
                })
                .map(|l| l.split(',').skip(3).collect())
                .collect();
            assert_eq!(rows.len(), PreemptionMode::ALL.len());
            assert!(
                rows.windows(2).all(|w| w[0] == w[1]),
                "uniform rows diverged across modes:\n{csv}"
            );
        }
    }
}
