//! Fig. 9 — the paper's main performance evaluation.
//!
//! "We have executed a sequence of 500 applications randomly selected
//! from our set of benchmarks" (JPEG, MPEG-1, Hough) on systems with
//! 4–10 RUs:
//!
//! * Fig. 9a — reuse rates, ASAP (no skips): LRU, Local LFD (1/2/4), LFD.
//! * Fig. 9b — reuse rates with Skip Events: LRU, Local LFD (1),
//!   Local LFD (1) + Skip Events, LFD.
//! * Fig. 9c — % of the original reconfiguration overhead remaining:
//!   LRU, Local LFD (1/2/4) + Skip Events, LFD.
//!
//! The driver runs the full (policy × RU × seed) grid in parallel and
//! averages across seeds; the paper's single 500-app run corresponds to
//! one seed.

use crate::parallel::parallel_map_with;
use crate::policies::PolicyKind;
use crate::runner::{pooled_workers, CellConfig};
use crate::sequence::SequenceModel;
use crate::table::{fmt_f, Table};
use rtr_core::TemplateRegistry;
use rtr_taskgraph::TaskGraph;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Grid parameters.
#[derive(Debug, Clone)]
pub struct Fig9Params {
    /// Applications per sequence (paper: 500).
    pub apps: usize,
    /// Seeds to average over.
    pub seeds: Vec<u64>,
    /// RU counts (paper: 4..=10).
    pub rus: Vec<usize>,
    /// Worker threads for the sweep.
    pub workers: usize,
}

impl Default for Fig9Params {
    fn default() -> Self {
        Fig9Params {
            apps: 500,
            seeds: vec![11, 22, 33],
            rus: (4..=10).collect(),
            workers: crate::parallel::default_workers(),
        }
    }
}

impl Fig9Params {
    /// A small grid for tests.
    pub fn smoke() -> Self {
        Fig9Params {
            apps: 60,
            seeds: vec![7],
            rus: vec![4, 6],
            workers: 2,
        }
    }
}

/// Averaged metrics of one (RU count, policy) cell.
#[derive(Debug, Clone)]
pub struct Fig9Cell {
    /// RU count.
    pub rus: usize,
    /// Policy.
    pub policy: PolicyKind,
    /// Mean reuse rate in percent.
    pub reuse_pct: f64,
    /// Mean remaining reconfiguration overhead in percent of the
    /// original overhead.
    pub remaining_pct: f64,
    /// Mean absolute overhead in milliseconds.
    pub overhead_ms: f64,
    /// Mean loads performed.
    pub loads: f64,
    /// Mean energy spent on reconfigurations, mJ.
    pub energy_mj: f64,
}

/// Runs the full grid for the given policies.
pub fn run_matrix(params: &Fig9Params, policies: &[PolicyKind]) -> Vec<Fig9Cell> {
    let templates: Vec<Arc<TaskGraph>> = rtr_taskgraph::benchmarks::multimedia_suite()
        .into_iter()
        .map(Arc::new)
        .collect();
    // Pre-generate one sequence per seed (shared template Arcs).
    let sequences: Vec<Vec<Arc<TaskGraph>>> = params
        .seeds
        .iter()
        .map(|&s| SequenceModel::UniformRandom.generate(&templates, params.apps, s))
        .collect();

    let mut grid: Vec<(usize, PolicyKind, usize)> = Vec::new();
    for &rus in &params.rus {
        for &policy in policies {
            for seed_idx in 0..params.seeds.len() {
                grid.push((rus, policy, seed_idx));
            }
        }
    }

    // One design-time registry for the whole grid; each worker owns a
    // pooled engine (via its CellRunner) reused across its cells.
    let registry = Arc::new(TemplateRegistry::new());
    let results = parallel_map_with(
        grid,
        params.workers,
        pooled_workers(&registry),
        |runner, (rus, policy, seed_idx)| {
            let cell = CellConfig::new(policy, rus);
            let out = runner
                .run(&sequences[seed_idx], &cell)
                .expect("benchmark workloads simulate to completion");
            (
                rus,
                policy,
                out.stats.reuse_rate_pct(),
                out.stats.remaining_overhead_pct(),
                out.stats.total_overhead().as_ms_f64(),
                out.stats.loads as f64,
                out.stats.traffic.energy_uj as f64 / 1_000.0,
            )
        },
    );

    // Average over seeds, keyed by (rus, policy position).
    // Running sums of the five per-cell metrics plus the sample count.
    type MetricAcc = (f64, f64, f64, f64, f64, u32);
    let policy_pos = |p: &PolicyKind| policies.iter().position(|q| q == p).expect("known policy");
    let mut acc: BTreeMap<(usize, usize), MetricAcc> = BTreeMap::new();
    for (rus, policy, reuse, remaining, overhead, loads, energy) in results {
        let e = acc
            .entry((rus, policy_pos(&policy)))
            .or_insert((0.0, 0.0, 0.0, 0.0, 0.0, 0));
        e.0 += reuse;
        e.1 += remaining;
        e.2 += overhead;
        e.3 += loads;
        e.4 += energy;
        e.5 += 1;
    }
    acc.into_iter()
        .map(|((rus, pos), (r, rem, o, l, en, n))| {
            let n = f64::from(n);
            Fig9Cell {
                rus,
                policy: policies[pos],
                reuse_pct: r / n,
                remaining_pct: rem / n,
                overhead_ms: o / n,
                loads: l / n,
                energy_mj: en / n,
            }
        })
        .collect()
}

/// Builds a paper-style table (rows = RU counts + "Avg.", one column per
/// policy) from a metric extractor.
fn metric_table(
    title: &str,
    cells: &[Fig9Cell],
    policies: &[PolicyKind],
    rus: &[usize],
    metric: impl Fn(&Fig9Cell) -> f64,
) -> Table {
    let mut headers: Vec<String> = vec!["RUs".to_string()];
    headers.extend(policies.iter().map(|p| p.label()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(title, &header_refs);

    let lookup = |r: usize, p: &PolicyKind| -> f64 {
        cells
            .iter()
            .find(|c| c.rus == r && &c.policy == p)
            .map(&metric)
            .expect("matrix covers the full grid")
    };
    for &r in rus {
        let mut row = vec![r.to_string()];
        row.extend(policies.iter().map(|p| fmt_f(lookup(r, p), 2)));
        table.push_row(row);
    }
    // The paper's "Avg." column group: average across RU counts.
    let mut avg_row = vec!["Avg.".to_string()];
    for p in policies {
        let mean = rus.iter().map(|&r| lookup(r, p)).sum::<f64>() / rus.len() as f64;
        avg_row.push(fmt_f(mean, 2));
    }
    table.push_row(avg_row);
    table
}

/// Fig. 9a: reuse rates, ASAP.
pub fn fig9a(params: &Fig9Params) -> Table {
    let policies = PolicyKind::fig9a_set();
    let cells = run_matrix(params, &policies);
    metric_table(
        "Fig. 9a — task reuse rate (%), ASAP (no skip events)",
        &cells,
        &policies,
        &params.rus,
        |c| c.reuse_pct,
    )
}

/// Fig. 9b: reuse rates with Skip Events.
pub fn fig9b(params: &Fig9Params) -> Table {
    let policies = PolicyKind::fig9b_set();
    let cells = run_matrix(params, &policies);
    metric_table(
        "Fig. 9b — task reuse rate (%) with Skip Events",
        &cells,
        &policies,
        &params.rus,
        |c| c.reuse_pct,
    )
}

/// Fig. 9c: remaining reconfiguration overhead.
pub fn fig9c(params: &Fig9Params) -> Table {
    let policies = PolicyKind::fig9c_set();
    let cells = run_matrix(params, &policies);
    metric_table(
        "Fig. 9c — remaining reconfiguration overhead (% of original)",
        &cells,
        &policies,
        &params.rus,
        |c| c.remaining_pct,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_covers_grid_and_orders_policies() {
        let params = Fig9Params::smoke();
        let policies = PolicyKind::fig9a_set();
        let cells = run_matrix(&params, &policies);
        assert_eq!(cells.len(), params.rus.len() * policies.len());

        // Qualitative shape on every RU count: LFD >= Local LFD (4) >=
        // Local LFD(1) ~ and all >= LRU (small tolerance for ties).
        for &r in &params.rus {
            let get = |p: &PolicyKind| {
                cells
                    .iter()
                    .find(|c| c.rus == r && &c.policy == p)
                    .unwrap()
                    .reuse_pct
            };
            let lru = get(&PolicyKind::Lru);
            let l1 = get(&PolicyKind::LocalLfd {
                window: 1,
                skip: false,
            });
            let l4 = get(&PolicyKind::LocalLfd {
                window: 4,
                skip: false,
            });
            let lfd = get(&PolicyKind::Lfd);
            assert!(lfd + 1e-9 >= l4, "LFD {lfd} vs L4 {l4} at {r} RUs");
            assert!(l4 + 1e-9 >= l1 - 2.0, "L4 {l4} vs L1 {l1} at {r} RUs");
            assert!(lfd > lru, "LFD {lfd} vs LRU {lru} at {r} RUs");
        }
    }

    #[test]
    fn tables_have_rus_plus_avg_rows() {
        let params = Fig9Params::smoke();
        let t = fig9a(&params);
        assert_eq!(t.len(), params.rus.len() + 1);
        assert!(t.to_markdown().contains("Avg."));
    }
}
