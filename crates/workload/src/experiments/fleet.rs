//! `fig_fleet` — cross-device reuse affinity at cluster scope.
//!
//! Sweeps placement policy × device mix × tenant count × arrival
//! intensity on the multimedia workload. Each cell submits the same
//! tenant-stamped job stream to a pooled fleet and reports the
//! cluster-scope reuse rate, the per-tenant fairness index and the
//! fleet makespan. The headline comparison is `reuse-affinity` versus
//! `round-robin` on cross-device reuse: routing a job to the device
//! whose residency model already holds its configurations clusters
//! templates per device, so the in-device replacement module sees far
//! more reuse than blind rotation gives it.
//!
//! The single-device fleet must be byte-identical to the plain batch
//! path ([`assert_fleet_single_matches_baseline`] pins that; CI runs
//! it through the `fig_fleet -- smoke` binary).

use crate::arrivals::ArrivalProcess;
use crate::parallel::parallel_map_with;
use crate::policies::PolicyKind;
use crate::runner::{pooled_workers, CellConfig, CellRunner};
use crate::sequence::SequenceModel;
use crate::table::{fmt_f, Table};
use rtr_core::TemplateRegistry;
use rtr_manager::fleet::{simulate_fleet, FleetConfig, PlacementKind};
use rtr_manager::{JobSpec, TenantId};
use rtr_taskgraph::TaskGraph;
use std::sync::Arc;

/// Salt decorrelating the arrival-time RNG stream from the
/// application-sequence stream drawn with the same experiment seed.
const ARRIVAL_SEED_SALT: u64 = 0xF1EE_7A21;

/// Grid parameters.
#[derive(Debug, Clone)]
pub struct FleetParams {
    /// Applications per run.
    pub apps: usize,
    /// Seed for the sequence and arrival streams.
    pub seed: u64,
    /// Device mixes to sweep: each entry is one fleet, listing the RU
    /// count of every pooled device.
    pub device_mixes: Vec<Vec<usize>>,
    /// Tenant counts to sweep (jobs stamped round-robin).
    pub tenant_counts: Vec<usize>,
    /// Poisson arrival intensities to sweep, as mean inter-arrival
    /// gaps in µs (0 = the paper's batch setting).
    pub mean_gaps_us: Vec<u64>,
    /// Placement policies to compare.
    pub placements: Vec<PlacementKind>,
    /// The in-device replacement policy of every pooled engine.
    pub policy: PolicyKind,
    /// Worker threads for the sweep.
    pub workers: usize,
}

impl Default for FleetParams {
    fn default() -> Self {
        FleetParams {
            apps: 400,
            seed: 42,
            device_mixes: vec![vec![4, 4], vec![2, 4, 6], vec![4, 4, 4, 4]],
            tenant_counts: vec![1, 4],
            mean_gaps_us: vec![0, 30_000],
            placements: PlacementKind::ALL.to_vec(),
            policy: PolicyKind::Lru,
            workers: crate::parallel::default_workers(),
        }
    }
}

impl FleetParams {
    /// A small grid for tests and CI smoke runs.
    pub fn smoke() -> Self {
        FleetParams {
            apps: 120,
            seed: 7,
            device_mixes: vec![vec![4, 4], vec![2, 4, 6]],
            tenant_counts: vec![2],
            mean_gaps_us: vec![30_000],
            ..FleetParams::default()
        }
    }
}

/// Compact device-mix label: `2+4+6`.
fn mix_label(mix: &[usize]) -> String {
    mix.iter()
        .map(|r| r.to_string())
        .collect::<Vec<_>>()
        .join("+")
}

/// The arrival process a mean-gap entry decodes to.
fn arrivals_for(gap_us: u64) -> ArrivalProcess {
    if gap_us == 0 {
        ArrivalProcess::Batch
    } else {
        ArrivalProcess::Poisson {
            mean_gap_us: gap_us,
        }
    }
}

/// The tenant-stamped job stream of one cell.
fn fleet_jobs(params: &FleetParams, gap_us: u64, tenants: usize) -> Vec<JobSpec> {
    let templates: Vec<Arc<TaskGraph>> = rtr_taskgraph::benchmarks::multimedia_suite()
        .into_iter()
        .map(Arc::new)
        .collect();
    let sequence = SequenceModel::UniformRandom.generate(&templates, params.apps, params.seed);
    let arrivals = arrivals_for(gap_us).generate(params.apps, params.seed ^ ARRIVAL_SEED_SALT);
    sequence
        .iter()
        .enumerate()
        .map(|(i, g)| {
            JobSpec::new(Arc::clone(g))
                .with_arrival(arrivals[i])
                .with_tenant(TenantId((i % tenants) as u32))
        })
        .collect()
}

/// Runs the (placement × mix × tenants × intensity) grid and
/// tabulates it.
pub fn fig_fleet(params: &FleetParams) -> Table {
    let mut grid: Vec<(PlacementKind, Vec<usize>, usize, u64)> = Vec::new();
    for &placement in &params.placements {
        for mix in &params.device_mixes {
            for &tenants in &params.tenant_counts {
                for &gap in &params.mean_gaps_us {
                    grid.push((placement, mix.clone(), tenants, gap));
                }
            }
        }
    }

    let registry = Arc::new(TemplateRegistry::new());
    let rows = parallel_map_with(
        grid,
        params.workers,
        pooled_workers(&registry),
        |_runner, (placement, mix, tenants, gap)| {
            let jobs = fleet_jobs(params, gap, tenants);
            let base = CellConfig::new(params.policy, mix[0]).manager_config();
            let devices = mix.iter().map(|&rus| base.clone().with_rus(rus)).collect();
            let cfg = FleetConfig::new(devices, placement).with_seed(params.seed);
            let outcome = simulate_fleet(&cfg, &jobs, || params.policy.build())
                .expect("fleet cell simulates");
            let s = &outcome.stats;
            vec![
                placement.label().to_string(),
                mix_label(&mix),
                tenants.to_string(),
                arrivals_for(gap).label(),
                s.completed.to_string(),
                fmt_f(s.cross_device_reuse_rate_pct(), 2),
                s.loads.to_string(),
                fmt_f(s.fairness_index(), 3),
                fmt_f(s.makespan.as_ms_f64(), 1),
            ]
        },
    );

    let mut t = Table::new(
        format!(
            "fig_fleet — {} apps, seed {}, {} policy per device",
            params.apps,
            params.seed,
            params.policy.label()
        ),
        &[
            "Placement",
            "Devices",
            "Tenants",
            "Arrivals",
            "Jobs",
            "Reuse (%)",
            "Loads",
            "Fairness",
            "Makespan (ms)",
        ],
    );
    for row in rows {
        t.push_row(row);
    }
    t
}

/// Asserts that a one-device fleet is byte-identical (stats *and*
/// trace, serialised to JSON) to the plain single-engine batch path —
/// with and without multi-tenant stamping, since the engine itself is
/// tenant-agnostic. This is the golden guard CI runs: a fleet-layer
/// regression that leaks into the degenerate pool turns the build red
/// instead of silently drifting a golden number.
///
/// # Panics
/// Panics on the first differing run.
pub fn assert_fleet_single_matches_baseline(params: &FleetParams) {
    let mut runner = CellRunner::new();
    let mut tenant_cases = params.tenant_counts.clone();
    if !tenant_cases.contains(&1) {
        tenant_cases.push(1);
    }
    for &gap in &params.mean_gaps_us {
        for &tenants in &tenant_cases {
            let jobs = fleet_jobs(params, gap, tenants);
            let mut cell = CellConfig::new(params.policy, 4);
            cell.record_trace = true;
            let arrivals: Vec<rtr_sim::SimTime> = jobs.iter().map(|j| j.arrival).collect();
            let sequence: Vec<Arc<TaskGraph>> = jobs.iter().map(|j| Arc::clone(&j.graph)).collect();
            let reference = runner
                .run_with_arrivals(&sequence, Some(&arrivals), &cell)
                .expect("baseline cell simulates");
            let fleet_cfg = FleetConfig::single(cell.manager_config());
            let outcome = simulate_fleet(&fleet_cfg, &jobs, || params.policy.build())
                .expect("single-device fleet simulates");
            assert_eq!(outcome.devices.len(), 1);
            let a = (
                serde_json::to_string(&outcome.devices[0].stats).expect("stats serialise"),
                serde_json::to_string(&outcome.devices[0].trace).expect("trace serialises"),
            );
            let b = (
                serde_json::to_string(&reference.stats).expect("stats serialise"),
                serde_json::to_string(&reference.trace).expect("trace serialises"),
            );
            assert_eq!(
                a, b,
                "single-device fleet diverged from the plain engine path \
                 (gap {gap} µs, {tenants} tenants)"
            );
        }
    }
}

/// Aggregate cross-device reuse of one placement policy over a CSV
/// produced by [`fig_fleet`] (mean over that policy's rows).
pub fn mean_reuse_of(csv: &str, placement: PlacementKind) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for line in csv.lines().skip(1) {
        let c: Vec<&str> = line.split(',').collect();
        if c[0] == placement.label() {
            sum += c[5].parse::<f64>().expect("reuse column");
            n += 1;
        }
    }
    assert!(n > 0, "no rows for placement {}:\n{csv}", placement.label());
    sum / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_is_deterministic() {
        let params = FleetParams::smoke();
        let a = fig_fleet(&params);
        let b = fig_fleet(&params);
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(
            a.len(),
            params.placements.len()
                * params.device_mixes.len()
                * params.tenant_counts.len()
                * params.mean_gaps_us.len()
        );
    }

    #[test]
    fn single_device_fleet_matches_plain_batch_path() {
        assert_fleet_single_matches_baseline(&FleetParams::smoke());
    }

    /// The acceptance property: reuse-affinity placement beats blind
    /// round-robin on cross-device reuse rate, and no cell loses jobs.
    #[test]
    fn reuse_affinity_beats_round_robin() {
        let params = FleetParams::smoke();
        let csv = fig_fleet(&params).to_csv();
        for line in csv.lines().skip(1) {
            let c: Vec<&str> = line.split(',').collect();
            assert_eq!(
                c[4].parse::<usize>().expect("jobs"),
                params.apps,
                "a fleet cell lost jobs:\n{line}"
            );
        }
        let affinity = mean_reuse_of(&csv, PlacementKind::ReuseAffinity);
        let rr = mean_reuse_of(&csv, PlacementKind::RoundRobin);
        assert!(
            affinity > rr,
            "reuse-affinity ({affinity:.2}%) must beat round-robin ({rr:.2}%):\n{csv}"
        );
    }
}
