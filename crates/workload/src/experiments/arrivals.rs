//! `fig_arrivals` — policy behaviour under streaming arrivals.
//!
//! The paper's evaluation fixes the whole application sequence up
//! front; this experiment opens the online-arrival scenario family: the
//! same multimedia workload streamed through the manager's online queue
//! under several arrival processes (a Poisson intensity sweep plus
//! periodic and bursty feeds), across RU counts and policies.
//!
//! Reported per cell: reuse rate, mean/max sojourn time (completion −
//! arrival — the responsiveness metric batch mode cannot express),
//! makespan and loads. Everything is seeded, so the table is
//! bit-reproducible.

use crate::arrivals::ArrivalProcess;
use crate::parallel::parallel_map_with;
use crate::policies::PolicyKind;
use crate::runner::{pooled_workers, CellConfig};
use crate::sequence::SequenceModel;
use crate::table::{fmt_f, Table};
use rtr_core::TemplateRegistry;
use rtr_taskgraph::TaskGraph;
use std::sync::Arc;

/// Salt decorrelating arrival instants from the application sequence.
const ARRIVAL_SEED_SALT: u64 = 0xF16A_7712;

/// Grid parameters.
#[derive(Debug, Clone)]
pub struct ArrivalsParams {
    /// Applications per run.
    pub apps: usize,
    /// Seed for sequence + arrival streams.
    pub seed: u64,
    /// RU counts to sweep.
    pub rus: Vec<usize>,
    /// Policies to compare.
    pub policies: Vec<PolicyKind>,
    /// Arrival processes to sweep (the intensity axis).
    pub processes: Vec<ArrivalProcess>,
    /// Worker threads for the sweep.
    pub workers: usize,
}

impl Default for ArrivalsParams {
    fn default() -> Self {
        ArrivalsParams {
            apps: 200,
            seed: 42,
            rus: vec![4, 6, 8],
            policies: vec![
                PolicyKind::Lru,
                PolicyKind::LocalLfd {
                    window: 1,
                    skip: false,
                },
                PolicyKind::LocalLfd {
                    window: 4,
                    skip: false,
                },
                PolicyKind::Lfd,
            ],
            processes: default_processes(),
            workers: crate::parallel::default_workers(),
        }
    }
}

impl ArrivalsParams {
    /// A small grid for tests and CI smoke runs.
    pub fn smoke() -> Self {
        ArrivalsParams {
            apps: 30,
            seed: 7,
            rus: vec![4],
            policies: vec![
                PolicyKind::Lru,
                PolicyKind::LocalLfd {
                    window: 1,
                    skip: false,
                },
            ],
            processes: default_processes(),
            workers: 2,
        }
    }
}

/// The default arrival-process axis: a Poisson intensity sweep around
/// the mean service time of the multimedia suite (~70 ms on 4 RUs:
/// 25 ms ≈ overload, 100 ms ≈ near-saturation, 400 ms ≈ light load),
/// plus periodic and bursty feeds at the middle intensity.
pub fn default_processes() -> Vec<ArrivalProcess> {
    vec![
        ArrivalProcess::Poisson {
            mean_gap_us: 25_000,
        },
        ArrivalProcess::Poisson {
            mean_gap_us: 100_000,
        },
        ArrivalProcess::Poisson {
            mean_gap_us: 400_000,
        },
        ArrivalProcess::Periodic { period_us: 100_000 },
        ArrivalProcess::Bursty {
            size: 8,
            mean_gap_us: 800_000,
        },
    ]
}

/// Runs the (process × RU × policy) grid and tabulates the outcome.
pub fn fig_arrivals(params: &ArrivalsParams) -> Table {
    let templates: Vec<Arc<TaskGraph>> = rtr_taskgraph::benchmarks::multimedia_suite()
        .into_iter()
        .map(Arc::new)
        .collect();
    let sequence = SequenceModel::UniformRandom.generate(&templates, params.apps, params.seed);
    // One arrival stream per process, shared across RU counts and
    // policies so cells differ only in the dimension under study.
    let arrival_streams: Vec<Vec<rtr_sim::SimTime>> = params
        .processes
        .iter()
        .map(|p| p.generate(params.apps, params.seed ^ ARRIVAL_SEED_SALT))
        .collect();

    let mut grid: Vec<(usize, usize, PolicyKind)> = Vec::new();
    for proc_idx in 0..params.processes.len() {
        for &rus in &params.rus {
            for &policy in &params.policies {
                grid.push((proc_idx, rus, policy));
            }
        }
    }

    let registry = Arc::new(TemplateRegistry::new());
    let rows = parallel_map_with(
        grid,
        params.workers,
        pooled_workers(&registry),
        |runner, (proc_idx, rus, policy)| {
            let cell = CellConfig::new(policy, rus);
            let out = runner
                .run_with_arrivals(&sequence, Some(&arrival_streams[proc_idx]), &cell)
                .expect("streaming cell simulates to completion");
            vec![
                params.processes[proc_idx].label(),
                rus.to_string(),
                policy.label(),
                fmt_f(out.stats.reuse_rate_pct(), 2),
                fmt_f(out.stats.mean_sojourn_ms(), 1),
                fmt_f(out.stats.max_sojourn().as_ms_f64(), 1),
                fmt_f(out.stats.makespan.as_ms_f64(), 1),
                out.stats.loads.to_string(),
            ]
        },
    );

    let mut t = Table::new(
        format!(
            "fig_arrivals — {} apps streamed, seed {}",
            params.apps, params.seed
        ),
        &[
            "Arrivals",
            "RUs",
            "Policy",
            "Reuse (%)",
            "Mean sojourn (ms)",
            "Max sojourn (ms)",
            "Makespan (ms)",
            "Loads",
        ],
    );
    for row in rows {
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_is_deterministic() {
        let params = ArrivalsParams::smoke();
        let a = fig_arrivals(&params);
        let b = fig_arrivals(&params);
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(
            a.len(),
            params.processes.len() * params.rus.len() * params.policies.len()
        );
    }

    #[test]
    fn covers_at_least_three_distributions() {
        let t = fig_arrivals(&ArrivalsParams::smoke());
        let csv = t.to_csv();
        assert!(csv.contains("poisson(25ms)"));
        assert!(csv.contains("periodic(100ms)"));
        assert!(csv.contains("bursty(8x800ms)"));
    }

    #[test]
    fn lighter_load_never_hurts_sojourn() {
        // Under the heavy Poisson feed the backlog grows, so the mean
        // sojourn must exceed the light feed's for the same policy.
        let mut params = ArrivalsParams::smoke();
        params.apps = 60;
        params.policies = vec![PolicyKind::Lru];
        params.processes = vec![
            ArrivalProcess::Poisson {
                mean_gap_us: 25_000,
            },
            ArrivalProcess::Poisson {
                mean_gap_us: 400_000,
            },
        ];
        let csv = fig_arrivals(&params).to_csv();
        let sojourn_of = |label: &str| -> f64 {
            csv.lines()
                .find(|l| l.contains(label))
                .expect("row present")
                .split(',')
                .nth(4)
                .expect("sojourn column")
                .parse()
                .expect("numeric")
        };
        assert!(sojourn_of("poisson(25ms)") > sojourn_of("poisson(400ms)"));
    }
}
