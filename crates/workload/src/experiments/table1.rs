//! Table I — worst-case run-time cost of the replacement module.
//!
//! The paper measures the decision time "for the worst-case scenario:
//! the selected replacement candidate never exists in the complete list
//! of reconfigurations or the Dynamic List … hence the replacement
//! module always has to search in the whole list … and this search has
//! to be carried out 4 times" (4 RUs all being candidates).
//!
//! This module constructs exactly that scenario — candidate
//! configurations absent from the visible stream — for each policy
//! flavour, and measures wall-clock decision times. The bench crate
//! re-measures the same contexts with Criterion for rigorous statistics.

use crate::policies::PolicyKind;
use crate::sequence::paper_workload;
use crate::table::Table;
use rtr_hw::RuId;
use rtr_manager::{DecisionContext, FutureView, ReplacementPolicy, VictimCandidate};
use rtr_sim::SimTime;
use rtr_taskgraph::{reconfiguration_sequence, ConfigId};
use std::time::{Duration, Instant};

/// A self-contained worst-case replacement scenario.
#[derive(Debug, Clone)]
pub struct WorstCase {
    /// Victim candidates whose configurations never occur in the stream.
    pub candidates: Vec<VictimCandidate>,
    /// The visible future stream (configs of the Dynamic-List graphs).
    pub stream: Vec<ConfigId>,
}

impl WorstCase {
    /// Scenario with `rus` candidates and a stream of the first
    /// `dl_graphs` applications of the paper's 500-app workload
    /// (`usize::MAX` = the whole 500-app sequence, the LFD oracle case).
    pub fn new(rus: usize, dl_graphs: usize) -> Self {
        let workload = paper_workload(0xF169);
        let take = dl_graphs.min(workload.len());
        let mut stream = Vec::new();
        for g in workload.iter().take(take) {
            for node in reconfiguration_sequence(g) {
                stream.push(g.config_of(node));
            }
        }
        // Candidate configs 9000+ never occur in benchmark graphs.
        let candidates = (0..rus as u16)
            .map(|i| VictimCandidate {
                ru: RuId(i),
                config: ConfigId(9_000 + u32::from(i)),
            })
            .collect();
        WorstCase { candidates, stream }
    }

    /// Runs one decision on `policy` (primed history for the
    /// history-based policies happens in [`time_policy`]). Built on the
    /// legacy view backing on purpose: Table I measures the worst-case
    /// *linear-scan* cost the paper reports.
    pub fn decide(&self, policy: &mut dyn ReplacementPolicy) -> RuId {
        let future = FutureView::new(vec![&self.stream]);
        let ctx =
            DecisionContext::from_view(SimTime::ZERO, ConfigId(8_888), &self.candidates, &future);
        policy.select_victim(&ctx)
    }
}

/// Average wall-clock time per worst-case decision over `iters` calls.
pub fn time_policy(kind: PolicyKind, wc: &WorstCase, iters: u32) -> Duration {
    let mut policy = kind.build();
    // Prime history-based policies so every candidate has state.
    for (i, cand) in wc.candidates.iter().enumerate() {
        policy.on_load_complete(cand.config, cand.ru, SimTime::from_ms(i as u64));
    }
    // Warm-up decision.
    let _ = wc.decide(policy.as_mut());
    let t0 = Instant::now();
    for _ in 0..iters {
        let v = wc.decide(policy.as_mut());
        std::hint::black_box(v);
    }
    t0.elapsed() / iters
}

/// The Table I policy set: LRU, LFD (whole-sequence search) and
/// Local LFD (1/2/4) + Skip Events, with the DL sizes they imply.
pub fn table1_rows(iters: u32) -> Table {
    let mut t = Table::new(
        "Table I — worst-case run-time decision cost (4 RUs)",
        &["Replacement strategy", "Stream length", "Time per decision"],
    );
    let cases: Vec<(PolicyKind, usize)> = vec![
        (PolicyKind::Lru, 0),
        (PolicyKind::Lfd, usize::MAX),
        (
            PolicyKind::LocalLfd {
                window: 1,
                skip: true,
            },
            1,
        ),
        (
            PolicyKind::LocalLfd {
                window: 2,
                skip: true,
            },
            2,
        ),
        (
            PolicyKind::LocalLfd {
                window: 4,
                skip: true,
            },
            4,
        ),
    ];
    for (kind, dl) in cases {
        let wc = WorstCase::new(4, dl);
        let per_call = time_policy(kind, &wc, iters);
        t.push_row(vec![
            kind.label(),
            wc.stream.len().to_string(),
            format!("{:.3} µs", per_call.as_nanos() as f64 / 1_000.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_candidates_absent_from_stream() {
        let wc = WorstCase::new(4, 4);
        for cand in &wc.candidates {
            assert!(!wc.stream.contains(&cand.config));
        }
        assert!(!wc.stream.is_empty());
    }

    #[test]
    fn oracle_stream_covers_full_workload() {
        let wc = WorstCase::new(4, usize::MAX);
        // 500 apps × 4..6 tasks ≈ 2000+ requests.
        assert!(wc.stream.len() > 1_500, "got {}", wc.stream.len());
    }

    #[test]
    fn decisions_return_valid_candidates() {
        let wc = WorstCase::new(4, 2);
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Lfd,
            PolicyKind::LocalLfd {
                window: 2,
                skip: true,
            },
        ] {
            let mut p = kind.build();
            let v = wc.decide(p.as_mut());
            assert!(wc.candidates.iter().any(|c| c.ru == v));
        }
    }

    #[test]
    fn timing_is_positive_and_ordered() {
        // LFD over the whole sequence must cost (much) more than LRU.
        let lru = time_policy(PolicyKind::Lru, &WorstCase::new(4, 0), 200);
        let lfd = time_policy(PolicyKind::Lfd, &WorstCase::new(4, usize::MAX), 50);
        assert!(lfd > lru, "LFD {lfd:?} should exceed LRU {lru:?}");
    }

    #[test]
    fn table_has_five_strategies() {
        let t = table1_rows(10);
        assert_eq!(t.len(), 5);
    }
}
