//! Table II — cost split between the design-time and run-time parts of
//! the replacement technique, per benchmark application.
//!
//! Paper columns: initial execution time of the application; run-time
//! cost of the execution manager; run-time cost of the replacement
//! module (averaged over Local LFD with DL = 1, 2, 4); its overhead
//! relative to the application; and the design-time (mobility) cost.
//! Absolute values are platform-bound (the paper measured a 100 MHz
//! PowerPC 405); the *relationships* — replacement ≪ manager ≪
//! application, design-time orders of magnitude above run-time — are
//! what the reproduction checks.

use crate::policies::PolicyKind;
use crate::runner::{run_cell, CellConfig};
use crate::table::{fmt_f, Table};
use rtr_taskgraph::{analysis::analyze, TaskGraph};
use std::sync::Arc;
use std::time::Duration;

/// Measured cost split for one benchmark.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// Initial (ideal) execution time, ms — paper column 2.
    pub initial_exec_ms: f64,
    /// Manager run-time cost per graph instance (everything except the
    /// replacement decisions), µs — paper column 3 analogue.
    pub manager_us_per_graph: f64,
    /// Replacement-module run-time cost per graph instance, µs,
    /// averaged over Local LFD (1/2/4) + Skip Events — paper column 4.
    pub replacement_us_per_graph: f64,
    /// Replacement cost as % of the initial execution time — column 5.
    pub overhead_pct: f64,
    /// Design-time (mobility calculation) cost per template, µs —
    /// column 6.
    pub design_us: f64,
}

/// Runs the Table II measurement: `instances` copies of each benchmark,
/// averaged over Local LFD with DL ∈ {1, 2, 4} (+ Skip Events).
///
/// The RU count is `min(4, nodes − 1)` per benchmark: the paper used 4
/// RUs, but under our per-task-release semantics a homogeneous JPEG
/// sequence on 4 RUs reuses all four configurations forever and the
/// replacement module is never invoked — one fewer RU forces the
/// evictions whose cost the table measures.
pub fn measure(instances: usize) -> Vec<Table2Row> {
    let windows = [1usize, 2, 4];
    rtr_taskgraph::benchmarks::multimedia_suite()
        .into_iter()
        .map(|g| {
            let graph = Arc::new(g);
            let rus = 4.min(graph.len().saturating_sub(1)).max(1);
            let sequence: Vec<Arc<TaskGraph>> =
                (0..instances).map(|_| Arc::clone(&graph)).collect();
            let mut manager_t = Duration::ZERO;
            let mut replacement_t = Duration::ZERO;
            let mut design_t = Duration::ZERO;
            for w in windows {
                let cell = CellConfig::new(
                    PolicyKind::LocalLfd {
                        window: w,
                        skip: true,
                    },
                    rus,
                );
                let out =
                    run_cell(&sequence, &cell).expect("benchmark workloads simulate to completion");
                manager_t += out.total_time.saturating_sub(out.replacement_time);
                replacement_t += out.replacement_time;
                design_t += out.design_time;
            }
            let runs = windows.len() as f64;
            let per_graph = runs * instances as f64;
            let initial = analyze(&graph).critical_path;
            Table2Row {
                name: graph.name().to_string(),
                initial_exec_ms: initial.as_ms_f64(),
                manager_us_per_graph: manager_t.as_nanos() as f64 / 1_000.0 / per_graph,
                replacement_us_per_graph: replacement_t.as_nanos() as f64 / 1_000.0 / per_graph,
                overhead_pct: (replacement_t.as_nanos() as f64 / 1_000_000.0 / per_graph)
                    / initial.as_ms_f64()
                    * 100.0,
                design_us: design_t.as_nanos() as f64 / 1_000.0 / runs,
            }
        })
        .collect()
}

/// Formats the measurement as the paper's Table II.
pub fn table2(instances: usize) -> Table {
    let mut t = Table::new(
        "Table II — replacement module cost vs application (Local LFD 1/2/4 + Skip)",
        &[
            "Task graph",
            "Initial exec (ms)",
            "Manager run-time (µs/graph)",
            "Replacement run-time (µs/graph)",
            "Overhead (%)",
            "Design-time (µs/template)",
        ],
    );
    for row in measure(instances) {
        t.push_row(vec![
            row.name,
            fmt_f(row.initial_exec_ms, 0),
            fmt_f(row.manager_us_per_graph, 2),
            fmt_f(row.replacement_us_per_graph, 3),
            fmt_f(row.overhead_pct, 4),
            fmt_f(row.design_us, 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_exec_times_match_paper() {
        let rows = measure(5);
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap().initial_exec_ms;
        assert_eq!(by_name("JPEG"), 79.0);
        assert_eq!(by_name("MPEG-1"), 37.0);
        assert_eq!(by_name("HOUGH"), 94.0);
    }

    #[test]
    fn design_time_dominates_runtime() {
        // The paper: design-time is 1–3 orders of magnitude above the
        // run-time module. Assert a conservative 5× on this platform.
        for row in measure(10) {
            assert!(
                row.design_us > 5.0 * row.replacement_us_per_graph,
                "{}: design {:.1}µs vs runtime {:.3}µs",
                row.name,
                row.design_us,
                row.replacement_us_per_graph
            );
        }
    }

    #[test]
    fn replacement_overhead_is_tiny() {
        // Paper: 0.09%–0.22% of the application execution time. Allow a
        // loose bound (simulated time vs host wall time differ).
        for row in measure(10) {
            assert!(
                row.overhead_pct < 5.0,
                "{}: overhead {:.3}%",
                row.name,
                row.overhead_pct
            );
        }
    }
}
