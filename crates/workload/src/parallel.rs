//! Deterministic parallel map for parameter sweeps.
//!
//! Experiment grids (policy × RU count × seed) are embarrassingly
//! parallel: each cell is an independent, internally deterministic
//! simulation. [`parallel_map`] fans the cells out over a scoped
//! crossbeam thread pool and returns results in input order, so sweep
//! output is identical to a sequential run regardless of scheduling.

use crossbeam::channel;
use std::num::NonZeroUsize;

/// Applies `f` to every item, using up to `workers` threads, preserving
/// input order in the result.
///
/// Items are distributed through a work-stealing channel, so uneven
/// per-item cost (an LFD oracle cell is far more expensive than an LRU
/// cell) balances automatically.
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }

    let (work_tx, work_rx) = channel::unbounded::<(usize, T)>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, R)>();
    for pair in items.into_iter().enumerate() {
        work_tx
            .send(pair)
            .expect("unbounded channel accepts all work");
    }
    drop(work_tx);

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let work_rx = work_rx.clone();
            let res_tx = res_tx.clone();
            let f = &f;
            scope.spawn(move |_| {
                while let Ok((idx, item)) = work_rx.recv() {
                    let out = f(item);
                    if res_tx.send((idx, out)).is_err() {
                        return; // receiver gone: abort quietly
                    }
                }
            });
        }
        drop(res_tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (idx, r) in res_rx.iter() {
            slots[idx] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index produced a result"))
            .collect()
    })
    .expect("worker threads do not panic")
}

/// A sensible default worker count: available parallelism, at least 1.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, 8, |x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map((0..57).collect::<Vec<_>>(), 4, |x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 57);
        assert_eq!(counter.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_is_sequential() {
        let out = parallel_map(vec![3, 1, 2], 1, |x| x + 1);
        assert_eq!(out, vec![4, 2, 3]);
    }

    #[test]
    fn more_workers_than_items() {
        let out = parallel_map(vec![1, 2], 16, |x| x * 10);
        assert_eq!(out, vec![10, 20]);
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different cost still return in order.
        let out = parallel_map((0..20u64).collect::<Vec<_>>(), 4, |x| {
            if x % 5 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn default_workers_positive() {
        assert!(default_workers() >= 1);
    }
}
