//! Deterministic parallel map for parameter sweeps.
//!
//! Experiment grids (policy × RU count × seed) are embarrassingly
//! parallel: each cell is an independent, internally deterministic
//! simulation. [`parallel_map`] fans the cells out over a scoped
//! thread pool with work-stealing deques and returns results in input
//! order, so sweep output is identical to a sequential run regardless
//! of scheduling.
//!
//! Each worker owns a FIFO deque pre-filled with a *contiguous* block
//! of the input — with a Gray-code-ordered sweep, neighbouring cells
//! land on the same worker, which is what lets a pooled engine's
//! warm-start log hit on the next cell. A worker that drains its block
//! steals from the busiest point of the grid instead of idling, so
//! uneven per-cell cost (an LFD oracle cell is far more expensive than
//! an LRU cell) still balances.

use crossbeam::channel;
use crossbeam_deque::{Steal, Stealer, Worker};
use std::any::Any;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A captured panic payload, tagged with the input index it came from.
type CellPanic = (usize, Box<dyn Any + Send + 'static>);

/// Best-effort extraction of the human-readable message from a panic
/// payload (`panic!` produces `&str` or `String` payloads).
fn panic_message(payload: &(dyn Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}

/// Re-raises a captured per-cell panic, prefixed with the failing cell
/// index so sweep failures name the cell instead of aborting opaquely.
fn resume_cell_panic(idx: usize, payload: Box<dyn Any + Send + 'static>) -> ! {
    panic!(
        "parallel_map: cell {idx} panicked: {}",
        panic_message(payload.as_ref())
    );
}

/// Applies `f` to every item, using up to `workers` threads, preserving
/// input order in the result.
///
/// Items are distributed through per-worker work-stealing deques, so
/// uneven per-item cost (an LFD oracle cell is far more expensive than
/// an LRU cell) balances automatically while each worker still walks a
/// contiguous block of the input in order.
///
/// # Panics
/// If `f` panics on some item, the panic is captured per cell, the
/// remaining items still drain (workers keep going), and the panic of
/// the lowest failing index is re-raised on the caller's thread with
/// the cell index and original message attached.
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with(items, workers, || (), |(), item| f(item))
}

/// [`parallel_map`] with per-worker mutable state: `init` runs once on
/// each worker thread and the resulting state is threaded through every
/// item that worker processes.
///
/// This is what lets a sweep reuse expensive carriers across cells — a
/// pooled simulation engine, scratch buffers, a connection — without
/// any locking: each worker owns its state exclusively. Results are
/// still returned in input order, and per-cell determinism is
/// unaffected as long as the state does not leak information between
/// cells (a pooled engine is reset per cell; the pooled-equivalence
/// property test pins that resets are invisible).
///
/// # Panics
/// Propagates item panics exactly like [`parallel_map`] (lowest failing
/// index wins, tagged with the cell index).
pub fn parallel_map_with<T, R, S, I, F>(items: Vec<T>, workers: usize, init: I, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        let mut state = init();
        return items
            .into_iter()
            .enumerate()
            .map(|(idx, item)| {
                catch_unwind(AssertUnwindSafe(|| f(&mut state, item)))
                    .unwrap_or_else(|payload| resume_cell_panic(idx, payload))
            })
            .collect();
    }

    let (res_tx, res_rx) = channel::unbounded::<(usize, Result<R, Box<dyn Any + Send>>)>();
    // Contiguous block per worker: worker `w` owns cells
    // `[w·chunk, (w+1)·chunk)`. Sweep drivers order cells so that
    // neighbours share simulation state (Gray-code walks), and a block
    // keeps those neighbours on one worker — stealing only kicks in
    // once a worker's own block is drained.
    let queues: Vec<Worker<(usize, T)>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<(usize, T)>> = queues.iter().map(Worker::stealer).collect();
    let chunk = n.div_ceil(workers);
    for (idx, item) in items.into_iter().enumerate() {
        queues[idx / chunk].push((idx, item));
    }

    // The lowest panicked index so far (`usize::MAX` = none). Cells
    // above it drain without running `f` — a long sweep fails fast —
    // while cells *below* it still compute, so the lowest-indexed
    // failing cell always wins no matter which block panicked first.
    let panic_floor = AtomicUsize::new(usize::MAX);
    let (slots, first_panic) = crossbeam::thread::scope(|scope| {
        for (me, local) in queues.into_iter().enumerate() {
            let stealers = stealers.clone();
            let res_tx = res_tx.clone();
            let f = &f;
            let init = &init;
            let panic_floor = &panic_floor;
            scope.spawn(move |_| {
                let mut state = init();
                loop {
                    let task = local.pop().or_else(|| steal_task(&stealers, me));
                    let Some((idx, item)) = task else { break };
                    if idx > panic_floor.load(Ordering::Relaxed) {
                        continue; // a lower cell already failed
                    }
                    // Catch per-cell panics so one bad cell neither
                    // poisons the scope join nor loses its origin.
                    let out = catch_unwind(AssertUnwindSafe(|| f(&mut state, item)));
                    if out.is_err() {
                        panic_floor.fetch_min(idx, Ordering::Relaxed);
                    }
                    if res_tx.send((idx, out)).is_err() {
                        return; // receiver gone: abort quietly
                    }
                }
            });
        }
        drop(res_tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut first_panic: Option<CellPanic> = None;
        for (idx, r) in res_rx.iter() {
            match r {
                Ok(val) => slots[idx] = Some(val),
                Err(payload) => {
                    if first_panic.as_ref().is_none_or(|(i, _)| idx < *i) {
                        first_panic = Some((idx, payload));
                    }
                }
            }
        }
        (slots, first_panic)
    })
    .expect("workers catch their own panics");

    if let Some((idx, payload)) = first_panic {
        resume_cell_panic(idx, payload);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced a result"))
        .collect()
}

/// One round-robin pass over the other workers' stealers, looping while
/// any attempt reports contention. `None` means every queue was
/// observed empty — with no producers after startup that is a stable
/// termination condition, so the worker can exit.
fn steal_task<T>(stealers: &[Stealer<(usize, T)>], me: usize) -> Option<(usize, T)> {
    loop {
        let mut contended = false;
        for off in 1..stealers.len() {
            match stealers[(me + off) % stealers.len()].steal() {
                Steal::Success(task) => return Some(task),
                Steal::Retry => contended = true,
                Steal::Empty => {}
            }
        }
        if !contended {
            return None;
        }
        std::thread::yield_now();
    }
}

/// A sensible default worker count: available parallelism, at least 1.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, 8, |x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map((0..57).collect::<Vec<_>>(), 4, |x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 57);
        assert_eq!(counter.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_is_sequential() {
        let out = parallel_map(vec![3, 1, 2], 1, |x| x + 1);
        assert_eq!(out, vec![4, 2, 3]);
    }

    #[test]
    fn more_workers_than_items() {
        let out = parallel_map(vec![1, 2], 16, |x| x * 10);
        assert_eq!(out, vec![10, 20]);
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different cost still return in order.
        let out = parallel_map((0..20u64).collect::<Vec<_>>(), 4, |x| {
            if x % 5 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn default_workers_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn with_state_preserves_order_and_reuses_state() {
        // Each worker counts how many items it has processed; the
        // per-item result proves the state persisted (counter > 0 after
        // the first item) while output order stays input order.
        let out = parallel_map_with(
            (0..64u64).collect::<Vec<_>>(),
            4,
            || 0u64,
            |seen, x| {
                *seen += 1;
                (x, *seen)
            },
        );
        assert_eq!(out.len(), 64);
        for (i, &(x, seen)) in out.iter().enumerate() {
            assert_eq!(x, i as u64);
            assert!(seen >= 1);
        }
        // Across 4 workers and 64 items, at least one worker processed
        // more than one item — the state really is reused.
        assert!(out.iter().any(|&(_, seen)| seen > 1));
    }

    #[test]
    fn uneven_costs_steal_across_blocks_and_keep_order() {
        // Worker 0's contiguous block (the first half) is made of slow
        // cells; the other workers' blocks are instant. The idle
        // workers must steal into block 0 — observable as block-0 items
        // running on more than one thread — while results stay in input
        // order and every worker's state threads through its cells.
        let n = 16usize;
        let out = parallel_map_with(
            (0..n).collect::<Vec<_>>(),
            2,
            || 0usize,
            |seen, x| {
                *seen += 1;
                if x < n / 2 {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                (x, *seen, std::thread::current().id())
            },
        );
        assert_eq!(out.len(), n);
        for (i, &(x, seen, _)) in out.iter().enumerate() {
            assert_eq!(x, i, "results keep input order");
            assert!(seen >= 1, "per-worker state threads through");
        }
        let slow_threads: std::collections::BTreeSet<_> = out[..n / 2]
            .iter()
            .map(|&(_, _, id)| format!("{id:?}"))
            .collect();
        assert!(
            slow_threads.len() > 1,
            "the fast worker never stole from the slow block"
        );
    }

    #[test]
    fn with_state_sequential_path_uses_one_state() {
        let out = parallel_map_with(vec![10u32, 20, 30], 1, Vec::new, |log: &mut Vec<u32>, x| {
            log.push(x);
            log.len()
        });
        assert_eq!(out, vec![1, 2, 3], "one state threads through all items");
    }

    #[test]
    fn with_state_propagates_cell_index_on_panic() {
        let err = quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                parallel_map_with(
                    (0..12u32).collect::<Vec<_>>(),
                    3,
                    || (),
                    |(), x| {
                        assert!(x != 5, "stateful boom");
                        x
                    },
                )
            }))
            .expect_err("a cell panicked")
        });
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("cell 5"), "missing index: {msg}");
    }

    /// Runs `op` with the default panic hook silenced, so expected-panic
    /// tests do not spam stderr with worker backtraces. The hook is
    /// process-global state and tests run on parallel threads, so
    /// swap/restore is serialised through a mutex — otherwise two
    /// overlapping calls could capture each other's silent hook and
    /// leave it installed for the rest of the test run.
    fn quiet_panics<R>(op: impl FnOnce() -> R) -> R {
        static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        // `op` contains its panics via catch_unwind, so the restore
        // below always runs under the lock.
        let out = op();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn panicking_cell_reports_its_index() {
        // Regression: a worker panic used to surface as an opaque
        // "worker threads do not panic" abort with no failing cell.
        let err = quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                parallel_map((0..20u64).collect::<Vec<_>>(), 4, |x| {
                    assert!(x != 13, "unlucky cell");
                    x
                })
            }))
            .expect_err("a cell panicked")
        });
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("cell 13"), "missing index: {msg}");
        assert!(msg.contains("unlucky cell"), "missing original: {msg}");
    }

    #[test]
    fn lowest_failing_index_wins() {
        let err = quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                parallel_map((0..40u64).collect::<Vec<_>>(), 8, |x| {
                    assert!(x % 10 != 7, "boom {x}");
                    x
                })
            }))
            .expect_err("cells panicked")
        });
        let msg = panic_message(err.as_ref());
        assert!(
            msg.contains("cell 7 panicked"),
            "expected lowest index: {msg}"
        );
    }

    #[test]
    fn sequential_path_reports_index_too() {
        let err = quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                parallel_map(vec![1u32, 2, 3], 1, |x| {
                    assert!(x != 2, "sequential boom");
                    x
                })
            }))
            .expect_err("a cell panicked")
        });
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("cell 1"), "missing index: {msg}");
    }
}
