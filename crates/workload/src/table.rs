//! Result tables: Markdown for terminals/docs, CSV for plotting.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple rectangular results table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as aligned GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "### {}\n", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for i in 0..cols {
                let _ = write!(line, " {:<width$} |", cells[i], width = widths[i]);
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders as RFC-4180-ish CSV (quoting cells containing commas or
    /// quotes).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| field(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV form to `path`, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Formats a float with `digits` decimals (helper for table cells).
pub fn fmt_f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Reuse", &["RUs", "LRU", "LFD"]);
        t.push_row(vec!["4".into(), "30.1".into(), "46.0".into()]);
        t.push_row(vec!["10".into(), "33.9".into(), "48.2".into()]);
        t
    }

    #[test]
    fn markdown_is_aligned() {
        let md = sample().to_markdown();
        assert!(md.contains("### Reuse"));
        assert!(md.contains("| RUs | LRU  | LFD  |"));
        assert!(md.contains("| 4   | 30.1 | 46.0 |"));
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut t = Table::new("", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new("", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("rtr_table_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        sample().write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("RUs,LRU,LFD"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fmt_helper() {
        assert_eq!(fmt_f(30.0571, 2), "30.06");
    }
}
