//! The VOPR-style deterministic fuzz campaign behind the `vopr`
//! binary.
//!
//! A campaign is a pure function of one `master_seed`: case `i`
//! derives its knobs (scenario seed, template count, apps, RUs,
//! arrival process, policy, prefetch depth, engine lifecycle,
//! head-blocking annotation, preemption mode, QoS class mix, runtime
//! fault-rate class, fault-class mix, pooled device count, placement
//! policy and tenant mix) with a SplitMix64 stream, materialises
//! the scenario, drives the engine through one of four lifecycles
//! (fresh / reset / retarget / replay) — or, on multi-device draws,
//! through the fleet front-end — and validates the run through
//! the shared [`CheckerRegistry`] — including bit-exactness against a
//! fresh reference run (`pooled-identity`); fleet cases additionally
//! partition the jobs by the recorded placement decisions and check
//! every pooled engine against an independent run on its routed
//! subset.
//!
//! Every failing case is summarised by a [`Fingerprint`]
//! (`vopr-<master_seed>-<case_index>[-f<fault>]`) that
//! [`case_report`] replays deterministically to the byte-identical
//! violation report, after a greedy minimisation pass shrank the
//! scenario. Faults ([`Fault`]) deliberately corrupt the subject
//! outcome after the run — the harness's own self-check that the
//! checkers, fingerprints and the replay path all have teeth. These
//! post-run corruptions are distinct from the *runtime* fault plans
//! ([`FaultPlan`]) two thirds of the cases carry: those inject
//! transient load corruption, resident upsets and RU hard faults
//! *inside* the engine, and the campaign's coverage gate requires
//! every fault class (and every fault-aware checker) to actually
//! exercise.

use crate::arrivals::ArrivalProcess;
use crate::qos::QosSpec;
use rtr_core::{
    compute_mobility, FifoPolicy, LfdPolicy, LfuPolicy, LruPolicy, MruPolicy, RandomPolicy,
};
use rtr_manager::{
    simulate, simulate_fleet, CheckContext, CheckerRegistry, Engine, FaultPlan,
    FirstCandidatePolicy, FleetConfig, JobSpec, Lookahead, ManagerConfig, PlacementKind,
    PreemptionMode, PrefetchConfig, QosClass, RegistryReport, ReplacementPolicy, SimError,
    SimulationOutcome, TenantId, TraceEvent,
};
use rtr_taskgraph::generate::{self, GenConfig};
use rtr_taskgraph::TaskGraph;
use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// The prefetch depths a campaign cycles through (the acceptance
/// envelope requires 0 and 4 to be covered).
pub const DEPTHS: [usize; 4] = [0, 1, 2, 4];

/// Upper bound on candidate evaluations the minimiser may spend.
const MINIMIZE_BUDGET: usize = 200;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How the engine is driven through a case. All five shapes must
/// produce the bit-identical outcome of a fresh [`simulate`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lifecycle {
    /// A fresh engine per run (the [`simulate`] wrapper).
    Fresh,
    /// Warm the engine on the same batch, then `reset` and rerun.
    Reset,
    /// Warm the engine under a *different* RU count, then
    /// `reset_with_config` onto the case's configuration.
    Retarget,
    /// Warm the engine on the batch, then `reset_replay` and rerun
    /// without re-submission.
    Replay,
    /// Warm the engine on the *first half* of the batch, then `reset`
    /// onto the full list — on eligible knob draws this drives the
    /// warm-start checkpoint replay (the sealed half-batch log shares
    /// a decision prefix with the full batch); on ineligible draws it
    /// must degrade to a cold run, bit-exactly either way.
    WarmStart,
}

impl Lifecycle {
    /// All lifecycles, in the order the campaign cycles through them.
    pub const ALL: [Lifecycle; 5] = [
        Lifecycle::Fresh,
        Lifecycle::Reset,
        Lifecycle::Retarget,
        Lifecycle::Replay,
        Lifecycle::WarmStart,
    ];

    /// Stable label (knob summaries, coverage reports).
    pub fn name(&self) -> &'static str {
        match self {
            Lifecycle::Fresh => "fresh",
            Lifecycle::Reset => "reset",
            Lifecycle::Retarget => "retarget",
            Lifecycle::Replay => "replay",
            Lifecycle::WarmStart => "warm-start",
        }
    }
}

/// A deliberate post-run corruption of the subject outcome — the
/// harness's self-check that a violation actually trips a checker and
/// that its fingerprint replays to the identical report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Remove the first `ExecEnd` event from the trace (trips the
    /// lifecycle/counter checkers).
    DropExecEnd,
    /// Increment `stats.reuses` by one (trips `counter-equality`).
    BumpReuses,
}

impl Fault {
    /// Stable label used inside fingerprints.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::DropExecEnd => "drop-exec-end",
            Fault::BumpReuses => "bump-reuses",
        }
    }

    fn from_name(s: &str) -> Option<Fault> {
        match s {
            "drop-exec-end" => Some(Fault::DropExecEnd),
            "bump-reuses" => Some(Fault::BumpReuses),
            _ => None,
        }
    }

    /// Applies the corruption to a completed outcome.
    pub fn apply(&self, out: &mut SimulationOutcome) {
        match self {
            Fault::DropExecEnd => {
                if let Some(i) = out
                    .trace
                    .events
                    .iter()
                    .position(|e| matches!(e, TraceEvent::ExecEnd { .. }))
                {
                    out.trace.events.remove(i);
                }
            }
            Fault::BumpReuses => out.stats.reuses += 1,
        }
    }
}

/// The compact, replayable identity of one campaign case:
/// `vopr-<master_seed:016x>-<case_index>[-f<fault>]`. Everything else
/// (knobs, jobs, configuration) derives deterministically from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint {
    /// The campaign's master seed.
    pub master_seed: u64,
    /// Index of the case within the campaign.
    pub case_index: u64,
    /// Deliberate post-run corruption, if any (self-check replays).
    pub fault: Option<Fault>,
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vopr-{:016x}-{}", self.master_seed, self.case_index)?;
        if let Some(fault) = self.fault {
            write!(f, "-f{}", fault.name())?;
        }
        Ok(())
    }
}

impl FromStr for Fingerprint {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .strip_prefix("vopr-")
            .ok_or_else(|| format!("fingerprint '{s}' does not start with 'vopr-'"))?;
        let (seed_hex, rest) = rest
            .split_once('-')
            .ok_or_else(|| format!("fingerprint '{s}' is missing the case index"))?;
        let master_seed = u64::from_str_radix(seed_hex, 16)
            .map_err(|e| format!("fingerprint '{s}': bad master seed: {e}"))?;
        let (index_str, fault) = match rest.split_once("-f") {
            Some((idx, fault_name)) => {
                let fault = Fault::from_name(fault_name)
                    .ok_or_else(|| format!("fingerprint '{s}': unknown fault '{fault_name}'"))?;
                (idx, Some(fault))
            }
            None => (rest, None),
        };
        let case_index = index_str
            .parse::<u64>()
            .map_err(|e| format!("fingerprint '{s}': bad case index: {e}"))?;
        Ok(Fingerprint {
            master_seed,
            case_index,
            fault,
        })
    }
}

/// The derived knobs of one case. `lifecycle` and `depth` cycle
/// deterministically with the case index so every campaign of ≥ 16
/// cases covers all four lifecycles at every depth; the rest streams
/// from SplitMix64.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseKnobs {
    /// Seed for the template family / arrival / annotation draws.
    pub scenario_seed: u64,
    /// Template-family size (1–3).
    pub templates: usize,
    /// Number of application instances (1–12).
    pub apps: usize,
    /// RU count (1–6).
    pub rus: usize,
    /// Arrival-process selector (0–3: batch/poisson/periodic/bursty).
    pub arrival_kind: u8,
    /// Policy selector (0–7, the full replacement-policy set).
    pub policy: u8,
    /// Prefetch depth (cycled through [`DEPTHS`]).
    pub depth: usize,
    /// Engine lifecycle (cycled through [`Lifecycle::ALL`]).
    pub lifecycle: Lifecycle,
    /// Head-blocking annotation: 0 = none, 1 = mobility + Skip
    /// Events, 2 = a forced one-event delay on one node per job.
    pub annotate: u8,
    /// Preemption mode (cycled through [`PreemptionMode::ALL`]).
    pub preemption: PreemptionMode,
    /// QoS class mix selector (see [`qos_mix_spec`] /
    /// [`qos_mix_label`]): 0 = uniform best-effort, 1/2 = strided
    /// high-priority mixes with deadlines.
    pub qos_mix: u8,
    /// Runtime fault-rate class (see [`fault_rate_label`]): 0 = off
    /// (the exact pre-fault code path), 1 = [`FaultPlan::low`],
    /// 2 = [`FaultPlan::high`].
    pub fault_rate: u8,
    /// Fault-class mix selector (see [`fault_plan`] /
    /// [`fault_mix_label`]): 0 = all three classes, 1 = transient
    /// loads only, 2 = resident upsets only, 3 = RU hard faults only.
    pub fault_mix: u8,
    /// Pooled device count (1/1/2/4 — half the draws stay
    /// single-device so the engine lifecycles keep their coverage).
    /// Multi-device cases run the fleet path, which ignores the
    /// `lifecycle` knob: the fleet front-end always drives fresh
    /// engines.
    pub devices: usize,
    /// Placement policy routing multi-device cases.
    pub placement: PlacementKind,
    /// Tenant count (1–3); jobs are stamped round-robin.
    pub tenants: usize,
}

/// The class mix a `qos_mix` selector decodes to.
pub fn qos_mix_spec(mix: u8) -> QosSpec {
    match mix % 3 {
        0 => QosSpec::UNIFORM,
        1 => QosSpec::strided(3, 5, 150),
        _ => QosSpec::strided(2, 3, 120),
    }
}

/// Stable label for a `qos_mix` selector (knob summaries, coverage).
pub fn qos_mix_label(mix: u8) -> &'static str {
    match mix % 3 {
        0 => "uniform",
        1 => "strided(3)@p5",
        _ => "strided(2)@p3",
    }
}

/// Salt decorrelating the fault-decision stream from the workload
/// streams drawn with the same scenario seed.
const FAULT_SEED_SALT: u64 = 0xFA17_5EED;

/// Stable label for a `fault_rate` selector (knob summaries, coverage).
pub fn fault_rate_label(rate: u8) -> &'static str {
    match rate % 3 {
        0 => "off",
        1 => "low",
        _ => "high",
    }
}

/// Stable label for a `fault_mix` selector (knob summaries, coverage).
pub fn fault_mix_label(mix: u8) -> &'static str {
    match mix % 4 {
        0 => "all",
        1 => "transient",
        2 => "upset",
        _ => "ru-hard",
    }
}

/// The runtime fault plan a case's fault knobs decode to. The rate
/// class picks the [`FaultPlan::low`]/[`FaultPlan::high`] preset (or
/// the exact-off plan), the mix selector masks it down to a single
/// fault class so each class is also exercised in isolation. The
/// preset's finite repair latency is kept in every mix — transient
/// give-ups quarantine their RU, and a permanently dead pool would
/// turn small-RU cases into stalls instead of checked runs.
pub fn fault_plan(rate: u8, mix: u8, scenario_seed: u64) -> FaultPlan {
    let mut plan = match rate % 3 {
        0 => return FaultPlan::off(),
        1 => FaultPlan::low(scenario_seed ^ FAULT_SEED_SALT),
        _ => FaultPlan::high(scenario_seed ^ FAULT_SEED_SALT),
    };
    match mix % 4 {
        0 => {}
        1 => {
            plan.upset_pm = 0;
            plan.ru_fault_pm = 0;
        }
        2 => {
            plan.load_fault_pm = 0;
            plan.ru_fault_pm = 0;
        }
        _ => {
            plan.load_fault_pm = 0;
            plan.upset_pm = 0;
        }
    }
    plan
}

impl CaseKnobs {
    /// Derives the knobs of case `case_index` under `master_seed`.
    pub fn derive(master_seed: u64, case_index: u64) -> CaseKnobs {
        let mut state = master_seed ^ case_index.wrapping_mul(0xA076_1D64_78BD_642F);
        let scenario_seed = splitmix64(&mut state);
        let r = splitmix64(&mut state);
        let f = splitmix64(&mut state);
        CaseKnobs {
            scenario_seed,
            templates: 1 + (r % 3) as usize,
            apps: 1 + ((r >> 8) % 12) as usize,
            rus: 1 + ((r >> 16) % 6) as usize,
            arrival_kind: ((r >> 24) % 4) as u8,
            policy: ((r >> 32) % 8) as u8,
            depth: DEPTHS[(case_index as usize / 4) % DEPTHS.len()],
            lifecycle: Lifecycle::ALL[case_index as usize % Lifecycle::ALL.len()],
            annotate: ((r >> 40) % 3) as u8,
            preemption: PreemptionMode::ALL[((r >> 48) % 3) as usize],
            qos_mix: ((r >> 52) % 3) as u8,
            fault_rate: (f % 3) as u8,
            fault_mix: ((f >> 8) % 4) as u8,
            devices: [1, 1, 2, 4][((f >> 12) % 4) as usize],
            placement: PlacementKind::ALL[((f >> 16) % 3) as usize],
            tenants: 1 + ((f >> 20) % 3) as usize,
        }
    }

    /// Lookahead implied by the policy selector (LFD variants need a
    /// future view; the rest draw one from the scenario seed, like the
    /// guard property test).
    pub fn lookahead(&self) -> Lookahead {
        match self.policy % 8 {
            6 => Lookahead::Graphs(1 + (self.scenario_seed % 3) as usize),
            7 => Lookahead::All,
            _ => match self.scenario_seed % 3 {
                0 => Lookahead::None,
                1 => Lookahead::Graphs(1 + (self.scenario_seed % 4) as usize),
                _ => Lookahead::All,
            },
        }
    }

    /// One stable line naming every knob (case reports).
    pub fn summary(&self) -> String {
        format!(
            "lifecycle={} depth={} templates={} apps={} rus={} arrival={} \
             policy={} annotate={} preemption={} qos={} faults={}/{} \
             devices={} placement={} tenants={} \
             lookahead={:?} scenario_seed={:#018x}",
            self.lifecycle.name(),
            self.depth,
            self.templates,
            self.apps,
            self.rus,
            arrival_process(self.arrival_kind).label(),
            policy_label(self.policy, self.scenario_seed),
            match self.annotate % 3 {
                0 => "none",
                1 => "mobility+skip",
                _ => "forced-delay",
            },
            self.preemption.label(),
            qos_mix_label(self.qos_mix),
            fault_rate_label(self.fault_rate),
            fault_mix_label(self.fault_mix),
            self.devices,
            self.placement.label(),
            self.tenants,
            self.lookahead(),
            self.scenario_seed,
        )
    }
}

fn arrival_process(kind: u8) -> ArrivalProcess {
    match kind % 4 {
        0 => ArrivalProcess::Batch,
        1 => ArrivalProcess::Poisson {
            mean_gap_us: 40_000,
        },
        2 => ArrivalProcess::Periodic { period_us: 35_000 },
        _ => ArrivalProcess::Bursty {
            size: 3,
            mean_gap_us: 150_000,
        },
    }
}

/// Builds the policy for selector `id` (fresh state every call).
pub fn build_policy(id: u8, seed: u64) -> Box<dyn ReplacementPolicy> {
    match id % 8 {
        0 => Box::new(FirstCandidatePolicy),
        1 => Box::new(LruPolicy::new()),
        2 => Box::new(FifoPolicy::new()),
        3 => Box::new(MruPolicy::new()),
        4 => Box::new(LfuPolicy::new()),
        5 => Box::new(RandomPolicy::new(seed)),
        6 => Box::new(LfdPolicy::local(1 + (seed % 3) as usize)),
        _ => Box::new(LfdPolicy::oracle()),
    }
}

fn policy_label(id: u8, seed: u64) -> String {
    build_policy(id, seed).name().to_string()
}

/// One fully materialised case: the jobs, the manager configuration
/// and the knobs they came from.
#[derive(Debug, Clone)]
pub struct Case {
    /// The derived knobs.
    pub knobs: CaseKnobs,
    /// Job specs (graphs, arrivals, annotations).
    pub jobs: Vec<JobSpec>,
    /// Manager configuration (RUs, lookahead, skip events, prefetch).
    pub cfg: ManagerConfig,
}

/// Materialises the case `fingerprint` identifies (fault excluded —
/// faults apply to the outcome, not the scenario).
pub fn build_case(fp: &Fingerprint) -> Case {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let knobs = CaseKnobs::derive(fp.master_seed, fp.case_index);
    let seed = knobs.scenario_seed;
    let mut rng = StdRng::seed_from_u64(seed);
    let gen_cfg = GenConfig {
        exec_us: (1_000, 25_000),
        config_base: 50,
        config_pool: Some(8),
    };
    let family: Vec<Arc<TaskGraph>> =
        generate::template_family(&mut rng, knobs.templates, &gen_cfg)
            .into_iter()
            .map(Arc::new)
            .collect();
    let cfg = ManagerConfig::paper_default()
        .with_rus(knobs.rus)
        .with_lookahead(knobs.lookahead())
        .with_skip_events(knobs.annotate % 3 == 1)
        .with_prefetch(PrefetchConfig::with_depth(knobs.depth))
        .with_preemption(knobs.preemption)
        .with_faults(fault_plan(knobs.fault_rate, knobs.fault_mix, seed))
        .with_trace(true);
    let arrivals = arrival_process(knobs.arrival_kind).generate(knobs.apps, seed ^ 0x5EED);
    let mut jobs: Vec<JobSpec> = (0..knobs.apps)
        .map(|i| {
            let graph = Arc::clone(&family[i % family.len()]);
            let mut job = JobSpec::new(Arc::clone(&graph))
                .with_arrival(arrivals[i])
                .with_tenant(TenantId((i % knobs.tenants) as u32));
            match knobs.annotate % 3 {
                1 => {
                    let mobility =
                        Arc::new(compute_mobility(&graph, &cfg).expect("mobility computes"));
                    job = job.with_mobility(mobility);
                }
                2 => {
                    let mut delays = vec![0u32; graph.len()];
                    delays[(seed as usize + i) % graph.len()] = 1;
                    job = job.with_forced_delays(Arc::new(delays));
                }
                _ => {}
            }
            job
        })
        .collect();
    let sequence: Vec<Arc<TaskGraph>> = jobs.iter().map(|j| Arc::clone(&j.graph)).collect();
    if let Some(classes) = qos_mix_spec(knobs.qos_mix).assign(&sequence, &arrivals, knobs.rus) {
        for (job, class) in jobs.iter_mut().zip(classes) {
            job.qos = class;
        }
    }
    Case { knobs, jobs, cfg }
}

/// Drives the engine through the case's lifecycle and returns the
/// subject outcome. Warm legs run the same batch (retarget warms under
/// a different RU count) and their results are discarded — the pooled
/// contract says no warm state may leak into the measured leg.
fn execute_subject(case: &Case) -> Result<SimulationOutcome, SimError> {
    let knobs = &case.knobs;
    let seed = knobs.scenario_seed;
    match knobs.lifecycle {
        Lifecycle::Fresh => {
            let mut policy = build_policy(knobs.policy, seed);
            simulate(&case.cfg, &case.jobs, policy.as_mut())
        }
        Lifecycle::Reset => {
            let mut engine = Engine::new(&case.cfg);
            warm(&mut engine, case);
            let mut policy = build_policy(knobs.policy, seed);
            policy.reset();
            engine.reset(&case.jobs);
            engine.run(policy.as_mut());
            engine.outcome()
        }
        Lifecycle::Retarget => {
            // Warm under a different RU count, then retarget onto the
            // case's configuration.
            let warm_rus = if knobs.rus == 6 { 1 } else { knobs.rus + 1 };
            let warm_cfg = case.cfg.clone().with_rus(warm_rus);
            let mut engine = Engine::new(&warm_cfg);
            warm(&mut engine, case);
            let mut policy = build_policy(knobs.policy, seed);
            policy.reset();
            engine.reset_with_config(&case.cfg, &case.jobs);
            engine.run(policy.as_mut());
            engine.outcome()
        }
        Lifecycle::Replay => {
            let mut engine = Engine::new(&case.cfg);
            warm(&mut engine, case);
            let mut policy = build_policy(knobs.policy, seed);
            policy.reset();
            engine.reset_replay();
            engine.run(policy.as_mut());
            engine.outcome()
        }
        Lifecycle::WarmStart => {
            // Seal a half-batch log, then reset onto the full list:
            // the warm-start machinery sees a shared prefix and, when
            // the knobs allow, restores a checkpoint instead of
            // starting cold.
            let mut engine = Engine::new(&case.cfg);
            let half = case.jobs.len().div_ceil(2);
            warm_on(&mut engine, case, &case.jobs[..half]);
            let mut policy = build_policy(knobs.policy, seed);
            policy.reset();
            engine.reset(&case.jobs);
            engine.run(policy.as_mut());
            engine.outcome()
        }
    }
}

/// One discarded warm leg on the case's own batch (under whatever
/// configuration the engine currently carries).
fn warm(engine: &mut Engine, case: &Case) {
    warm_on(engine, case, &case.jobs);
}

/// One discarded warm leg on an arbitrary job list (the warm-start
/// lifecycle warms on a half batch).
fn warm_on(engine: &mut Engine, case: &Case, jobs: &[JobSpec]) {
    let mut policy = build_policy(case.knobs.policy, case.knobs.scenario_seed);
    policy.reset();
    engine.reset(jobs);
    engine.run(policy.as_mut());
    let _ = engine.outcome();
}

/// How a case concluded.
#[derive(Debug)]
pub enum CaseStatus {
    /// Both runs completed; the registry validated the subject.
    Checked(rtr_manager::RegistryReport),
    /// Subject and reference stalled identically (a legitimate
    /// infeasible forced delay) — checkers skipped.
    Stalled,
    /// Subject and reference disagreed about completing — a
    /// determinism violation in its own right.
    StallMismatch(String),
}

/// Runtime-fault injections observed in one checked case's subject
/// trace (all zero for stalled or fault-off cases).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaseFaultCounts {
    /// Transient load corruptions injected.
    pub transients: u64,
    /// Resident-configuration upsets injected.
    pub upsets: u64,
    /// RU hard faults injected.
    pub ru_hard: u64,
}

/// One case's full result: its fingerprint, knobs and verdict.
#[derive(Debug)]
pub struct CaseOutcome {
    /// The case's replayable identity.
    pub fingerprint: Fingerprint,
    /// Its derived knobs.
    pub knobs: CaseKnobs,
    /// Runtime-fault injections the subject trace recorded.
    pub faults: CaseFaultCounts,
    /// The verdict.
    pub status: CaseStatus,
}

/// The pseudo-checker name attributed to stall mismatches in failure
/// bookkeeping (it is not a registry checker).
pub const STALL_MISMATCH: &str = "stall-mismatch";

impl CaseOutcome {
    /// Total violations (a stall mismatch counts as one).
    pub fn violation_count(&self) -> usize {
        match &self.status {
            CaseStatus::Checked(report) => report.violation_count(),
            CaseStatus::Stalled => 0,
            CaseStatus::StallMismatch(_) => 1,
        }
    }

    /// Names of the checkers that failed ([`STALL_MISMATCH`] for a
    /// stall mismatch).
    pub fn failing(&self) -> Vec<&'static str> {
        match &self.status {
            CaseStatus::Checked(report) => report.failing(),
            CaseStatus::Stalled => Vec::new(),
            CaseStatus::StallMismatch(_) => vec![STALL_MISMATCH],
        }
    }

    /// Renders the stable, replay-stable report for this case.
    pub fn render(&self) -> String {
        let mut s = format!(
            "case {}\nknobs: {}\n",
            self.fingerprint,
            self.knobs.summary()
        );
        match &self.status {
            CaseStatus::Checked(report) => {
                s.push_str(&format!(
                    "verdict: {}\n",
                    if report.is_clean() {
                        "clean".to_string()
                    } else {
                        format!("{} violation(s)", report.violation_count())
                    }
                ));
                s.push_str(&report.render());
            }
            CaseStatus::Stalled => {
                s.push_str("verdict: stalled (subject and reference agree)\n");
            }
            CaseStatus::StallMismatch(msg) => {
                s.push_str(&format!("verdict: stall mismatch\n  - {msg}\n"));
            }
        }
        s
    }
}

/// The per-device manager configurations of a multi-device case: RU
/// counts are staggered from the case's own (`1 + ((rus - 1 + d) % 6)`
/// for device `d`, keeping every count in the legal 1–6 band), and an
/// active fault plan is re-salted per device so the pooled engines
/// draw decorrelated injection streams (device 0 keeps the
/// single-device plan).
pub fn fleet_device_configs(case: &Case) -> Vec<ManagerConfig> {
    (0..case.knobs.devices)
        .map(|d| {
            let rus = 1 + ((case.knobs.rus - 1 + d) % 6);
            let mut cfg = case.cfg.clone().with_rus(rus);
            if !cfg.faults.is_off() {
                cfg = cfg.with_faults(fault_plan(
                    case.knobs.fault_rate,
                    case.knobs.fault_mix,
                    case.knobs.scenario_seed ^ ((d as u64) << 32),
                ));
            }
            cfg
        })
        .collect()
}

/// Runs a multi-device case through the fleet front-end. The subject
/// is one [`simulate_fleet`] run; the reference partitions the jobs by
/// the recorded placement decisions and re-runs each device's routed
/// subset through an independent [`simulate`] — the fleet contract in
/// miniature (the pooled engine must be indistinguishable from a
/// dedicated one). Every device outcome is validated through the full
/// registry against its partitioned reference, and the fleet checkers
/// ride on device 0's context.
fn run_fleet_case(fp: &Fingerprint, case: &Case, registry: &CheckerRegistry) -> CaseOutcome {
    let devices = fleet_device_configs(case);
    let device_rus: Vec<usize> = devices.iter().map(|c| c.rus).collect();
    let cfg = FleetConfig::new(devices, case.knobs.placement)
        .with_seed(case.knobs.scenario_seed)
        .with_decisions(true);
    let build = || build_policy(case.knobs.policy, case.knobs.scenario_seed);
    let mut faults = CaseFaultCounts::default();
    let status = match simulate_fleet(&cfg, &case.jobs, build) {
        Ok(mut outcome) => {
            if let Some(fault) = fp.fault {
                fault.apply(&mut outcome.devices[0]);
            }
            for dev in &outcome.devices {
                let counts = dev.trace.counts();
                faults.transients += counts.fault_transients;
                faults.upsets += counts.fault_upsets;
                faults.ru_hard += counts.fault_ru;
            }
            let mut routed: Vec<Vec<JobSpec>> = vec![Vec::new(); cfg.devices.len()];
            for d in &outcome.decisions {
                routed[d.device].push(case.jobs[d.submit_index].clone());
            }
            let mut references = Vec::with_capacity(cfg.devices.len());
            let mut mismatch = None;
            for (d, dev_cfg) in cfg.devices.iter().enumerate() {
                let mut policy = build();
                match simulate(dev_cfg, &routed[d], policy.as_mut()) {
                    Ok(reference) => references.push(reference),
                    Err(e) => {
                        mismatch = Some(format!(
                            "fleet subject completed but the reference run of \
                             device {d} stalled with {e:?}"
                        ));
                        break;
                    }
                }
            }
            match mismatch {
                Some(msg) => CaseStatus::StallMismatch(msg),
                None => {
                    let info = outcome.check_info(&cfg, &device_rus);
                    let mut merged: Vec<rtr_manager::CheckerOutcome> = Vec::new();
                    for (d, dev) in outcome.devices.iter().enumerate() {
                        let cx = CheckContext::new(
                            &dev.trace,
                            &routed[d],
                            cfg.devices[d].device.reconfig_latency,
                            Some(&dev.stats),
                        )
                        .with_reference(&references[d])
                        .with_prefetch_depth(case.knobs.depth)
                        .with_fault_plan(&cfg.devices[d].faults);
                        let cx = if d == 0 { cx.with_fleet(&info) } else { cx };
                        let report = registry.run(&cx);
                        if merged.is_empty() {
                            merged = report.outcomes;
                        } else {
                            // Registry order is stable run to run, so
                            // the outcome rows zip by position.
                            for (m, o) in merged.iter_mut().zip(report.outcomes) {
                                m.fired += o.fired;
                                m.violations.extend(o.violations);
                            }
                        }
                    }
                    CaseStatus::Checked(RegistryReport { outcomes: merged })
                }
            }
        }
        // The fleet cannot partition jobs without decisions from a
        // completed run; a stall is legitimate only if it replays
        // identically.
        Err(a) => match simulate_fleet(&cfg, &case.jobs, build) {
            Err(b) if a == b => CaseStatus::Stalled,
            Err(b) => CaseStatus::StallMismatch(format!(
                "fleet subject stalled with {a:?} but the replay stalled with {b:?}"
            )),
            Ok(_) => CaseStatus::StallMismatch(format!(
                "fleet subject stalled with {a:?} but the replay completed"
            )),
        },
    };
    CaseOutcome {
        fingerprint: *fp,
        knobs: case.knobs,
        faults,
        status,
    }
}

/// Runs one materialised case through its lifecycle, applies `fault`
/// to the subject outcome, and validates through `registry`.
/// Multi-device knob draws route through the fleet front-end instead
/// (`run_fleet_case`).
pub fn run_case(fp: &Fingerprint, case: &Case, registry: &CheckerRegistry) -> CaseOutcome {
    if case.knobs.devices > 1 {
        return run_fleet_case(fp, case, registry);
    }
    let subject = execute_subject(case);
    let mut reference_policy = build_policy(case.knobs.policy, case.knobs.scenario_seed);
    let reference = simulate(&case.cfg, &case.jobs, reference_policy.as_mut());
    let mut faults = CaseFaultCounts::default();
    let status = match (subject, reference) {
        (Ok(mut subject), Ok(reference)) => {
            if let Some(fault) = fp.fault {
                fault.apply(&mut subject);
            }
            let counts = subject.trace.counts();
            faults = CaseFaultCounts {
                transients: counts.fault_transients,
                upsets: counts.fault_upsets,
                ru_hard: counts.fault_ru,
            };
            let cx = CheckContext::new(
                &subject.trace,
                &case.jobs,
                case.cfg.device.reconfig_latency,
                Some(&subject.stats),
            )
            .with_reference(&reference)
            .with_prefetch_depth(case.knobs.depth)
            .with_fault_plan(&case.cfg.faults);
            CaseStatus::Checked(registry.run(&cx))
        }
        (Err(a), Err(b)) if a == b => CaseStatus::Stalled,
        (Err(a), Err(b)) => CaseStatus::StallMismatch(format!(
            "subject stalled with {a:?} but the reference run stalled with {b:?}"
        )),
        (Ok(_), Err(b)) => CaseStatus::StallMismatch(format!(
            "subject completed but the reference run stalled with {b:?}"
        )),
        (Err(a), Ok(_)) => CaseStatus::StallMismatch(format!(
            "subject stalled with {a:?} but the reference run completed"
        )),
    };
    CaseOutcome {
        fingerprint: *fp,
        knobs: case.knobs,
        faults,
        status,
    }
}

/// Re-runs a (possibly minimised) case and reports whether any of the
/// originally failing checkers still fails.
fn fails_like(
    fp: &Fingerprint,
    case: &Case,
    registry: &CheckerRegistry,
    failing: &BTreeSet<&'static str>,
) -> bool {
    run_case(fp, case, registry)
        .failing()
        .iter()
        .any(|name| failing.contains(name))
}

/// The summary of one greedy minimisation pass.
#[derive(Debug, Default)]
pub struct MinimizeSummary {
    /// Human-readable shrink steps that were kept.
    pub steps: Vec<String>,
    /// Candidate evaluations spent.
    pub evaluations: usize,
}

/// Greedy scenario minimiser: drop job chunks (ddmin-style), then
/// simplify knobs (prefetch off, annotations stripped, QoS stripped,
/// runtime faults stripped, fleet stripped to a single device, fresh
/// lifecycle, fewer RUs) — keeping a candidate only while at least one
/// of the originally failing checkers still fails. Deterministic, and
/// bounded to 200 candidate evaluations.
pub fn minimize_case(
    fp: &Fingerprint,
    case: &Case,
    registry: &CheckerRegistry,
) -> (Case, MinimizeSummary) {
    let failing: BTreeSet<&'static str> =
        run_case(fp, case, registry).failing().into_iter().collect();
    let mut summary = MinimizeSummary::default();
    if failing.is_empty() {
        return (case.clone(), summary);
    }
    let mut best = case.clone();
    let mut evals = 0usize;
    let try_candidate = |candidate: &Case, evals: &mut usize| -> bool {
        if *evals >= MINIMIZE_BUDGET {
            return false;
        }
        *evals += 1;
        fails_like(fp, candidate, registry, &failing)
    };

    // 1. Drop job chunks, halving the chunk size down to single jobs.
    let mut chunk = best.jobs.len().div_ceil(2);
    while chunk >= 1 {
        let mut i = 0;
        while i < best.jobs.len() {
            let mut candidate = best.clone();
            let upper = (i + chunk).min(candidate.jobs.len());
            candidate.jobs.drain(i..upper);
            if try_candidate(&candidate, &mut evals) {
                summary.steps.push(format!(
                    "dropped jobs [{i}..{upper}) ({} left)",
                    candidate.jobs.len()
                ));
                best = candidate;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    // 2. Prefetch off.
    if best.knobs.depth != 0 {
        let mut candidate = best.clone();
        candidate.knobs.depth = 0;
        candidate.cfg = candidate.cfg.with_prefetch(PrefetchConfig::off());
        if try_candidate(&candidate, &mut evals) {
            summary.steps.push("prefetch depth -> 0".into());
            best = candidate;
        }
    }

    // 3. Strip head-blocking annotations.
    if !best.knobs.annotate.is_multiple_of(3) {
        let mut candidate = best.clone();
        candidate.knobs.annotate = 0;
        candidate.cfg = candidate.cfg.with_skip_events(false);
        for job in &mut candidate.jobs {
            job.mobility = None;
            job.forced_delays = None;
        }
        if try_candidate(&candidate, &mut evals) {
            summary.steps.push("annotations stripped".into());
            best = candidate;
        }
    }

    // 4. Strip QoS (preemption off, every job back to best-effort).
    if best.knobs.preemption != PreemptionMode::Off || best.jobs.iter().any(|j| !j.qos.is_default())
    {
        let mut candidate = best.clone();
        candidate.knobs.preemption = PreemptionMode::Off;
        candidate.knobs.qos_mix = 0;
        candidate.cfg = candidate.cfg.with_preemption(PreemptionMode::Off);
        for job in &mut candidate.jobs {
            job.qos = QosClass::default();
        }
        if try_candidate(&candidate, &mut evals) {
            summary.steps.push("qos stripped".into());
            best = candidate;
        }
    }

    // 5. Strip runtime faults.
    if !best.cfg.faults.is_off() {
        let mut candidate = best.clone();
        candidate.knobs.fault_rate = 0;
        candidate.cfg = candidate.cfg.with_faults(FaultPlan::off());
        if try_candidate(&candidate, &mut evals) {
            summary.steps.push("faults stripped".into());
            best = candidate;
        }
    }

    // 6. Strip the fleet down to a single dedicated device (tenant
    // stamps included — the engine ignores them, but a minimal
    // reproduction should not advertise knobs it no longer needs).
    if best.knobs.devices > 1 {
        let mut candidate = best.clone();
        candidate.knobs.devices = 1;
        candidate.knobs.tenants = 1;
        for job in &mut candidate.jobs {
            job.tenant = TenantId::DEFAULT;
        }
        if try_candidate(&candidate, &mut evals) {
            summary.steps.push("fleet -> single device".into());
            best = candidate;
        }
    }

    // 7. Fresh lifecycle.
    if best.knobs.lifecycle != Lifecycle::Fresh {
        let mut candidate = best.clone();
        candidate.knobs.lifecycle = Lifecycle::Fresh;
        if try_candidate(&candidate, &mut evals) {
            summary.steps.push("lifecycle -> fresh".into());
            best = candidate;
        }
    }

    // 8. Fewest RUs that still fail.
    for rus in 1..best.knobs.rus {
        let mut candidate = best.clone();
        candidate.knobs.rus = rus;
        candidate.cfg = candidate.cfg.with_rus(rus);
        if try_candidate(&candidate, &mut evals) {
            summary.steps.push(format!("rus -> {rus}"));
            best = candidate;
            break;
        }
    }

    summary.evaluations = evals;
    (best, summary)
}

/// A case report: the outcome plus its stable rendering (with the
/// minimised reproduction appended when minimisation ran). Replaying
/// the same fingerprint yields the byte-identical `rendered` string.
#[derive(Debug)]
pub struct CaseReport {
    /// The (unminimised) case outcome.
    pub outcome: CaseOutcome,
    /// The stable violation report.
    pub rendered: String,
}

/// The public replay API: materialises the fingerprint's case, runs
/// it, and (for failing cases, when `minimize` is set) appends the
/// greedy minimiser's reproduction. Pure function of
/// `(fingerprint, registry configuration, minimize)`.
pub fn case_report(fp: &Fingerprint, registry: &CheckerRegistry, minimize: bool) -> CaseReport {
    let case = build_case(fp);
    let outcome = run_case(fp, &case, registry);
    let mut rendered = outcome.render();
    if minimize && outcome.violation_count() > 0 {
        let (min_case, summary) = minimize_case(fp, &case, registry);
        if summary.steps.is_empty() {
            rendered.push_str("minimized: no shrink kept\n");
        } else {
            rendered.push_str(&format!(
                "minimized ({} evaluations): {}\n",
                summary.evaluations,
                summary.steps.join(", ")
            ));
            let min_outcome = run_case(fp, &min_case, registry);
            rendered.push_str("minimized reproduction:\n");
            rendered.push_str(&format!("knobs: {}\n", min_outcome.knobs.summary()));
            rendered.push_str(&format!("jobs: {}\n", min_case.jobs.len()));
            rendered.push_str(&min_outcome.render_status_only());
        }
    }
    CaseReport { outcome, rendered }
}

impl CaseOutcome {
    fn render_status_only(&self) -> String {
        match &self.status {
            CaseStatus::Checked(report) => report.render(),
            CaseStatus::Stalled => "stalled (subject and reference agree)\n".into(),
            CaseStatus::StallMismatch(msg) => format!("stall mismatch: {msg}\n"),
        }
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed every case derives from.
    pub master_seed: u64,
    /// Number of cases to run.
    pub cases: u64,
    /// Whether failing cases are minimised before reporting.
    pub minimize: bool,
    /// At most this many failing cases carry full reports (all are
    /// counted either way).
    pub max_reported: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            master_seed: 0x0005_EEDC,
            cases: 1000,
            minimize: true,
            max_reported: 10,
        }
    }
}

/// Per-checker campaign totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckerCoverage {
    /// The checker's registered name.
    pub name: &'static str,
    /// Assertions it evaluated across the whole campaign.
    pub fired: u64,
    /// Violations it found across the whole campaign.
    pub violations: u64,
}

/// One failing case, fingerprint plus rendered report.
#[derive(Debug)]
pub struct FailureReport {
    /// The replayable fingerprint.
    pub fingerprint: Fingerprint,
    /// The rendered (minimised) report.
    pub rendered: String,
}

/// The aggregate result of one campaign.
#[derive(Debug)]
pub struct CampaignSummary {
    /// Cases executed.
    pub cases: u64,
    /// Cases where subject and reference stalled identically.
    pub stalled: u64,
    /// Cases with at least one violation.
    pub violating_cases: u64,
    /// Cases per lifecycle, indexed like [`Lifecycle::ALL`].
    pub lifecycle_cases: [u64; 5],
    /// Completed (checked) cases per depth, indexed like [`DEPTHS`].
    pub depth_cases: [u64; 4],
    /// Cases per preemption mode, indexed like [`PreemptionMode::ALL`].
    pub preemption_cases: [u64; 3],
    /// Cases per QoS class mix, indexed by the `qos_mix` selector.
    pub qos_mix_cases: [u64; 3],
    /// Cases per runtime fault-rate class (off / low / high).
    pub fault_rate_cases: [u64; 3],
    /// Cases per fault-class mix selector (all / transient / upset /
    /// ru-hard), counting fault-active cases only.
    pub fault_mix_cases: [u64; 4],
    /// Total runtime injections per fault class across all checked
    /// cases (transient loads / upsets / RU hard faults).
    pub fault_injections: [u64; 3],
    /// Cases per pooled device count (1 / 2 / 4 devices).
    pub device_cases: [u64; 3],
    /// Multi-device cases per placement policy, indexed like
    /// [`PlacementKind::ALL`] (single-device cases never exercise
    /// placement and are not counted).
    pub placement_cases: [u64; 3],
    /// Per-checker fired/violation totals, in registry order.
    pub coverage: Vec<CheckerCoverage>,
    /// Stall-mismatch failures (not attributable to one checker).
    pub stall_mismatches: u64,
    /// Full reports for the first failing cases.
    pub failures: Vec<FailureReport>,
}

impl CampaignSummary {
    /// True when no case produced a violation.
    pub fn is_clean(&self) -> bool {
        self.violating_cases == 0
    }

    /// Names of registered checkers that never fired — silent holes
    /// the coverage gate fails on.
    pub fn unfired(&self) -> Vec<&'static str> {
        self.coverage
            .iter()
            .filter(|c| c.fired == 0)
            .map(|c| c.name)
            .collect()
    }

    /// Names of runtime fault classes that never injected across the
    /// campaign — silent holes the coverage gate fails on (a campaign
    /// whose fault knobs never actually fire is not testing recovery).
    pub fn fault_holes(&self) -> Vec<&'static str> {
        ["transient-load", "upset", "ru-hard"]
            .iter()
            .zip(self.fault_injections)
            .filter(|(_, n)| *n == 0)
            .map(|(name, _)| *name)
            .collect()
    }

    /// Fleet-dimension coverage holes the gate fails on: a placement
    /// policy that never routed a multi-device case, or a pool width
    /// (2 / 4 devices) that never ran at all. A campaign that never
    /// pools devices is not testing the fleet layer.
    pub fn fleet_holes(&self) -> Vec<String> {
        let mut holes = Vec::new();
        for (label, n) in ["devices-2", "devices-4"]
            .iter()
            .zip(&self.device_cases[1..])
        {
            if *n == 0 {
                holes.push((*label).to_string());
            }
        }
        for (kind, n) in PlacementKind::ALL.iter().zip(self.placement_cases) {
            if n == 0 {
                holes.push(format!("placement-{}", kind.label()));
            }
        }
        holes
    }

    /// The per-checker coverage summary as CSV, with one
    /// `fault:<class>` row per runtime fault class (fired = total
    /// injections of that class), one `fleet:devices-<n>` row per pool
    /// width and one `fleet:placement-<policy>` row per placement
    /// policy (fired = cases).
    pub fn coverage_csv(&self) -> String {
        let mut s = String::from("checker,fired,violations\n");
        for c in &self.coverage {
            s.push_str(&format!("{},{},{}\n", c.name, c.fired, c.violations));
        }
        for (name, n) in ["transient-load", "upset", "ru-hard"]
            .iter()
            .zip(self.fault_injections)
        {
            s.push_str(&format!("fault:{name},{n},0\n"));
        }
        for (n, width) in self.device_cases.iter().zip([1usize, 2, 4]) {
            s.push_str(&format!("fleet:devices-{width},{n},0\n"));
        }
        for (kind, n) in PlacementKind::ALL.iter().zip(self.placement_cases) {
            s.push_str(&format!("fleet:placement-{},{n},0\n", kind.label()));
        }
        s
    }
}

/// Runs `config.cases` seeded cases through `registry`, aggregating
/// per-checker coverage and collecting failure reports.
pub fn run_campaign(config: &CampaignConfig, registry: &CheckerRegistry) -> CampaignSummary {
    let mut summary = CampaignSummary {
        cases: 0,
        stalled: 0,
        violating_cases: 0,
        lifecycle_cases: [0; 5],
        depth_cases: [0; 4],
        preemption_cases: [0; 3],
        qos_mix_cases: [0; 3],
        fault_rate_cases: [0; 3],
        fault_mix_cases: [0; 4],
        fault_injections: [0; 3],
        device_cases: [0; 3],
        placement_cases: [0; 3],
        // Coverage rows for the *enabled* checkers only: a deliberately
        // disabled checker must not read as a silent coverage hole.
        coverage: registry
            .rows()
            .into_iter()
            .filter(|(_, _, enabled)| *enabled)
            .map(|(name, _, _)| CheckerCoverage {
                name,
                fired: 0,
                violations: 0,
            })
            .collect(),
        stall_mismatches: 0,
        failures: Vec::new(),
    };
    for case_index in 0..config.cases {
        let fp = Fingerprint {
            master_seed: config.master_seed,
            case_index,
            fault: None,
        };
        let case = build_case(&fp);
        let outcome = run_case(&fp, &case, registry);
        summary.cases += 1;
        let lifecycle_idx = Lifecycle::ALL
            .iter()
            .position(|l| *l == outcome.knobs.lifecycle)
            .expect("derived lifecycle is canonical");
        summary.lifecycle_cases[lifecycle_idx] += 1;
        let mode_idx = PreemptionMode::ALL
            .iter()
            .position(|m| *m == outcome.knobs.preemption)
            .expect("derived preemption mode is canonical");
        summary.preemption_cases[mode_idx] += 1;
        summary.qos_mix_cases[(outcome.knobs.qos_mix % 3) as usize] += 1;
        summary.fault_rate_cases[(outcome.knobs.fault_rate % 3) as usize] += 1;
        if !outcome.knobs.fault_rate.is_multiple_of(3) {
            summary.fault_mix_cases[(outcome.knobs.fault_mix % 4) as usize] += 1;
        }
        summary.fault_injections[0] += outcome.faults.transients;
        summary.fault_injections[1] += outcome.faults.upsets;
        summary.fault_injections[2] += outcome.faults.ru_hard;
        summary.device_cases[match outcome.knobs.devices {
            1 => 0,
            2 => 1,
            _ => 2,
        }] += 1;
        if outcome.knobs.devices > 1 {
            let placement_idx = PlacementKind::ALL
                .iter()
                .position(|k| *k == outcome.knobs.placement)
                .expect("derived placement is canonical");
            summary.placement_cases[placement_idx] += 1;
        }
        match &outcome.status {
            CaseStatus::Checked(report) => {
                if let Some(depth_idx) = DEPTHS.iter().position(|&d| d == outcome.knobs.depth) {
                    summary.depth_cases[depth_idx] += 1;
                }
                for o in &report.outcomes {
                    if let Some(c) = summary.coverage.iter_mut().find(|c| c.name == o.name) {
                        c.fired += o.fired;
                        c.violations += o.violations.len() as u64;
                    }
                }
            }
            CaseStatus::Stalled => summary.stalled += 1,
            CaseStatus::StallMismatch(_) => summary.stall_mismatches += 1,
        }
        if outcome.violation_count() > 0 {
            summary.violating_cases += 1;
            if summary.failures.len() < config.max_reported {
                let report = case_report(&fp, registry, config.minimize);
                summary.failures.push(FailureReport {
                    fingerprint: fp,
                    rendered: report.rendered,
                });
            }
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_display_parse_round_trip() {
        for fp in [
            Fingerprint {
                master_seed: 0xDEAD_BEEF,
                case_index: 42,
                fault: None,
            },
            Fingerprint {
                master_seed: u64::MAX,
                case_index: 0,
                fault: Some(Fault::DropExecEnd),
            },
            Fingerprint {
                master_seed: 7,
                case_index: 999,
                fault: Some(Fault::BumpReuses),
            },
        ] {
            let s = fp.to_string();
            assert_eq!(s.parse::<Fingerprint>().unwrap(), fp, "{s}");
        }
        assert!("vopr-xyz".parse::<Fingerprint>().is_err());
        assert!("vopr-10-3-fnope".parse::<Fingerprint>().is_err());
        assert!("nope-10-3".parse::<Fingerprint>().is_err());
    }

    #[test]
    fn knob_derivation_is_deterministic_and_covering() {
        let mut lifecycles = [0u64; 5];
        let mut depths = [0u64; 4];
        let mut modes = [0u64; 3];
        let mut mixes = [0u64; 3];
        let mut fault_rates = [0u64; 3];
        let mut fault_mixes = [0u64; 4];
        let mut devices = [0u64; 3];
        let mut placements = [0u64; 3];
        for i in 0..64 {
            let a = CaseKnobs::derive(99, i);
            let b = CaseKnobs::derive(99, i);
            assert_eq!(a, b);
            devices[match a.devices {
                1 => 0,
                2 => 1,
                _ => 2,
            }] += 1;
            if a.devices > 1 {
                placements[PlacementKind::ALL
                    .iter()
                    .position(|k| *k == a.placement)
                    .unwrap()] += 1;
            }
            assert!((1..=3).contains(&a.tenants));
            lifecycles[Lifecycle::ALL
                .iter()
                .position(|l| *l == a.lifecycle)
                .unwrap()] += 1;
            depths[DEPTHS.iter().position(|&d| d == a.depth).unwrap()] += 1;
            modes[PreemptionMode::ALL
                .iter()
                .position(|m| *m == a.preemption)
                .unwrap()] += 1;
            mixes[(a.qos_mix % 3) as usize] += 1;
            fault_rates[(a.fault_rate % 3) as usize] += 1;
            if !a.fault_rate.is_multiple_of(3) {
                fault_mixes[(a.fault_mix % 4) as usize] += 1;
            }
        }
        assert!(lifecycles.iter().all(|&c| c > 0), "{lifecycles:?}");
        assert!(depths.iter().all(|&c| c > 0), "{depths:?}");
        assert!(modes.iter().all(|&c| c > 0), "{modes:?}");
        assert!(mixes.iter().all(|&c| c > 0), "{mixes:?}");
        assert!(fault_rates.iter().all(|&c| c > 0), "{fault_rates:?}");
        assert!(fault_mixes.iter().all(|&c| c > 0), "{fault_mixes:?}");
        assert!(devices.iter().all(|&c| c > 0), "{devices:?}");
        assert!(placements.iter().all(|&c| c > 0), "{placements:?}");
    }

    #[test]
    fn fault_plans_decode_and_mask_by_class() {
        assert!(fault_plan(0, 2, 7).is_off());
        let all = fault_plan(1, 0, 7);
        assert!(all.load_fault_pm > 0 && all.upset_pm > 0 && all.ru_fault_pm > 0);
        let transient = fault_plan(2, 1, 7);
        assert!(transient.load_fault_pm > 0);
        assert_eq!((transient.upset_pm, transient.ru_fault_pm), (0, 0));
        // Give-up quarantines need a finite repair even in the
        // transient-only mix, or one-RU cases would die permanently.
        assert!(transient.repair_latency.is_some());
        let upset = fault_plan(1, 2, 7);
        assert!(upset.upset_pm > 0);
        assert_eq!((upset.load_fault_pm, upset.ru_fault_pm), (0, 0));
        let hard = fault_plan(1, 3, 7);
        assert!(hard.ru_fault_pm > 0 && hard.repair_latency.is_some());
        assert_eq!((hard.load_fault_pm, hard.upset_pm), (0, 0));
        // The plan is a pure function of its inputs (replays depend on
        // this).
        assert_eq!(fault_plan(1, 0, 7), fault_plan(1, 0, 7));
        assert_ne!(fault_plan(1, 0, 7).seed, fault_plan(1, 0, 8).seed);
    }

    #[test]
    fn fault_active_case_validates_clean_and_counts_injections() {
        // Scan forward for a case whose plan keeps all three classes at
        // the hostile rate, and require the run both to stay clean and
        // to actually inject (the campaign coverage gate relies on
        // these tallies).
        let registry = CheckerRegistry::standard();
        let mut injected = CaseFaultCounts::default();
        let mut found_active = false;
        for i in 0..96 {
            let fp = Fingerprint {
                master_seed: 0x0005_EEDC,
                case_index: i,
                fault: None,
            };
            let case = build_case(&fp);
            if case.knobs.fault_rate.is_multiple_of(3) {
                continue;
            }
            found_active = true;
            let outcome = run_case(&fp, &case, &registry);
            assert_eq!(
                outcome.violation_count(),
                0,
                "fault-active case {fp} violated:\n{}",
                outcome.render()
            );
            injected.transients += outcome.faults.transients;
            injected.upsets += outcome.faults.upsets;
            injected.ru_hard += outcome.faults.ru_hard;
            if injected.transients > 0 && injected.upsets > 0 && injected.ru_hard > 0 {
                break;
            }
        }
        assert!(found_active, "96 cases cover a fault-active knob draw");
        assert!(
            injected.transients > 0 && injected.upsets > 0 && injected.ru_hard > 0,
            "every fault class injects within 96 cases, got {injected:?}"
        );
    }

    #[test]
    fn qos_cases_materialise_classes_and_modes() {
        // Scan forward for a case whose knobs select a non-uniform mix
        // under a non-Off mode, and check the decoration landed.
        let found = (0..64).find_map(|i| {
            let fp = Fingerprint {
                master_seed: 0x0005_EEDC,
                case_index: i,
                fault: None,
            };
            let case = build_case(&fp);
            (!case.knobs.qos_mix.is_multiple_of(3) && case.knobs.preemption != PreemptionMode::Off)
                .then_some(case)
        });
        let case = found.expect("64 cases cover a qos-active combination");
        assert_eq!(case.cfg.preemption, case.knobs.preemption);
        let spec = qos_mix_spec(case.knobs.qos_mix);
        for (i, job) in case.jobs.iter().enumerate() {
            if (i + 1) % spec.stride == 0 {
                assert_eq!(job.qos.priority, spec.priority);
                assert!(job.qos.deadline.is_some());
            } else {
                assert!(job.qos.is_default());
            }
        }
    }

    #[test]
    fn clean_case_replays_clean() {
        let registry = CheckerRegistry::standard();
        let fp = Fingerprint {
            master_seed: 0x0005_EEDC,
            case_index: 0,
            fault: None,
        };
        let a = case_report(&fp, &registry, true);
        let b = case_report(&fp, &registry, true);
        assert_eq!(a.rendered, b.rendered);
    }

    /// The first multi-device, multi-tenant case within `limit` cases
    /// of the default master seed (skipping stalled draws when a
    /// checked one is required).
    fn find_fleet_case(limit: u64, registry: &CheckerRegistry) -> (Fingerprint, Case) {
        for i in 0..limit {
            let fp = Fingerprint {
                master_seed: 0x0005_EEDC,
                case_index: i,
                fault: None,
            };
            let case = build_case(&fp);
            if case.knobs.devices > 1 && case.knobs.tenants > 1 {
                let outcome = run_case(&fp, &case, registry);
                if matches!(outcome.status, CaseStatus::Checked(_)) {
                    return (fp, case);
                }
            }
        }
        panic!("{limit} cases cover a checked multi-device, multi-tenant draw");
    }

    #[test]
    fn fleet_case_validates_clean_and_fires_fleet_checkers() {
        let registry = CheckerRegistry::standard();
        let (fp, case) = find_fleet_case(64, &registry);
        let outcome = run_case(&fp, &case, &registry);
        assert_eq!(
            outcome.violation_count(),
            0,
            "fleet case {fp} violated:\n{}",
            outcome.render()
        );
        let CaseStatus::Checked(report) = &outcome.status else {
            panic!("find_fleet_case returned a non-checked case");
        };
        for name in [
            "tenant-isolation",
            "placement-residency",
            "fleet-accounting",
        ] {
            let checker = report.outcome(name).expect("fleet checker is registered");
            assert!(checker.fired > 0, "{name} never fired on a fleet case");
        }
        // Every pooled device also went through the single-device
        // checkers against its partitioned reference.
        let identity = report.outcome("pooled-identity").expect("registered");
        assert!(identity.fired > 0);
    }

    #[test]
    fn corrupted_fleet_case_trips_checkers_and_minimises_to_one_device() {
        let registry = CheckerRegistry::standard();
        let (clean_fp, case) = find_fleet_case(64, &registry);
        let fp = Fingerprint {
            fault: Some(Fault::BumpReuses),
            ..clean_fp
        };
        let outcome = run_case(&fp, &case, &registry);
        assert!(
            outcome.violation_count() > 0,
            "BumpReuses on device 0 must trip a checker"
        );
        // The corruption survives the fleet-strip (it applies to the
        // single remaining device just the same), so the minimiser must
        // keep that step.
        let (min_case, summary) = minimize_case(&fp, &case, &registry);
        assert_eq!(min_case.knobs.devices, 1, "{:?}", summary.steps);
        assert!(
            summary
                .steps
                .iter()
                .any(|s| s.contains("fleet -> single device")),
            "{:?}",
            summary.steps
        );
    }
}
