//! Seeded arrival processes for streaming workloads.
//!
//! The paper evaluates replacement policies on a fixed batch of
//! applications; the streaming [`Engine`](rtr_manager::Engine) accepts
//! jobs *as they arrive*. An [`ArrivalProcess`] turns a job count and a
//! seed into a deterministic, non-decreasing vector of arrival instants
//! that rides on [`JobSpec::arrival`](rtr_manager::JobSpec):
//!
//! * [`ArrivalProcess::Batch`] — everything at t = 0 (the paper's
//!   setting; golden numbers reproduce bit-exactly through it).
//! * [`ArrivalProcess::Poisson`] — memoryless open-loop traffic, the
//!   standard model for independent tenants.
//! * [`ArrivalProcess::Periodic`] — a fixed-rate feed (sensor
//!   pipelines, frame-locked media).
//! * [`ArrivalProcess::Bursty`] — batched tenants: groups of jobs land
//!   together, bursts separated by exponential gaps.
//!
//! All times are integer microseconds on the simulation clock, so the
//! generated scenarios serialise exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtr_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A degenerate arrival-process parameterisation.
///
/// These values are constructible through serde (scenario JSON) and
/// plain struct literals; validating at scenario load / sweep entry
/// turns what used to be an `assert!` deep inside a worker thread —
/// or a silent collapse to the batch setting — into a typed,
/// main-thread error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalError {
    /// `Bursty { size: 0 }`: a burst must contain at least one job.
    ZeroBurstSize,
    /// A zero mean gap (`Poisson` / `Bursty`): every draw would be 0,
    /// silently collapsing the process to `Batch`.
    ZeroMeanGap {
        /// Which variant carried the zero mean.
        variant: &'static str,
    },
    /// `Periodic { period_us: 0 }`: the fixed grid degenerates to a
    /// single instant, silently collapsing to `Batch`.
    ZeroPeriod,
}

impl fmt::Display for ArrivalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrivalError::ZeroBurstSize => {
                write!(f, "bursty arrivals need at least one job per burst")
            }
            ArrivalError::ZeroMeanGap { variant } => write!(
                f,
                "{variant} arrivals with a zero mean gap degenerate to the \
                 batch setting; use ArrivalProcess::Batch explicitly"
            ),
            ArrivalError::ZeroPeriod => write!(
                f,
                "periodic arrivals with a zero period degenerate to the \
                 batch setting; use ArrivalProcess::Batch explicitly"
            ),
        }
    }
}

impl std::error::Error for ArrivalError {}

/// How job arrival instants are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// All jobs arrive at t = 0 — the paper's batch setting.
    Batch,
    /// Poisson process: i.i.d. exponential inter-arrival gaps with the
    /// given mean (µs). Mean offered load is
    /// `mean service time / mean_gap_us`.
    Poisson {
        /// Mean inter-arrival gap in microseconds.
        mean_gap_us: u64,
    },
    /// Fixed-rate arrivals: job *i* arrives at `i * period_us`.
    Periodic {
        /// Gap between consecutive arrivals in microseconds.
        period_us: u64,
    },
    /// Bursts of `size` jobs arriving at the same instant, bursts
    /// separated by exponential gaps with mean `mean_gap_us`.
    Bursty {
        /// Jobs per burst (≥ 1).
        size: usize,
        /// Mean gap between bursts in microseconds.
        mean_gap_us: u64,
    },
}

/// One exponential draw with the given mean, rounded to whole µs.
fn exp_gap_us(rng: &mut StdRng, mean_us: u64) -> u64 {
    // 1 − u ∈ (0, 1], so the log is finite and the gap non-negative.
    let u = rng.next_unit_f64();
    (-(mean_us as f64) * (1.0 - u).ln()).round() as u64
}

impl ArrivalProcess {
    /// Checks the parameterisation for degenerate values. Call at
    /// scenario load or sweep entry so misconfigurations surface as
    /// typed errors on the driving thread, not as panics inside a
    /// parallel worker mid-sweep.
    pub fn validate(&self) -> Result<(), ArrivalError> {
        match *self {
            ArrivalProcess::Batch => Ok(()),
            ArrivalProcess::Poisson { mean_gap_us } => {
                if mean_gap_us == 0 {
                    Err(ArrivalError::ZeroMeanGap { variant: "poisson" })
                } else {
                    Ok(())
                }
            }
            ArrivalProcess::Periodic { period_us } => {
                if period_us == 0 {
                    Err(ArrivalError::ZeroPeriod)
                } else {
                    Ok(())
                }
            }
            ArrivalProcess::Bursty { size, mean_gap_us } => {
                if size == 0 {
                    Err(ArrivalError::ZeroBurstSize)
                } else if mean_gap_us == 0 {
                    Err(ArrivalError::ZeroMeanGap { variant: "bursty" })
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Draws `count` non-decreasing arrival instants, fully determined
    /// by `seed`, rejecting degenerate parameterisations with a typed
    /// error. `count == 0` yields an empty vector for every variant.
    pub fn try_generate(&self, count: usize, seed: u64) -> Result<Vec<SimTime>, ArrivalError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        Ok(match *self {
            ArrivalProcess::Batch => vec![SimTime::ZERO; count],
            ArrivalProcess::Poisson { mean_gap_us } => {
                let mut t = 0u64;
                (0..count)
                    .map(|_| {
                        t += exp_gap_us(&mut rng, mean_gap_us);
                        SimTime::from_us(t)
                    })
                    .collect()
            }
            ArrivalProcess::Periodic { period_us } => (0..count as u64)
                .map(|i| SimTime::from_us(i * period_us))
                .collect(),
            ArrivalProcess::Bursty { size, mean_gap_us } => {
                let mut t = 0u64;
                (0..count)
                    .map(|i| {
                        if i % size == 0 {
                            t += exp_gap_us(&mut rng, mean_gap_us);
                        }
                        SimTime::from_us(t)
                    })
                    .collect()
            }
        })
    }

    /// [`Self::try_generate`], panicking (with the typed error's
    /// message) on a degenerate parameterisation — for call sites that
    /// already validated, or that prefer to crash at the call site
    /// instead of threading a `Result`.
    pub fn generate(&self, count: usize, seed: u64) -> Vec<SimTime> {
        self.try_generate(count, seed)
            .unwrap_or_else(|e| panic!("invalid arrival process {self:?}: {e}"))
    }

    /// Short display label for tables.
    pub fn label(&self) -> String {
        match *self {
            ArrivalProcess::Batch => "batch".into(),
            ArrivalProcess::Poisson { mean_gap_us } => {
                format!("poisson({}ms)", mean_gap_us as f64 / 1_000.0)
            }
            ArrivalProcess::Periodic { period_us } => {
                format!("periodic({}ms)", period_us as f64 / 1_000.0)
            }
            ArrivalProcess::Bursty { size, mean_gap_us } => {
                format!("bursty({size}x{}ms)", mean_gap_us as f64 / 1_000.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_sorted(ts: &[SimTime]) {
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "non-monotonic: {ts:?}");
    }

    #[test]
    fn batch_is_all_zero() {
        let ts = ArrivalProcess::Batch.generate(10, 1);
        assert_eq!(ts, vec![SimTime::ZERO; 10]);
    }

    #[test]
    fn poisson_is_deterministic_and_monotone() {
        let p = ArrivalProcess::Poisson { mean_gap_us: 5_000 };
        let a = p.generate(200, 42);
        let b = p.generate(200, 42);
        assert_eq!(a, b);
        assert_sorted(&a);
        assert_ne!(a, p.generate(200, 43), "seeds must matter");
    }

    #[test]
    fn poisson_mean_gap_is_close_to_nominal() {
        let mean = 10_000u64;
        let n = 4_000;
        let ts = ArrivalProcess::Poisson { mean_gap_us: mean }.generate(n, 7);
        let total = ts.last().unwrap().as_us() as f64;
        let observed = total / n as f64;
        let err = (observed - mean as f64).abs() / mean as f64;
        assert!(err < 0.1, "mean gap {observed} vs nominal {mean}");
    }

    #[test]
    fn periodic_is_a_fixed_grid() {
        let ts = ArrivalProcess::Periodic { period_us: 2_500 }.generate(4, 9);
        let expect: Vec<SimTime> = (0..4).map(|i| SimTime::from_us(i * 2_500)).collect();
        assert_eq!(ts, expect);
    }

    #[test]
    fn bursty_groups_share_instants() {
        let p = ArrivalProcess::Bursty {
            size: 4,
            mean_gap_us: 50_000,
        };
        let ts = p.generate(12, 3);
        assert_sorted(&ts);
        for burst in ts.chunks(4) {
            assert!(burst.iter().all(|&t| t == burst[0]), "burst split: {ts:?}");
        }
        // Consecutive bursts are (almost surely) separated.
        assert!(ts[0] < ts[4] && ts[4] < ts[8]);
    }

    #[test]
    fn labels_are_compact() {
        assert_eq!(ArrivalProcess::Batch.label(), "batch");
        assert_eq!(
            ArrivalProcess::Poisson { mean_gap_us: 2_500 }.label(),
            "poisson(2.5ms)"
        );
        assert_eq!(
            ArrivalProcess::Bursty {
                size: 8,
                mean_gap_us: 100_000
            }
            .label(),
            "bursty(8x100ms)"
        );
    }

    #[test]
    fn serde_round_trip() {
        for p in [
            ArrivalProcess::Batch,
            ArrivalProcess::Poisson { mean_gap_us: 1 },
            ArrivalProcess::Periodic { period_us: 9 },
            ArrivalProcess::Bursty {
                size: 3,
                mean_gap_us: 77,
            },
        ] {
            let json = serde_json::to_string(&p).unwrap();
            assert_eq!(serde_json::from_str::<ArrivalProcess>(&json).unwrap(), p);
        }
    }

    #[test]
    #[should_panic(expected = "at least one job per burst")]
    fn zero_burst_size_panics_with_a_typed_message() {
        ArrivalProcess::Bursty {
            size: 0,
            mean_gap_us: 1,
        }
        .generate(1, 0);
    }

    #[test]
    fn degenerate_parameters_are_typed_errors() {
        assert_eq!(
            ArrivalProcess::Bursty {
                size: 0,
                mean_gap_us: 5,
            }
            .validate(),
            Err(ArrivalError::ZeroBurstSize)
        );
        assert_eq!(
            ArrivalProcess::Poisson { mean_gap_us: 0 }.validate(),
            Err(ArrivalError::ZeroMeanGap { variant: "poisson" })
        );
        assert_eq!(
            ArrivalProcess::Bursty {
                size: 2,
                mean_gap_us: 0,
            }
            .validate(),
            Err(ArrivalError::ZeroMeanGap { variant: "bursty" })
        );
        assert_eq!(
            ArrivalProcess::Periodic { period_us: 0 }.validate(),
            Err(ArrivalError::ZeroPeriod)
        );
        // try_generate refuses instead of panicking or collapsing.
        assert!(ArrivalProcess::Poisson { mean_gap_us: 0 }
            .try_generate(10, 1)
            .is_err());
        // Valid processes pass through untouched.
        for p in [
            ArrivalProcess::Batch,
            ArrivalProcess::Poisson { mean_gap_us: 1 },
            ArrivalProcess::Periodic { period_us: 1 },
            ArrivalProcess::Bursty {
                size: 1,
                mean_gap_us: 1,
            },
        ] {
            assert_eq!(p.validate(), Ok(()));
            assert_eq!(p.try_generate(3, 9).unwrap(), p.generate(3, 9));
        }
    }
}
