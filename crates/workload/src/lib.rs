//! Experiment substrate: workload generation, policy grids, parallel
//! parameter sweeps and result tables for the paper's evaluation
//! (Fig. 9a/b/c, Tables I and II) plus the extended ablations and the
//! streaming-arrival experiments.
//!
//! * [`sequence`] — seeded application-sequence models (the paper's
//!   "sequence of 500 applications randomly selected from our set of
//!   benchmarks", plus weighted/bursty/round-robin variants).
//! * [`arrivals`] — seeded arrival processes (Poisson / periodic /
//!   bursty) stamping per-job arrival instants for the streaming
//!   engine; `ArrivalProcess::Batch` reproduces the paper's setting.
//! * [`policies`] — a serialisable policy selector that couples each
//!   policy with the manager configuration it needs (lookahead window,
//!   Skip Events flag).
//! * [`qos`] — declarative QoS class assignment (priority lanes and
//!   ideal-makespan-derived deadlines) for scenarios and experiments;
//!   the default spec reproduces the pre-QoS uniform workload.
//! * [`runner`] — runs one (policy × system) cell, preparing mobility
//!   annotations the hybrid way; includes a timing wrapper that
//!   attributes wall-clock cost to the replacement module.
//! * [`parallel`] — a crossbeam-based deterministic parallel map used
//!   for parameter sweeps.
//! * [`table`] — Markdown/CSV result tables.
//! * [`experiments`] — the per-figure/table drivers.
//! * [`vopr`] — the deterministic fuzz campaign behind the `vopr`
//!   binary: seeded case derivation, four engine lifecycles, replayable
//!   failure fingerprints and a greedy scenario minimiser.

pub mod arrivals;
pub mod experiments;
pub mod parallel;
pub mod policies;
pub mod qos;
pub mod runner;
pub mod scenario;
pub mod sequence;
pub mod table;
pub mod vopr;

pub use arrivals::{ArrivalError, ArrivalProcess};
pub use policies::PolicyKind;
pub use qos::QosSpec;
pub use runner::{run_cell, run_cell_with_arrivals, CellConfig};
pub use scenario::Scenario;
pub use sequence::SequenceModel;
pub use table::Table;
