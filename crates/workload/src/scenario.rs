//! Declarative experiment scenarios.
//!
//! A [`Scenario`] is a serialisable description of a complete
//! experiment: workload shape, system parameters and the policy grid.
//! Scenarios round-trip through JSON so experiment configurations can
//! be versioned next to their results.

use crate::policies::PolicyKind;
use crate::runner::{run_cell, CellConfig};
use crate::sequence::SequenceModel;
use crate::table::{fmt_f, Table};
use rtr_hw::DeviceSpec;
use rtr_taskgraph::serialize::GraphSpec;
use rtr_taskgraph::TaskGraph;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A complete, serialisable experiment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (used in output tables).
    pub name: String,
    /// Graph templates (validated on load).
    pub templates: Vec<GraphSpec>,
    /// How the application sequence is drawn.
    pub model: SequenceModel,
    /// Number of applications.
    pub apps: usize,
    /// RNG seed for the sequence.
    pub seed: u64,
    /// RU count.
    pub rus: usize,
    /// Device parameters.
    pub device: DeviceSpec,
    /// Policies to compare.
    pub policies: Vec<PolicyKind>,
}

impl Scenario {
    /// The paper's §VI experiment as a scenario.
    pub fn paper_fig9(rus: usize, apps: usize, seed: u64) -> Self {
        Scenario {
            name: format!("fig9-{rus}rus"),
            templates: rtr_taskgraph::benchmarks::multimedia_suite()
                .iter()
                .map(GraphSpec::from)
                .collect(),
            model: SequenceModel::UniformRandom,
            apps,
            seed,
            rus,
            device: DeviceSpec::paper_default(),
            policies: PolicyKind::fig9a_set(),
        }
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serialisation is total")
    }

    /// Parses and re-validates a scenario from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let scenario: Scenario = serde_json::from_str(json).map_err(|e| e.to_string())?;
        // Validate each template through the builder path.
        for spec in &scenario.templates {
            TaskGraph::try_from(spec.clone()).map_err(|e| e.to_string())?;
        }
        Ok(scenario)
    }

    /// Materialised template set.
    pub fn template_graphs(&self) -> Vec<Arc<TaskGraph>> {
        self.templates
            .iter()
            .map(|s| Arc::new(TaskGraph::try_from(s.clone()).expect("validated on load")))
            .collect()
    }

    /// Runs every policy of the scenario and tabulates the outcome.
    pub fn run(&self) -> Table {
        let templates = self.template_graphs();
        let sequence = self.model.generate(&templates, self.apps, self.seed);
        let mut t = Table::new(
            format!(
                "Scenario {} ({} apps, {} RUs)",
                self.name, self.apps, self.rus
            ),
            &[
                "Policy",
                "Reuse (%)",
                "Overhead (ms)",
                "Remaining (%)",
                "Loads",
            ],
        );
        for &policy in &self.policies {
            let mut cell = CellConfig::new(policy, self.rus);
            cell.device = self.device.clone();
            let out = run_cell(&sequence, &cell).expect("scenario cell simulates");
            t.push_row(vec![
                policy.label(),
                fmt_f(out.stats.reuse_rate_pct(), 2),
                fmt_f(out.stats.total_overhead().as_ms_f64(), 1),
                fmt_f(out.stats.remaining_overhead_pct(), 2),
                out.stats.loads.to_string(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let s = Scenario::paper_fig9(4, 50, 7);
        let json = s.to_json();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_corrupt_templates() {
        let mut s = Scenario::paper_fig9(4, 10, 1);
        // Introduce a cycle.
        s.templates[0].edges.push((1, 0));
        s.templates[0].edges.push((0, 1));
        let json = s.to_json();
        assert!(Scenario::from_json(&json).is_err());
    }

    #[test]
    fn runs_to_a_table() {
        let s = Scenario::paper_fig9(5, 30, 3);
        let t = s.run();
        assert_eq!(t.len(), s.policies.len());
        assert!(t.to_markdown().contains("LFD"));
    }
}
