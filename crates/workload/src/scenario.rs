//! Declarative experiment scenarios.
//!
//! A [`Scenario`] is a serialisable description of a complete
//! experiment: workload shape, system parameters and the policy grid.
//! Scenarios round-trip through JSON so experiment configurations can
//! be versioned next to their results.

use crate::arrivals::ArrivalProcess;
use crate::parallel::parallel_map_with;
use crate::policies::PolicyKind;
use crate::qos::QosSpec;
use crate::runner::{pooled_workers, CellConfig};
use crate::sequence::SequenceModel;
use crate::table::{fmt_f, Table};
use rtr_core::TemplateRegistry;
use rtr_hw::DeviceSpec;
use rtr_manager::fleet::simulate_fleet;
use rtr_manager::{FaultPlan, FleetSpec, JobSpec, PreemptionMode, TenantId};
use rtr_taskgraph::serialize::GraphSpec;
use rtr_taskgraph::TaskGraph;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Salt decorrelating the arrival-time RNG stream from the
/// application-sequence stream drawn with the same scenario seed.
const ARRIVAL_SEED_SALT: u64 = 0xA881_17A1;

/// A complete, serialisable experiment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (used in output tables).
    pub name: String,
    /// Graph templates (validated on load).
    pub templates: Vec<GraphSpec>,
    /// How the application sequence is drawn.
    pub model: SequenceModel,
    /// How job arrival instants are drawn ([`ArrivalProcess::Batch`]
    /// reproduces the paper's fixed-sequence setting).
    pub arrivals: ArrivalProcess,
    /// Number of applications.
    pub apps: usize,
    /// RNG seed for the sequence (the arrival stream derives from it).
    pub seed: u64,
    /// RU count.
    pub rus: usize,
    /// Device parameters.
    pub device: DeviceSpec,
    /// Policies to compare.
    pub policies: Vec<PolicyKind>,
    /// Preemption policy for every cell (`Off`, the pre-QoS engine,
    /// when absent from the file).
    pub preemption: PreemptionMode,
    /// QoS class assignment over the generated sequence (uniform
    /// best-effort when absent from the file).
    pub qos: QosSpec,
    /// Runtime fault plan injected into every cell (off — the exact
    /// pre-fault engine — when absent from the file).
    pub faults: FaultPlan,
    /// Optional fleet section: pooled devices behind the placement
    /// front-end, with jobs spread across `tenants` round-robin.
    /// Absent (`None`) runs the classic single-device path,
    /// byte-identical to pre-fleet files.
    pub fleet: Option<FleetSpec>,
}

impl Scenario {
    /// The paper's §VI experiment as a scenario.
    pub fn paper_fig9(rus: usize, apps: usize, seed: u64) -> Self {
        Scenario {
            name: format!("fig9-{rus}rus"),
            templates: rtr_taskgraph::benchmarks::multimedia_suite()
                .iter()
                .map(GraphSpec::from)
                .collect(),
            model: SequenceModel::UniformRandom,
            arrivals: ArrivalProcess::Batch,
            apps,
            seed,
            rus,
            device: DeviceSpec::paper_default(),
            policies: PolicyKind::fig9a_set(),
            preemption: PreemptionMode::Off,
            qos: QosSpec::UNIFORM,
            faults: FaultPlan::off(),
            fleet: None,
        }
    }

    /// A streaming variant of the paper's workload: same templates and
    /// sequence model, jobs arriving through `arrivals`.
    pub fn streaming(rus: usize, apps: usize, seed: u64, arrivals: ArrivalProcess) -> Self {
        Scenario {
            name: format!("stream-{}-{rus}rus", arrivals.label()),
            arrivals,
            ..Scenario::paper_fig9(rus, apps, seed)
        }
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serialisation is total")
    }

    /// Parses and re-validates a scenario from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let scenario: Scenario = serde_json::from_str(json).map_err(|e| e.to_string())?;
        // Validate each template through the builder path.
        for spec in &scenario.templates {
            TaskGraph::try_from(spec.clone()).map_err(|e| e.to_string())?;
        }
        // Reject degenerate arrival processes here, on the loading
        // thread, instead of panicking inside a sweep worker later.
        scenario.arrivals.validate().map_err(|e| e.to_string())?;
        Ok(scenario)
    }

    /// Materialised template set.
    pub fn template_graphs(&self) -> Vec<Arc<TaskGraph>> {
        self.templates
            .iter()
            .map(|s| Arc::new(TaskGraph::try_from(s.clone()).expect("validated on load")))
            .collect()
    }

    /// Runs every policy of the scenario sequentially and tabulates the
    /// outcome. Equivalent to [`Scenario::run_with_workers`]`(1)`.
    pub fn run(&self) -> Table {
        self.run_with_workers(1)
    }

    /// Runs the scenario's policy cells on up to `workers` threads.
    /// Each cell is internally deterministic and results are collected
    /// in policy order, so the table is identical to a sequential run.
    /// Scenarios carrying a `fleet` section route through the pooled
    /// devices instead; everything else takes the exact pre-fleet
    /// single-device path.
    pub fn run_with_workers(&self, workers: usize) -> Table {
        if let Some(spec) = &self.fleet {
            return self.run_fleet_with_workers(spec, workers);
        }
        let templates = self.template_graphs();
        let sequence = self.model.generate(&templates, self.apps, self.seed);
        let arrivals = self
            .arrivals
            .generate(self.apps, self.seed ^ ARRIVAL_SEED_SALT);
        let mut t = Table::new(
            format!(
                "Scenario {} ({} apps, {} arrivals, {} RUs)",
                self.name,
                self.apps,
                self.arrivals.label(),
                self.rus
            ),
            &[
                "Policy",
                "Reuse (%)",
                "Overhead (ms)",
                "Remaining (%)",
                "Mean sojourn (ms)",
                "Loads",
            ],
        );
        let registry = Arc::new(TemplateRegistry::new());
        let qos = self.qos.assign(&sequence, &arrivals, self.rus);
        let rows = parallel_map_with(
            self.policies.clone(),
            workers,
            pooled_workers(&registry),
            |runner, policy| {
                let mut cell = CellConfig::new(policy, self.rus);
                cell.device = self.device.clone();
                cell.preemption = self.preemption;
                cell.faults = self.faults;
                let out = runner
                    .run_with_arrivals_qos(&sequence, Some(&arrivals), qos.as_deref(), &cell)
                    .expect("scenario cell simulates");
                vec![
                    policy.label(),
                    fmt_f(out.stats.reuse_rate_pct(), 2),
                    fmt_f(out.stats.total_overhead().as_ms_f64(), 1),
                    fmt_f(out.stats.remaining_overhead_pct(), 2),
                    fmt_f(out.stats.mean_sojourn_ms(), 1),
                    out.stats.loads.to_string(),
                ]
            },
        );
        for row in rows {
            t.push_row(row);
        }
        t
    }

    /// The fleet path of [`Scenario::run_with_workers`]: the same
    /// generated workload, tenant-stamped round-robin over
    /// `spec.tenants`, submitted to the pooled devices with one fresh
    /// policy instance per device.
    fn run_fleet_with_workers(&self, spec: &FleetSpec, workers: usize) -> Table {
        let templates = self.template_graphs();
        let sequence = self.model.generate(&templates, self.apps, self.seed);
        let arrivals = self
            .arrivals
            .generate(self.apps, self.seed ^ ARRIVAL_SEED_SALT);
        let qos = self.qos.assign(&sequence, &arrivals, self.rus);
        let jobs: Vec<JobSpec> = sequence
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let mut job = JobSpec::new(Arc::clone(g))
                    .with_arrival(arrivals[i])
                    .with_tenant(TenantId((i % spec.tenants) as u32));
                if let Some(classes) = &qos {
                    job = job.with_qos(classes[i]);
                }
                job
            })
            .collect();
        let mut t = Table::new(
            format!(
                "Scenario {} ({} apps, {} arrivals, {} devices, {} placement, {} tenants)",
                self.name,
                self.apps,
                self.arrivals.label(),
                spec.devices.len(),
                spec.placement.label(),
                spec.tenants
            ),
            &[
                "Policy",
                "Reuse (%)",
                "Admitted",
                "Rejected",
                "Fairness",
                "Makespan (ms)",
            ],
        );
        let registry = Arc::new(TemplateRegistry::new());
        let rows = parallel_map_with(
            self.policies.clone(),
            workers,
            pooled_workers(&registry),
            |_runner, policy| {
                let cell = CellConfig {
                    device: self.device.clone(),
                    preemption: self.preemption,
                    faults: self.faults,
                    ..CellConfig::new(policy, self.rus)
                };
                let fleet_cfg = spec.to_config(&cell.manager_config());
                let outcome = simulate_fleet(&fleet_cfg, &jobs, || policy.build())
                    .expect("fleet scenario cell simulates");
                vec![
                    policy.label(),
                    fmt_f(outcome.stats.cross_device_reuse_rate_pct(), 2),
                    outcome.stats.admitted.to_string(),
                    outcome.stats.rejected.to_string(),
                    fmt_f(outcome.stats.fairness_index(), 3),
                    fmt_f(outcome.stats.makespan.as_ms_f64(), 1),
                ]
            },
        );
        for row in rows {
            t.push_row(row);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let s = Scenario::paper_fig9(4, 50, 7);
        let json = s.to_json();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn qos_scenario_round_trips() {
        let mut s = Scenario::paper_fig9(4, 40, 9);
        s.preemption = PreemptionMode::Checkpoint;
        s.qos = QosSpec::strided(4, 5, 150);
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.preemption, PreemptionMode::Checkpoint);
        assert_eq!(back.qos, QosSpec::strided(4, 5, 150));
    }

    #[test]
    fn fault_scenario_round_trips() {
        let mut s = Scenario::paper_fig9(4, 30, 17);
        s.faults = FaultPlan::low(0xFA17);
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.faults, FaultPlan::low(0xFA17));
    }

    #[test]
    fn pre_fault_files_load_with_faults_off() {
        // A file written before the fault model existed has no `faults`
        // key; it must load as the fault-free scenario it always
        // described and run bit-identically.
        let s = Scenario::paper_fig9(4, 25, 3);
        let mut v: serde::Value = serde_json::from_str(&s.to_json()).unwrap();
        if let serde::Value::Object(m) = &mut v {
            assert!(m.remove("faults").is_some());
        } else {
            panic!("scenario serialises to an object");
        }
        let legacy = serde_json::to_string(&v).unwrap();
        assert!(!legacy.contains("faults"), "field really removed");
        let back = Scenario::from_json(&legacy).expect("legacy file loads");
        assert!(back.faults.is_off());
        assert_eq!(back, s, "defaults equal the freshly built scenario");
        assert_eq!(s.run().to_csv(), back.run().to_csv());
    }

    #[test]
    fn fault_scenario_runs_to_a_table() {
        let mut s = Scenario::paper_fig9(4, 24, 21);
        s.faults = FaultPlan::low(99);
        let t = s.run();
        assert_eq!(t.len(), s.policies.len());
    }

    #[test]
    fn pre_qos_files_load_with_default_class() {
        // A file written before the QoS fields existed has neither
        // `preemption` nor `qos` keys; it must load as the uniform
        // best-effort, preemption-off scenario it always described.
        let s = Scenario::paper_fig9(4, 25, 3);
        let mut v: serde::Value = serde_json::from_str(&s.to_json()).unwrap();
        if let serde::Value::Object(m) = &mut v {
            assert!(m.remove("preemption").is_some());
            assert!(m.remove("qos").is_some());
        } else {
            panic!("scenario serialises to an object");
        }
        let legacy = serde_json::to_string(&v).unwrap();
        assert!(!legacy.contains("preemption"), "field really removed");
        let back = Scenario::from_json(&legacy).expect("legacy file loads");
        assert_eq!(back.preemption, PreemptionMode::Off);
        assert_eq!(back.qos, QosSpec::UNIFORM);
        assert_eq!(back, s, "defaults equal the freshly built scenario");
        // And the loaded scenario still runs bit-identically.
        assert_eq!(s.run().to_csv(), back.run().to_csv());
    }

    #[test]
    fn qos_scenario_runs_to_a_table() {
        let mut s = Scenario::streaming(
            4,
            24,
            13,
            ArrivalProcess::Poisson {
                mean_gap_us: 30_000,
            },
        );
        s.preemption = PreemptionMode::Checkpoint;
        s.qos = QosSpec::strided(3, 5, 130);
        let t = s.run();
        assert_eq!(t.len(), s.policies.len());
    }

    #[test]
    fn fleet_scenario_round_trips() {
        use rtr_manager::PlacementKind;
        let mut s = Scenario::paper_fig9(4, 40, 23);
        s.fleet = Some(FleetSpec {
            devices: vec![2, 4, 6],
            placement: PlacementKind::ReuseAffinity,
            quota: Some(8),
            tenants: 3,
            seed: 41,
        });
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.fleet.as_ref().unwrap().devices, vec![2, 4, 6]);
    }

    #[test]
    fn pre_fleet_files_load_single_device() {
        // A file written before the fleet layer existed has no `fleet`
        // key; it must load as the single-device scenario it always
        // described and run bit-identically.
        let s = Scenario::paper_fig9(4, 25, 3);
        let mut v: serde::Value = serde_json::from_str(&s.to_json()).unwrap();
        if let serde::Value::Object(m) = &mut v {
            assert!(m.remove("fleet").is_some());
        } else {
            panic!("scenario serialises to an object");
        }
        let legacy = serde_json::to_string(&v).unwrap();
        assert!(!legacy.contains("fleet"), "field really removed");
        let back = Scenario::from_json(&legacy).expect("legacy file loads");
        assert!(back.fleet.is_none());
        assert_eq!(back, s, "defaults equal the freshly built scenario");
        assert_eq!(s.run().to_csv(), back.run().to_csv());
    }

    #[test]
    fn fleet_scenario_runs_to_a_table() {
        use rtr_manager::PlacementKind;
        let mut s = Scenario::streaming(
            4,
            30,
            19,
            ArrivalProcess::Poisson {
                mean_gap_us: 40_000,
            },
        );
        s.fleet = Some(FleetSpec {
            devices: vec![2, 4],
            placement: PlacementKind::ReuseAffinity,
            quota: None,
            tenants: 3,
            seed: 7,
        });
        let t = s.run_with_workers(2);
        assert_eq!(t.len(), s.policies.len());
        assert!(t.to_markdown().contains("2 devices"));
        assert!(t.to_markdown().contains("reuse-affinity"));
        // The fleet path is deterministic across worker counts.
        assert_eq!(t.to_csv(), s.run().to_csv());
    }

    #[test]
    fn rejects_degenerate_arrivals_at_load() {
        let mut s = Scenario::paper_fig9(4, 10, 1);
        s.arrivals = ArrivalProcess::Bursty {
            size: 0,
            mean_gap_us: 1,
        };
        let err = Scenario::from_json(&s.to_json()).unwrap_err();
        assert!(err.contains("at least one job per burst"), "{err}");
        s.arrivals = ArrivalProcess::Poisson { mean_gap_us: 0 };
        let err = Scenario::from_json(&s.to_json()).unwrap_err();
        assert!(err.contains("batch setting"), "{err}");
    }

    #[test]
    fn rejects_corrupt_templates() {
        let mut s = Scenario::paper_fig9(4, 10, 1);
        // Introduce a cycle.
        s.templates[0].edges.push((1, 0));
        s.templates[0].edges.push((0, 1));
        let json = s.to_json();
        assert!(Scenario::from_json(&json).is_err());
    }

    #[test]
    fn runs_to_a_table() {
        let s = Scenario::paper_fig9(5, 30, 3);
        let t = s.run();
        assert_eq!(t.len(), s.policies.len());
        assert!(t.to_markdown().contains("LFD"));
    }

    #[test]
    fn arrivals_round_trip_preserves_run_output() {
        // The `arrivals` field (added with the streaming engine) must
        // survive serialisation *semantically*: a scenario run before
        // JSON round-tripping and the deserialised copy run afterwards
        // produce the identical table, arrival instants included.
        for arrivals in [
            ArrivalProcess::Batch,
            ArrivalProcess::Poisson {
                mean_gap_us: 50_000,
            },
            ArrivalProcess::Bursty {
                size: 4,
                mean_gap_us: 300_000,
            },
        ] {
            let s = Scenario::streaming(4, 25, 11, arrivals);
            let back = Scenario::from_json(&s.to_json()).unwrap();
            assert_eq!(back, s);
            assert_eq!(
                s.run().to_csv(),
                back.run().to_csv(),
                "round-tripped scenario diverged under {:?}",
                s.arrivals
            );
        }
    }

    #[test]
    fn streaming_scenario_round_trips_and_runs() {
        let s = Scenario::streaming(
            4,
            20,
            5,
            ArrivalProcess::Poisson {
                mean_gap_us: 80_000,
            },
        );
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        let t = s.run();
        assert_eq!(t.len(), s.policies.len());
        assert!(t.to_markdown().contains("poisson(80ms)"));
    }
}
