//! Serialisable policy selectors.
//!
//! A [`PolicyKind`] names a replacement policy *together with* the
//! manager settings it implies: Local LFD (w) requires a Dynamic-List
//! lookahead of `w` graphs, the LFD oracle requires full lookahead, the
//! skip variants require `skip_events` and mobility annotations. Keeping
//! these coupled prevents meaningless grid cells (e.g. an oracle with no
//! future view).

use rtr_core::{
    FifoPolicy, LfdPolicy, LfuPolicy, LruPolicy, MruPolicy, RandomPolicy, SlackAwareLfdPolicy,
};
use rtr_manager::{FirstCandidatePolicy, Lookahead, ReplacementPolicy};
use serde::{Deserialize, Serialize};

/// Policy selector for experiment grids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Least Recently Used (the paper's baseline).
    Lru,
    /// First In First Out.
    Fifo,
    /// Most Recently Used.
    Mru,
    /// Least Frequently Used.
    Lfu,
    /// Seeded uniform-random victim.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// The paper's Local LFD with a Dynamic List of `window` graphs;
    /// `skip` enables the Skip Events feature.
    LocalLfd {
        /// Dynamic-List size in task graphs.
        window: usize,
        /// Skip Events on/off.
        skip: bool,
    },
    /// The clairvoyant LFD oracle (full future knowledge, no skips).
    Lfd,
    /// Deadline-aware LFD: evicts the candidate whose in-window owner
    /// has the most slack, LFD order among ties. `window == 0` means
    /// the clairvoyant flavour (full lookahead).
    SlackLfd {
        /// Dynamic-List size in task graphs (0 = full lookahead).
        window: usize,
    },
    /// Lowest-index candidate (used for the no-reuse baseline).
    FirstCandidate,
}

impl PolicyKind {
    /// Instantiates the policy object.
    pub fn build(&self) -> Box<dyn ReplacementPolicy + Send> {
        match *self {
            PolicyKind::Lru => Box::new(LruPolicy::new()),
            PolicyKind::Fifo => Box::new(FifoPolicy::new()),
            PolicyKind::Mru => Box::new(MruPolicy::new()),
            PolicyKind::Lfu => Box::new(LfuPolicy::new()),
            PolicyKind::Random { seed } => Box::new(RandomPolicy::new(seed)),
            PolicyKind::LocalLfd { window, skip } => Box::new(if skip {
                LfdPolicy::local_with_skip(window)
            } else {
                LfdPolicy::local(window)
            }),
            PolicyKind::Lfd => Box::new(LfdPolicy::oracle()),
            PolicyKind::SlackLfd { window } => Box::new(if window == 0 {
                SlackAwareLfdPolicy::oracle()
            } else {
                SlackAwareLfdPolicy::local(window)
            }),
            PolicyKind::FirstCandidate => Box::new(FirstCandidatePolicy),
        }
    }

    /// The Dynamic-List lookahead this policy needs.
    pub fn lookahead(&self) -> Lookahead {
        match *self {
            PolicyKind::LocalLfd { window, .. } => Lookahead::Graphs(window),
            PolicyKind::Lfd => Lookahead::All,
            PolicyKind::SlackLfd { window: 0 } => Lookahead::All,
            PolicyKind::SlackLfd { window } => Lookahead::Graphs(window),
            // History policies ignore the future; Skip Events also needs
            // a window, but skip is only defined on LocalLfd.
            _ => Lookahead::None,
        }
    }

    /// Whether the manager's Skip Events feature must be enabled.
    pub fn skip_events(&self) -> bool {
        matches!(self, PolicyKind::LocalLfd { skip: true, .. })
    }

    /// Whether jobs need mobility annotations (implied by skips).
    pub fn needs_mobility(&self) -> bool {
        self.skip_events()
    }

    /// Display label matching the paper's figures.
    pub fn label(&self) -> String {
        match *self {
            PolicyKind::Lru => "LRU".into(),
            PolicyKind::Fifo => "FIFO".into(),
            PolicyKind::Mru => "MRU".into(),
            PolicyKind::Lfu => "LFU".into(),
            PolicyKind::Random { .. } => "Random".into(),
            PolicyKind::LocalLfd {
                window,
                skip: false,
            } => format!("Local LFD ({window})"),
            PolicyKind::LocalLfd { window, skip: true } => {
                format!("Local LFD ({window}) + Skip Events")
            }
            PolicyKind::Lfd => "LFD".into(),
            PolicyKind::SlackLfd { window: 0 } => "Slack LFD".into(),
            PolicyKind::SlackLfd { window } => format!("Slack LFD ({window})"),
            PolicyKind::FirstCandidate => "FirstCandidate".into(),
        }
    }

    /// The policy set of Fig. 9a (ASAP, no skips).
    pub fn fig9a_set() -> Vec<PolicyKind> {
        vec![
            PolicyKind::Lru,
            PolicyKind::LocalLfd {
                window: 1,
                skip: false,
            },
            PolicyKind::LocalLfd {
                window: 2,
                skip: false,
            },
            PolicyKind::LocalLfd {
                window: 4,
                skip: false,
            },
            PolicyKind::Lfd,
        ]
    }

    /// The policy set of Fig. 9b (Skip Events impact on reuse).
    pub fn fig9b_set() -> Vec<PolicyKind> {
        vec![
            PolicyKind::Lru,
            PolicyKind::LocalLfd {
                window: 1,
                skip: false,
            },
            PolicyKind::LocalLfd {
                window: 1,
                skip: true,
            },
            PolicyKind::Lfd,
        ]
    }

    /// The policy set of Fig. 9c (remaining overhead).
    pub fn fig9c_set() -> Vec<PolicyKind> {
        vec![
            PolicyKind::Lru,
            PolicyKind::LocalLfd {
                window: 1,
                skip: true,
            },
            PolicyKind::LocalLfd {
                window: 2,
                skip: true,
            },
            PolicyKind::LocalLfd {
                window: 4,
                skip: true,
            },
            PolicyKind::Lfd,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(PolicyKind::Lru.label(), "LRU");
        assert_eq!(
            PolicyKind::LocalLfd {
                window: 4,
                skip: false
            }
            .label(),
            "Local LFD (4)"
        );
        assert_eq!(
            PolicyKind::LocalLfd {
                window: 1,
                skip: true
            }
            .label(),
            "Local LFD (1) + Skip Events"
        );
        assert_eq!(PolicyKind::Lfd.label(), "LFD");
    }

    #[test]
    fn lookahead_coupling() {
        assert_eq!(PolicyKind::Lru.lookahead(), Lookahead::None);
        assert_eq!(
            PolicyKind::LocalLfd {
                window: 2,
                skip: true
            }
            .lookahead(),
            Lookahead::Graphs(2)
        );
        assert_eq!(PolicyKind::Lfd.lookahead(), Lookahead::All);
    }

    #[test]
    fn skip_and_mobility_only_for_skip_variants() {
        assert!(!PolicyKind::Lfd.skip_events());
        assert!(!PolicyKind::LocalLfd {
            window: 1,
            skip: false
        }
        .needs_mobility());
        assert!(PolicyKind::LocalLfd {
            window: 1,
            skip: true
        }
        .needs_mobility());
    }

    #[test]
    fn build_produces_named_policies() {
        for kind in PolicyKind::fig9a_set() {
            let p = kind.build();
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn figure_sets_have_paper_cardinality() {
        assert_eq!(PolicyKind::fig9a_set().len(), 5);
        assert_eq!(PolicyKind::fig9b_set().len(), 4);
        assert_eq!(PolicyKind::fig9c_set().len(), 5);
    }

    #[test]
    fn serde_round_trip() {
        let k = PolicyKind::LocalLfd {
            window: 4,
            skip: true,
        };
        let json = serde_json::to_string(&k).unwrap();
        assert_eq!(serde_json::from_str::<PolicyKind>(&json).unwrap(), k);
    }
}
