//! Runs one experiment cell: a policy on a workload on a system.
//!
//! The runner owns the glue the paper describes as the hybrid flow: it
//! prepares mobility annotations once per template (design time) when
//! the policy needs them, configures the manager to match the policy
//! (lookahead, skip events), runs the simulation, and reports both the
//! schedule statistics and the wall-clock cost split between the
//! replacement module and the rest of the manager (the paper's
//! Tables I/II distinction).

use crate::policies::PolicyKind;
use rtr_core::TemplateRegistry;
use rtr_hw::{DeviceSpec, RuId};
use rtr_manager::{
    DecisionContext, Engine, FaultPlan, JobSpec, ManagerConfig, PreemptionMode, PrefetchConfig,
    QosClass, ReplacementPolicy, RunStats, SimError, Trace,
};
use rtr_sim::SimTime;
use rtr_taskgraph::{ConfigId, TaskGraph};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One grid cell: which policy, on how many RUs, on which device.
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// Policy (and implied manager settings).
    pub policy: PolicyKind,
    /// Number of reconfigurable units.
    pub rus: usize,
    /// Device parameters.
    pub device: DeviceSpec,
    /// Record the full schedule trace.
    pub record_trace: bool,
    /// Speculative configuration prefetching (off by default, which is
    /// bit-exact with the pre-prefetch cells).
    pub prefetch: PrefetchConfig,
    /// Preemption policy for QoS-class scheduling (`Off` by default,
    /// which is bit-exact with the pre-QoS cells).
    pub preemption: PreemptionMode,
    /// Fault-injection plan (off by default, which is bit-exact with
    /// the fault-free cells).
    pub faults: FaultPlan,
}

impl CellConfig {
    /// Cell on the paper's default device.
    pub fn new(policy: PolicyKind, rus: usize) -> Self {
        CellConfig {
            policy,
            rus,
            device: DeviceSpec::paper_default(),
            record_trace: false,
            prefetch: PrefetchConfig::off(),
            preemption: PreemptionMode::Off,
            faults: FaultPlan::off(),
        }
    }

    /// Builder-style preemption-mode override.
    pub fn with_preemption(mut self, mode: PreemptionMode) -> Self {
        self.preemption = mode;
        self
    }

    /// Builder-style fault-plan override.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Builder-style prefetch-depth override.
    pub fn with_prefetch_depth(mut self, depth: usize) -> Self {
        self.prefetch = PrefetchConfig::with_depth(depth);
        self
    }

    /// The manager configuration this cell implies.
    pub fn manager_config(&self) -> ManagerConfig {
        ManagerConfig {
            rus: self.rus,
            device: self.device.clone(),
            lookahead: self.policy.lookahead(),
            skip_events: self.policy.skip_events(),
            reuse_enabled: true,
            record_trace: self.record_trace,
            prefetch: self.prefetch,
            preemption: self.preemption,
            faults: self.faults,
        }
    }
}

/// Outcome of one cell, with cost attribution.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Schedule statistics.
    pub stats: RunStats,
    /// Schedule trace (empty unless requested).
    pub trace: Trace,
    /// Wall-clock time spent *inside* `select_victim` calls.
    pub replacement_time: Duration,
    /// Number of `select_victim` invocations.
    pub replacement_calls: u64,
    /// Wall-clock time of the whole simulation (including the above).
    pub total_time: Duration,
    /// Wall-clock time of the design-time phase (mobility preparation);
    /// zero when the policy does not need mobility.
    pub design_time: Duration,
    /// The run started from the pooled engine's warm-start log (a full
    /// or prefix replay of the previous cell) instead of cold.
    pub warm_hit: bool,
    /// Graphs whose decisions were replayed rather than re-simulated —
    /// the depth of the first divergent decision (0 on a cold start).
    pub divergence_depth: usize,
    /// Logged events replayed instead of re-derived (0 on a cold
    /// start).
    pub replayed_events: usize,
}

/// Wraps a policy and attributes wall-clock time to its decisions.
pub struct TimingPolicy<'a> {
    inner: &'a mut dyn ReplacementPolicy,
    spent: Duration,
    calls: u64,
}

impl<'a> TimingPolicy<'a> {
    /// Wraps `inner`.
    pub fn new(inner: &'a mut dyn ReplacementPolicy) -> Self {
        TimingPolicy {
            inner,
            spent: Duration::ZERO,
            calls: 0,
        }
    }

    /// Accumulated decision time.
    pub fn spent(&self) -> Duration {
        self.spent
    }

    /// Number of decisions made.
    pub fn calls(&self) -> u64 {
        self.calls
    }
}

impl ReplacementPolicy for TimingPolicy<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn select_victim(&mut self, ctx: &DecisionContext<'_>) -> RuId {
        let t0 = Instant::now();
        let v = self.inner.select_victim(ctx);
        self.spent += t0.elapsed();
        self.calls += 1;
        v
    }
    fn on_load_complete(&mut self, config: ConfigId, ru: RuId, now: SimTime) {
        self.inner.on_load_complete(config, ru, now);
    }
    fn on_reuse(&mut self, config: ConfigId, ru: RuId, now: SimTime) {
        self.inner.on_reuse(config, ru, now);
    }
    fn on_exec_start(&mut self, config: ConfigId, now: SimTime) {
        self.inner.on_exec_start(config, now);
    }
    fn on_exec_end(&mut self, config: ConfigId, now: SimTime) {
        self.inner.on_exec_end(config, now);
    }
    fn on_graph_start(&mut self, job: u32, now: SimTime) {
        self.inner.on_graph_start(job, now);
    }
    fn on_graph_end(&mut self, job: u32, now: SimTime) {
        self.inner.on_graph_end(job, now);
    }
    fn reset(&mut self) {
        self.inner.reset();
    }
    fn warm_key(&self) -> Option<String> {
        // Timing is attribution-only state: the wrapper decides exactly
        // as the wrapped policy does, so it inherits its warm identity.
        self.inner.warm_key()
    }
}

/// Builds a cell's job sequence into `out` through the given
/// design-time registry — the single job-construction path shared by
/// the one-shot [`prepare_jobs`] helpers and the pooled [`CellRunner`],
/// so arrival stamping and mobility gating can never diverge between
/// them. Returns the wall-clock design time of *this call* (≈ 0 when
/// the registry already holds the cell's artifacts; always zero when
/// the policy needs no mobility).
///
/// # Panics
/// Panics if `arrivals` is provided with a length different from
/// `sequence`.
fn build_jobs_into(
    registry: &TemplateRegistry,
    out: &mut Vec<JobSpec>,
    sequence: &[Arc<TaskGraph>],
    arrivals: Option<&[SimTime]>,
    qos: Option<&[QosClass]>,
    cell: &CellConfig,
) -> Duration {
    if let Some(arrivals) = arrivals {
        assert_eq!(
            arrivals.len(),
            sequence.len(),
            "one arrival instant per application required"
        );
    }
    if let Some(qos) = qos {
        assert_eq!(
            qos.len(),
            sequence.len(),
            "one QoS class per application required"
        );
    }
    let arrival_of = |i: usize| arrivals.map_or(SimTime::ZERO, |a| a[i]);
    let qos_of = |i: usize| qos.map_or_else(QosClass::default, |q| q[i]);
    let cfg = cell.manager_config();
    let needs_mobility = cell.policy.needs_mobility();
    let t0 = Instant::now();
    out.clear();
    out.reserve(sequence.len());
    for (i, g) in sequence.iter().enumerate() {
        let job = registry
            .instantiate(g, &cfg, needs_mobility)
            .expect("benchmark graphs have feasible reference schedules")
            .with_arrival(arrival_of(i))
            .with_qos(qos_of(i));
        out.push(job);
    }
    if needs_mobility {
        t0.elapsed()
    } else {
        Duration::ZERO
    }
}

/// Builds the job sequence for a cell, preparing mobility annotations
/// (design time) when the policy requires them. Returns the jobs and
/// the wall-clock design time.
pub fn prepare_jobs(
    sequence: &[Arc<TaskGraph>],
    cell: &CellConfig,
) -> Result<(Vec<JobSpec>, Duration), SimError> {
    prepare_jobs_with_arrivals(sequence, None, cell)
}

/// Like [`prepare_jobs`], additionally stamping per-job arrival
/// instants for streaming runs (`None` = the batch setting, all t = 0).
/// One-shot form: design time runs against a private registry, so it is
/// fully attributed to this call.
///
/// # Panics
/// Panics if `arrivals` is provided with a length different from
/// `sequence`.
pub fn prepare_jobs_with_arrivals(
    sequence: &[Arc<TaskGraph>],
    arrivals: Option<&[SimTime]>,
    cell: &CellConfig,
) -> Result<(Vec<JobSpec>, Duration), SimError> {
    let mut jobs = Vec::new();
    let design_time = build_jobs_into(
        &TemplateRegistry::new(),
        &mut jobs,
        sequence,
        arrivals,
        None,
        cell,
    );
    Ok((jobs, design_time))
}

/// Runs one cell over an application sequence (batch: all arrivals at
/// t = 0).
///
/// One-shot form: builds a private [`CellRunner`] (fresh engine, fresh
/// registry), so design-time cost is attributed to this cell alone.
/// Sweeps should hold a `CellRunner` instead and amortise both.
pub fn run_cell(sequence: &[Arc<TaskGraph>], cell: &CellConfig) -> Result<CellResult, SimError> {
    run_cell_with_arrivals(sequence, None, cell)
}

/// Runs one cell over a streaming application sequence whose jobs enter
/// the manager's online queue at the given instants (one-shot form, see
/// [`run_cell`]).
pub fn run_cell_with_arrivals(
    sequence: &[Arc<TaskGraph>],
    arrivals: Option<&[SimTime]>,
    cell: &CellConfig,
) -> Result<CellResult, SimError> {
    CellRunner::new().run_with_arrivals(sequence, arrivals, cell)
}

/// A reusable cell executor: one pooled [`Engine`] plus a (typically
/// shared) design-time [`TemplateRegistry`].
///
/// Sweeps create one `CellRunner` per worker thread, all pointing at
/// one registry — every distinct template is analysed once per
/// process, and the engine's event heap, scratch vectors, reuse-index
/// lists and job buffer are reused across every cell and replication
/// the worker executes. Results are bit-exact with the one-shot
/// [`run_cell`] path (pinned by the pooled-equivalence property test);
/// only the wall-clock attribution differs — `design_time` reports
/// this *call's* cost, which is ≈ 0 whenever the registry already
/// holds the cell's artifacts.
pub struct CellRunner {
    registry: Arc<TemplateRegistry>,
    engine: Option<Engine>,
    jobs: Vec<JobSpec>,
}

/// Per-worker pooled [`CellRunner`] factory sharing one design-time
/// `registry` — the worker-init closure the sweep experiments pass to
/// [`parallel_map_with`](crate::parallel::parallel_map_with).
pub fn pooled_workers(registry: &Arc<TemplateRegistry>) -> impl Fn() -> CellRunner + Sync + '_ {
    move || CellRunner::with_registry(Arc::clone(registry))
}

impl CellRunner {
    /// A runner with a private registry (the one-shot configuration).
    pub fn new() -> Self {
        CellRunner::with_registry(Arc::new(TemplateRegistry::new()))
    }

    /// A runner drawing design-time artifacts from a shared registry.
    pub fn with_registry(registry: Arc<TemplateRegistry>) -> Self {
        CellRunner {
            registry,
            engine: None,
            jobs: Vec::new(),
        }
    }

    /// The runner's registry (share it with further runners).
    pub fn registry(&self) -> &Arc<TemplateRegistry> {
        &self.registry
    }

    /// Runs one batch cell (all arrivals at t = 0).
    pub fn run(
        &mut self,
        sequence: &[Arc<TaskGraph>],
        cell: &CellConfig,
    ) -> Result<CellResult, SimError> {
        self.run_with_arrivals(sequence, None, cell)
    }

    /// Runs one cell, streaming jobs in at the given instants (`None` =
    /// batch).
    ///
    /// # Panics
    /// Panics if `arrivals` is provided with a length different from
    /// `sequence`.
    pub fn run_with_arrivals(
        &mut self,
        sequence: &[Arc<TaskGraph>],
        arrivals: Option<&[SimTime]>,
        cell: &CellConfig,
    ) -> Result<CellResult, SimError> {
        self.run_with_arrivals_qos(sequence, arrivals, None, cell)
    }

    /// Runs one cell with per-job QoS classes (priority lanes and
    /// deadlines). `None` = every job in the default class, which is
    /// bit-exact with [`CellRunner::run_with_arrivals`].
    ///
    /// # Panics
    /// Panics if `arrivals` or `qos` is provided with a length
    /// different from `sequence`.
    pub fn run_with_arrivals_qos(
        &mut self,
        sequence: &[Arc<TaskGraph>],
        arrivals: Option<&[SimTime]>,
        qos: Option<&[QosClass]>,
        cell: &CellConfig,
    ) -> Result<CellResult, SimError> {
        // Design-time phase: memoised in the registry, so only the
        // first cell touching a (template, system) pair pays it.
        let design_time = build_jobs_into(
            &self.registry,
            &mut self.jobs,
            sequence,
            arrivals,
            qos,
            cell,
        );
        let cfg = cell.manager_config();

        if self.engine.is_none() {
            self.engine = Some(Engine::with_templates(&cfg, self.registry.template_set()));
        }
        let engine = self.engine.as_mut().expect("just ensured");
        engine.reset_with_config(&cfg, &self.jobs);
        let mut policy = cell.policy.build();
        policy.reset();
        let mut timed = TimingPolicy::new(policy.as_mut());
        let t0 = Instant::now();
        engine.run(&mut timed);
        let out = engine.outcome()?;
        let total_time = t0.elapsed();
        let warm = engine.warm_stats();
        Ok(CellResult {
            stats: out.stats,
            trace: out.trace,
            replacement_time: timed.spent(),
            replacement_calls: timed.calls(),
            total_time,
            design_time,
            warm_hit: warm.last_was_hit,
            divergence_depth: warm.last_divergence_depth,
            replayed_events: warm.last_replayed_events,
        })
    }
}

impl Default for CellRunner {
    fn default() -> Self {
        CellRunner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::SequenceModel;
    use rtr_taskgraph::benchmarks;

    fn small_sequence(seed: u64) -> Vec<Arc<TaskGraph>> {
        let templates: Vec<Arc<TaskGraph>> = benchmarks::multimedia_suite()
            .into_iter()
            .map(Arc::new)
            .collect();
        SequenceModel::UniformRandom.generate(&templates, 40, seed)
    }

    #[test]
    fn lru_cell_runs() {
        let seq = small_sequence(1);
        let out = run_cell(&seq, &CellConfig::new(PolicyKind::Lru, 4)).unwrap();
        assert_eq!(
            out.stats.executed as usize,
            seq.iter().map(|g| g.len()).sum::<usize>()
        );
        assert!(out.design_time.is_zero());
    }

    #[test]
    fn skip_cell_prepares_mobility() {
        let seq = small_sequence(2);
        let cell = CellConfig::new(
            PolicyKind::LocalLfd {
                window: 1,
                skip: true,
            },
            4,
        );
        let out = run_cell(&seq, &cell).unwrap();
        assert!(out.design_time > Duration::ZERO);
        assert!(out.stats.executed > 0);
    }

    #[test]
    fn lfd_dominates_lru_on_reuse() {
        let seq = small_sequence(3);
        let lru = run_cell(&seq, &CellConfig::new(PolicyKind::Lru, 4)).unwrap();
        let lfd = run_cell(&seq, &CellConfig::new(PolicyKind::Lfd, 4)).unwrap();
        assert!(
            lfd.stats.reuses >= lru.stats.reuses,
            "LFD {} vs LRU {}",
            lfd.stats.reuses,
            lru.stats.reuses
        );
    }

    #[test]
    fn determinism_across_runs() {
        let seq = small_sequence(4);
        let cell = CellConfig::new(
            PolicyKind::LocalLfd {
                window: 2,
                skip: false,
            },
            5,
        );
        let a = run_cell(&seq, &cell).unwrap();
        let b = run_cell(&seq, &cell).unwrap();
        assert_eq!(a.stats.makespan, b.stats.makespan);
        assert_eq!(a.stats.reuses, b.stats.reuses);
        assert_eq!(a.stats.loads, b.stats.loads);
    }

    #[test]
    fn arrivals_stamp_jobs_and_stream() {
        use crate::arrivals::ArrivalProcess;
        let seq = small_sequence(6);
        let arrivals = ArrivalProcess::Poisson {
            mean_gap_us: 60_000,
        }
        .generate(seq.len(), 11);
        let cell = CellConfig::new(PolicyKind::Lru, 4);
        let (jobs, _) = prepare_jobs_with_arrivals(&seq, Some(&arrivals), &cell).unwrap();
        assert!(jobs.iter().zip(&arrivals).all(|(j, &a)| j.arrival == a));
        let out = run_cell_with_arrivals(&seq, Some(&arrivals), &cell).unwrap();
        assert_eq!(
            out.stats.executed as usize,
            seq.iter().map(|g| g.len()).sum::<usize>()
        );
        // Sojourns are well-defined and the run is deterministic.
        let again = run_cell_with_arrivals(&seq, Some(&arrivals), &cell).unwrap();
        assert_eq!(out.stats.mean_sojourn_ms(), again.stats.mean_sojourn_ms());
    }

    #[test]
    #[should_panic(expected = "one arrival instant per application")]
    fn mismatched_arrival_length_panics() {
        let seq = small_sequence(7);
        let arrivals = vec![SimTime::ZERO; seq.len() - 1];
        let _ =
            prepare_jobs_with_arrivals(&seq, Some(&arrivals), &CellConfig::new(PolicyKind::Lru, 4));
    }

    #[test]
    fn pooled_runner_matches_one_shot_cells() {
        // One CellRunner across heterogeneous cells (policy, RU count,
        // mobility needs) must reproduce the one-shot path bit-exactly:
        // stats and trace.
        let seq = small_sequence(8);
        let mut runner = CellRunner::with_registry(Arc::new(TemplateRegistry::new()));
        let mut cells = vec![
            CellConfig::new(PolicyKind::Lru, 4),
            CellConfig::new(
                PolicyKind::LocalLfd {
                    window: 2,
                    skip: true,
                },
                5,
            ),
            CellConfig::new(PolicyKind::Lfd, 3),
        ];
        for cell in &mut cells {
            cell.record_trace = true;
        }
        for cell in &cells {
            let pooled = runner.run(&seq, cell).unwrap();
            let fresh = run_cell(&seq, cell).unwrap();
            assert_eq!(pooled.stats, fresh.stats);
            assert_eq!(pooled.trace, fresh.trace);
        }
        assert_eq!(runner.registry().templates(), 3);
    }

    #[test]
    fn shared_registry_amortises_design_time() {
        let seq = small_sequence(9);
        let cell = CellConfig::new(
            PolicyKind::LocalLfd {
                window: 1,
                skip: true,
            },
            4,
        );
        let mut runner = CellRunner::new();
        let first = runner.run(&seq, &cell).unwrap();
        let templates = runner.registry().templates();
        let mobility_entries = runner.registry().mobility_entries();
        assert!(templates > 0);
        assert!(mobility_entries > 0);
        let second = runner.run(&seq, &cell).unwrap();
        assert!(first.design_time > Duration::ZERO);
        // The second run hits the registry memo; it must not recompute
        // the (expensive) mobility probes. Assert the structural
        // property — no new registry entries — rather than comparing
        // noisy wall-clock durations.
        assert_eq!(runner.registry().templates(), templates);
        assert_eq!(runner.registry().mobility_entries(), mobility_entries);
        assert_eq!(first.stats, second.stats, "replications are bit-exact");
    }

    #[test]
    fn replacement_calls_counted() {
        let seq = small_sequence(5);
        let out = run_cell(&seq, &CellConfig::new(PolicyKind::Lru, 4)).unwrap();
        assert!(out.replacement_calls > 0);
        assert!(out.total_time >= out.replacement_time);
    }
}
