//! Runs one experiment cell: a policy on a workload on a system.
//!
//! The runner owns the glue the paper describes as the hybrid flow: it
//! prepares mobility annotations once per template (design time) when
//! the policy needs them, configures the manager to match the policy
//! (lookahead, skip events), runs the simulation, and reports both the
//! schedule statistics and the wall-clock cost split between the
//! replacement module and the rest of the manager (the paper's
//! Tables I/II distinction).

use crate::policies::PolicyKind;
use rtr_core::TemplateCache;
use rtr_hw::{DeviceSpec, RuId};
use rtr_manager::{
    simulate, DecisionContext, JobSpec, ManagerConfig, ReplacementPolicy, RunStats, SimError, Trace,
};
use rtr_sim::SimTime;
use rtr_taskgraph::{ConfigId, TaskGraph};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One grid cell: which policy, on how many RUs, on which device.
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// Policy (and implied manager settings).
    pub policy: PolicyKind,
    /// Number of reconfigurable units.
    pub rus: usize,
    /// Device parameters.
    pub device: DeviceSpec,
    /// Record the full schedule trace.
    pub record_trace: bool,
}

impl CellConfig {
    /// Cell on the paper's default device.
    pub fn new(policy: PolicyKind, rus: usize) -> Self {
        CellConfig {
            policy,
            rus,
            device: DeviceSpec::paper_default(),
            record_trace: false,
        }
    }

    /// The manager configuration this cell implies.
    pub fn manager_config(&self) -> ManagerConfig {
        ManagerConfig {
            rus: self.rus,
            device: self.device.clone(),
            lookahead: self.policy.lookahead(),
            skip_events: self.policy.skip_events(),
            reuse_enabled: true,
            record_trace: self.record_trace,
        }
    }
}

/// Outcome of one cell, with cost attribution.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Schedule statistics.
    pub stats: RunStats,
    /// Schedule trace (empty unless requested).
    pub trace: Trace,
    /// Wall-clock time spent *inside* `select_victim` calls.
    pub replacement_time: Duration,
    /// Number of `select_victim` invocations.
    pub replacement_calls: u64,
    /// Wall-clock time of the whole simulation (including the above).
    pub total_time: Duration,
    /// Wall-clock time of the design-time phase (mobility preparation);
    /// zero when the policy does not need mobility.
    pub design_time: Duration,
}

/// Wraps a policy and attributes wall-clock time to its decisions.
pub struct TimingPolicy<'a> {
    inner: &'a mut dyn ReplacementPolicy,
    spent: Duration,
    calls: u64,
}

impl<'a> TimingPolicy<'a> {
    /// Wraps `inner`.
    pub fn new(inner: &'a mut dyn ReplacementPolicy) -> Self {
        TimingPolicy {
            inner,
            spent: Duration::ZERO,
            calls: 0,
        }
    }

    /// Accumulated decision time.
    pub fn spent(&self) -> Duration {
        self.spent
    }

    /// Number of decisions made.
    pub fn calls(&self) -> u64 {
        self.calls
    }
}

impl ReplacementPolicy for TimingPolicy<'_> {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn select_victim(&mut self, ctx: &DecisionContext<'_>) -> RuId {
        let t0 = Instant::now();
        let v = self.inner.select_victim(ctx);
        self.spent += t0.elapsed();
        self.calls += 1;
        v
    }
    fn on_load_complete(&mut self, config: ConfigId, ru: RuId, now: SimTime) {
        self.inner.on_load_complete(config, ru, now);
    }
    fn on_reuse(&mut self, config: ConfigId, ru: RuId, now: SimTime) {
        self.inner.on_reuse(config, ru, now);
    }
    fn on_exec_start(&mut self, config: ConfigId, now: SimTime) {
        self.inner.on_exec_start(config, now);
    }
    fn on_exec_end(&mut self, config: ConfigId, now: SimTime) {
        self.inner.on_exec_end(config, now);
    }
    fn on_graph_start(&mut self, job: u32, now: SimTime) {
        self.inner.on_graph_start(job, now);
    }
    fn on_graph_end(&mut self, job: u32, now: SimTime) {
        self.inner.on_graph_end(job, now);
    }
    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// Builds the job sequence for a cell, preparing mobility annotations
/// (design time) when the policy requires them. Returns the jobs and
/// the wall-clock design time.
pub fn prepare_jobs(
    sequence: &[Arc<TaskGraph>],
    cell: &CellConfig,
) -> Result<(Vec<JobSpec>, Duration), SimError> {
    prepare_jobs_with_arrivals(sequence, None, cell)
}

/// Like [`prepare_jobs`], additionally stamping per-job arrival
/// instants for streaming runs (`None` = the batch setting, all t = 0).
///
/// # Panics
/// Panics if `arrivals` is provided with a length different from
/// `sequence`.
pub fn prepare_jobs_with_arrivals(
    sequence: &[Arc<TaskGraph>],
    arrivals: Option<&[SimTime]>,
    cell: &CellConfig,
) -> Result<(Vec<JobSpec>, Duration), SimError> {
    if let Some(arrivals) = arrivals {
        assert_eq!(
            arrivals.len(),
            sequence.len(),
            "one arrival instant per application required"
        );
    }
    let arrival_of = |i: usize| arrivals.map_or(SimTime::ZERO, |a| a[i]);
    if !cell.policy.needs_mobility() {
        let jobs = sequence
            .iter()
            .enumerate()
            .map(|(i, g)| JobSpec::new(Arc::clone(g)).with_arrival(arrival_of(i)))
            .collect();
        return Ok((jobs, Duration::ZERO));
    }
    let cfg = cell.manager_config();
    let mut cache = TemplateCache::new();
    let t0 = Instant::now();
    let jobs: Vec<JobSpec> = sequence
        .iter()
        .enumerate()
        .map(|(i, g)| {
            cache
                .get_or_prepare(g, &cfg)
                .expect("benchmark graphs have feasible reference schedules")
                .instantiate()
                .with_arrival(arrival_of(i))
        })
        .collect();
    Ok((jobs, t0.elapsed()))
}

/// Runs one cell over an application sequence (batch: all arrivals at
/// t = 0).
pub fn run_cell(sequence: &[Arc<TaskGraph>], cell: &CellConfig) -> Result<CellResult, SimError> {
    run_cell_with_arrivals(sequence, None, cell)
}

/// Runs one cell over a streaming application sequence whose jobs enter
/// the manager's online queue at the given instants.
pub fn run_cell_with_arrivals(
    sequence: &[Arc<TaskGraph>],
    arrivals: Option<&[SimTime]>,
    cell: &CellConfig,
) -> Result<CellResult, SimError> {
    let (jobs, design_time) = prepare_jobs_with_arrivals(sequence, arrivals, cell)?;
    let cfg = cell.manager_config();
    let mut policy = cell.policy.build();
    let mut timed = TimingPolicy::new(policy.as_mut());
    let t0 = Instant::now();
    let out = simulate(&cfg, &jobs, &mut timed)?;
    let total_time = t0.elapsed();
    Ok(CellResult {
        stats: out.stats,
        trace: out.trace,
        replacement_time: timed.spent(),
        replacement_calls: timed.calls(),
        total_time,
        design_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::SequenceModel;
    use rtr_taskgraph::benchmarks;

    fn small_sequence(seed: u64) -> Vec<Arc<TaskGraph>> {
        let templates: Vec<Arc<TaskGraph>> = benchmarks::multimedia_suite()
            .into_iter()
            .map(Arc::new)
            .collect();
        SequenceModel::UniformRandom.generate(&templates, 40, seed)
    }

    #[test]
    fn lru_cell_runs() {
        let seq = small_sequence(1);
        let out = run_cell(&seq, &CellConfig::new(PolicyKind::Lru, 4)).unwrap();
        assert_eq!(
            out.stats.executed as usize,
            seq.iter().map(|g| g.len()).sum::<usize>()
        );
        assert!(out.design_time.is_zero());
    }

    #[test]
    fn skip_cell_prepares_mobility() {
        let seq = small_sequence(2);
        let cell = CellConfig::new(
            PolicyKind::LocalLfd {
                window: 1,
                skip: true,
            },
            4,
        );
        let out = run_cell(&seq, &cell).unwrap();
        assert!(out.design_time > Duration::ZERO);
        assert!(out.stats.executed > 0);
    }

    #[test]
    fn lfd_dominates_lru_on_reuse() {
        let seq = small_sequence(3);
        let lru = run_cell(&seq, &CellConfig::new(PolicyKind::Lru, 4)).unwrap();
        let lfd = run_cell(&seq, &CellConfig::new(PolicyKind::Lfd, 4)).unwrap();
        assert!(
            lfd.stats.reuses >= lru.stats.reuses,
            "LFD {} vs LRU {}",
            lfd.stats.reuses,
            lru.stats.reuses
        );
    }

    #[test]
    fn determinism_across_runs() {
        let seq = small_sequence(4);
        let cell = CellConfig::new(
            PolicyKind::LocalLfd {
                window: 2,
                skip: false,
            },
            5,
        );
        let a = run_cell(&seq, &cell).unwrap();
        let b = run_cell(&seq, &cell).unwrap();
        assert_eq!(a.stats.makespan, b.stats.makespan);
        assert_eq!(a.stats.reuses, b.stats.reuses);
        assert_eq!(a.stats.loads, b.stats.loads);
    }

    #[test]
    fn arrivals_stamp_jobs_and_stream() {
        use crate::arrivals::ArrivalProcess;
        let seq = small_sequence(6);
        let arrivals = ArrivalProcess::Poisson {
            mean_gap_us: 60_000,
        }
        .generate(seq.len(), 11);
        let cell = CellConfig::new(PolicyKind::Lru, 4);
        let (jobs, _) = prepare_jobs_with_arrivals(&seq, Some(&arrivals), &cell).unwrap();
        assert!(jobs.iter().zip(&arrivals).all(|(j, &a)| j.arrival == a));
        let out = run_cell_with_arrivals(&seq, Some(&arrivals), &cell).unwrap();
        assert_eq!(
            out.stats.executed as usize,
            seq.iter().map(|g| g.len()).sum::<usize>()
        );
        // Sojourns are well-defined and the run is deterministic.
        let again = run_cell_with_arrivals(&seq, Some(&arrivals), &cell).unwrap();
        assert_eq!(out.stats.mean_sojourn_ms(), again.stats.mean_sojourn_ms());
    }

    #[test]
    #[should_panic(expected = "one arrival instant per application")]
    fn mismatched_arrival_length_panics() {
        let seq = small_sequence(7);
        let arrivals = vec![SimTime::ZERO; seq.len() - 1];
        let _ =
            prepare_jobs_with_arrivals(&seq, Some(&arrivals), &CellConfig::new(PolicyKind::Lru, 4));
    }

    #[test]
    fn replacement_calls_counted() {
        let seq = small_sequence(5);
        let out = run_cell(&seq, &CellConfig::new(PolicyKind::Lru, 4)).unwrap();
        assert!(out.replacement_calls > 0);
        assert!(out.total_time >= out.replacement_time);
    }
}
