//! Property-based tests for the task-graph substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtr_sim::SimDuration;
use rtr_taskgraph::analysis::analyze;
use rtr_taskgraph::generate::{self, GenConfig};
use rtr_taskgraph::graph::TaskGraph;
use rtr_taskgraph::recseq::reconfiguration_sequence;
use rtr_taskgraph::serialize::{from_json, to_json};
use rtr_taskgraph::topo::{is_topological_order, topological_order};

/// Strategy: an arbitrary generated DAG, labelled by generator kind.
fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (0u8..5, any::<u64>(), 1usize..20, 0.0f64..1.0).prop_map(|(kind, seed, size, p)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GenConfig::default();
        match kind {
            0 => generate::chain(&mut rng, "chain", size, &cfg),
            1 => generate::fork_join(&mut rng, "fj", size, &cfg),
            2 => generate::layered(&mut rng, "layered", (size % 6) + 1, 4, p, &cfg),
            3 => generate::series_parallel(&mut rng, "sp", size, &cfg),
            _ => generate::gnp_dag(&mut rng, "gnp", size, p, &cfg),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn generated_graphs_have_valid_topological_order(g in arb_graph()) {
        let order = topological_order(&g).expect("generated graphs are acyclic");
        prop_assert!(is_topological_order(&g, &order));
    }

    #[test]
    fn reconfiguration_sequence_is_topological(g in arb_graph()) {
        let seq = reconfiguration_sequence(&g);
        prop_assert!(is_topological_order(&g, &seq));
    }

    #[test]
    fn asap_respects_dependencies(g in arb_graph()) {
        let a = analyze(&g);
        for id in g.node_ids() {
            for &p in g.preds(id) {
                let pred_finish = a.asap_start[p.idx()] + g.exec_time(p);
                prop_assert!(a.asap_start[id.idx()] >= pred_finish);
            }
        }
    }

    #[test]
    fn alap_never_before_asap(g in arb_graph()) {
        let a = analyze(&g);
        for id in g.node_ids() {
            prop_assert!(a.alap_start[id.idx()] >= a.asap_start[id.idx()]);
        }
    }

    #[test]
    fn critical_path_bounds(g in arb_graph()) {
        let a = analyze(&g);
        let max_single = g.nodes().iter().map(|n| n.exec_time).max().unwrap();
        prop_assert!(a.critical_path >= max_single);
        prop_assert!(a.critical_path <= g.total_exec_time());
    }

    #[test]
    fn critical_path_equals_sum_iff_effectively_serial(g in arb_graph()) {
        let a = analyze(&g);
        // Width 1 means every level has one node, so the graph is a chain
        // of levels and the critical path must be the sum of all times.
        if a.width() == 1 {
            prop_assert_eq!(a.critical_path, g.total_exec_time());
        }
    }

    #[test]
    fn json_round_trip(g in arb_graph()) {
        let back = from_json(&to_json(&g)).expect("round trip parses");
        prop_assert_eq!(back, g);
    }

    #[test]
    fn levels_partition_nodes(g in arb_graph()) {
        let a = analyze(&g);
        let total: usize = a.levels.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.len());
        prop_assert_eq!(a.depth(), a.levels.len());
    }

    #[test]
    fn slack_zero_on_some_critical_node(g in arb_graph()) {
        let a = analyze(&g);
        // At least one node lies on the critical path.
        let has_critical = g.node_ids().any(|id| a.slack(id) == SimDuration::ZERO);
        prop_assert!(has_critical);
    }
}
