//! Task-graph substrate for the `reconfig-reuse` workspace.
//!
//! Applications targeting the reconfigurable system are Directed Acyclic
//! Graphs (DAGs): nodes are hardware tasks (each identified by the
//! *configuration* — bitstream — it needs and an execution time), edges
//! are data dependencies. This crate provides:
//!
//! * [`TaskGraph`] — an arena-backed immutable DAG with `u32` ids,
//!   validated at construction ([`TaskGraphBuilder`]).
//! * [`analysis`] — ASAP/ALAP times, critical path, slack, levels.
//! * [`recseq`] — the design-time *reconfiguration sequence* (the order
//!   in which the execution manager loads a graph's tasks).
//! * [`benchmarks`] — the paper's graphs: the Fig. 2 and Fig. 3
//!   motivational examples (validated against the paper's numbers) and
//!   reconstructions of the JPEG / MPEG-1 / Hough multimedia applications.
//! * [`generate`] — seeded random DAG generators (layered, chain,
//!   fork-join, series-parallel) for stress tests and ablations.
//! * [`serialize`] — JSON import/export and Graphviz DOT rendering.
//! * [`template`] — interned templates with their design-time artifacts
//!   ([`TemplateSet`]), shared across engines, threads and grid cells.

pub mod analysis;
pub mod benchmarks;
pub mod generate;
pub mod graph;
pub mod recseq;
pub mod serialize;
pub mod template;
pub mod topo;

pub use graph::{ConfigId, GraphError, NodeId, TaskGraph, TaskGraphBuilder, TaskNode};
pub use recseq::reconfiguration_sequence;
pub use template::{TemplateArtifacts, TemplateSet};
