//! The paper's task graphs.
//!
//! Two families:
//!
//! * **Motivational examples** — the graphs of Fig. 2 and Fig. 3. Their
//!   structures are reverse-engineered from the figures' schedules; the
//!   reconstructions below reproduce *every* number the paper reports for
//!   them (reuse rates, overheads, mobility values — see the golden tests
//!   in the workspace root).
//! * **Multimedia benchmarks** — JPEG decoder (4 nodes), MPEG-1 encoder
//!   (5 nodes) and Hough-transform pattern recognition (6 nodes), "task
//!   graphs extracted from actual multimedia applications" (§VI). The
//!   paper publishes node counts and initial execution times
//!   (79 / 37 / 94 ms, Table II) but not the exact structures; the
//!   reconstructions match node count, critical path, the 15-task total
//!   and millisecond task granularity, which are the properties the
//!   experiments depend on.
//!
//! Configuration-id allocation (stable across the workspace):
//! Fig. 2 and Fig. 3 use the paper's task numbers 1–7 (the two figures
//! are never mixed in one experiment); JPEG uses 10–13, MPEG-1 20–24,
//! Hough 30–35.

use crate::graph::{ConfigId, TaskGraph, TaskGraphBuilder};
use rtr_sim::SimDuration;

fn ms(x: u64) -> SimDuration {
    SimDuration::from_ms(x)
}

/// Fig. 2, Task Graph 1: chain `T1(2.5) -> T2(2.5) -> T3(4)`.
pub fn fig2_tg1() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("Fig2-TG1");
    let t1 = b.node("T1", ConfigId(1), SimDuration::from_us(2_500));
    let t2 = b.node("T2", ConfigId(2), SimDuration::from_us(2_500));
    let t3 = b.node("T3", ConfigId(3), ms(4));
    b.edge(t1, t2).edge(t2, t3);
    b.build().expect("fig2_tg1 is statically valid")
}

/// Fig. 2, Task Graph 2: chain `T4(4) -> T5(4)`.
pub fn fig2_tg2() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("Fig2-TG2");
    let t4 = b.node("T4", ConfigId(4), ms(4));
    let t5 = b.node("T5", ConfigId(5), ms(4));
    b.edge(t4, t5);
    b.build().expect("fig2_tg2 is statically valid")
}

/// Fig. 3, Task Graph 1: fork `T1(12) -> {T2(6), T3(6)}`.
pub fn fig3_tg1() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("Fig3-TG1");
    let t1 = b.node("T1", ConfigId(1), ms(12));
    let t2 = b.node("T2", ConfigId(2), ms(6));
    let t3 = b.node("T3", ConfigId(3), ms(6));
    b.edge(t1, t2).edge(t1, t3);
    b.build().expect("fig3_tg1 is statically valid")
}

/// Fig. 3 / Fig. 7, Task Graph 2: diamond
/// `T4(12) -> {T5(8), T6(6)} -> T7(6)`.
///
/// This reconstruction reproduces the paper's Fig. 7 mobility traces
/// exactly: reference schedule 30 ms; delaying T5 once gives 36 ms;
/// delaying T6 once gives 32 ms; T7 can be delayed once for free and
/// twice costs 32 ms — so the mobilities are (T5, T6, T7) = (0, 0, 1).
pub fn fig3_tg2() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("Fig3-TG2");
    let t4 = b.node("T4", ConfigId(4), ms(12));
    let t5 = b.node("T5", ConfigId(5), ms(8));
    let t6 = b.node("T6", ConfigId(6), ms(6));
    let t7 = b.node("T7", ConfigId(7), ms(6));
    b.edge(t4, t5).edge(t4, t6).edge(t5, t7).edge(t6, t7);
    b.build().expect("fig3_tg2 is statically valid")
}

/// JPEG decoder, 4 nodes, initial execution time 79 ms (Table II).
///
/// Classic decode pipeline: variable-length decoding, inverse
/// quantisation, inverse DCT, colour conversion — a chain, so the
/// critical path is the sum 21 + 15 + 26 + 17 = 79 ms.
pub fn jpeg() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("JPEG");
    let vld = b.node("VLD", ConfigId(10), ms(21));
    let iq = b.node("IQ", ConfigId(11), ms(15));
    let idct = b.node("IDCT", ConfigId(12), ms(26));
    let cc = b.node("ColorConv", ConfigId(13), ms(17));
    b.edge(vld, iq).edge(iq, idct).edge(idct, cc);
    b.build().expect("jpeg is statically valid")
}

/// MPEG-1 encoder, 5 nodes, initial execution time 37 ms (Table II).
///
/// Motion estimation feeds the DCT/quantisation pipe; the quantised
/// coefficients go both to entropy coding (VLC) and to the local
/// reconstruction loop. Critical path ME(12) + DCT(8) + Q(5) + VLC(12)
/// = 37 ms; the reconstruction branch (9 ms) runs in parallel with VLC.
pub fn mpeg1() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("MPEG-1");
    let me = b.node("ME", ConfigId(20), ms(12));
    let dct = b.node("DCT", ConfigId(21), ms(8));
    let q = b.node("Q", ConfigId(22), ms(5));
    let vlc = b.node("VLC", ConfigId(23), ms(12));
    let rec = b.node("Recon", ConfigId(24), ms(9));
    b.edge(me, dct).edge(dct, q).edge(q, vlc).edge(q, rec);
    b.build().expect("mpeg1 is statically valid")
}

/// Hough-transform pattern recognition, 6 nodes, initial execution time
/// 94 ms (Table II).
///
/// Gaussian smoothing, horizontal/vertical gradient computation (in
/// parallel), gradient magnitude, thresholding and the Hough voting
/// stage. Critical path 18 + 18 + 20 + 8 + 30 = 94 ms.
pub fn hough() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("HOUGH");
    let smooth = b.node("Smooth", ConfigId(30), ms(18));
    let gx = b.node("GradX", ConfigId(31), ms(18));
    let gy = b.node("GradY", ConfigId(32), ms(18));
    let mag = b.node("Magnitude", ConfigId(33), ms(20));
    let thr = b.node("Threshold", ConfigId(34), ms(8));
    let vote = b.node("HoughVote", ConfigId(35), ms(30));
    b.edge(smooth, gx)
        .edge(smooth, gy)
        .edge(gx, mag)
        .edge(gy, mag)
        .edge(mag, thr)
        .edge(thr, vote);
    b.build().expect("hough is statically valid")
}

/// The multimedia benchmark set used for the Fig. 9 experiments, in the
/// paper's order (JPEG, MPEG-1, Hough).
pub fn multimedia_suite() -> Vec<TaskGraph> {
    vec![jpeg(), mpeg1(), hough()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::recseq::reconfiguration_sequence;
    use crate::NodeId;

    #[test]
    fn node_counts_match_paper() {
        assert_eq!(jpeg().len(), 4);
        assert_eq!(mpeg1().len(), 5);
        assert_eq!(hough().len(), 6);
        // "15 different tasks compete for just 4 reconfigurable units".
        assert_eq!(
            multimedia_suite().iter().map(TaskGraph::len).sum::<usize>(),
            15
        );
    }

    #[test]
    fn initial_execution_times_match_table2() {
        assert_eq!(analyze(&jpeg()).critical_path, ms(79));
        assert_eq!(analyze(&mpeg1()).critical_path, ms(37));
        assert_eq!(analyze(&hough()).critical_path, ms(94));
    }

    #[test]
    fn config_ids_are_globally_unique_in_multimedia_suite() {
        let mut seen = std::collections::HashSet::new();
        for g in multimedia_suite() {
            for n in g.nodes() {
                assert!(seen.insert(n.config), "duplicate config {}", n.config);
            }
        }
        assert_eq!(seen.len(), 15);
    }

    #[test]
    fn fig2_graphs_shape() {
        let tg1 = fig2_tg1();
        assert_eq!(tg1.len(), 3);
        assert_eq!(analyze(&tg1).critical_path, SimDuration::from_us(9_000));
        let tg2 = fig2_tg2();
        assert_eq!(tg2.len(), 2);
        assert_eq!(analyze(&tg2).critical_path, ms(8));
    }

    #[test]
    fn fig3_graphs_shape() {
        assert_eq!(analyze(&fig3_tg1()).critical_path, ms(18));
        assert_eq!(analyze(&fig3_tg2()).critical_path, ms(26));
    }

    #[test]
    fn reconfiguration_sequences_follow_paper_numbering() {
        let seq = |g: &TaskGraph| {
            reconfiguration_sequence(g)
                .iter()
                .map(|n| g.node(*n).name.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(&fig2_tg1()), ["T1", "T2", "T3"]);
        assert_eq!(seq(&fig3_tg2()), ["T4", "T5", "T6", "T7"]);
        assert_eq!(seq(&hough())[0], "Smooth");
    }

    #[test]
    fn mpeg_has_parallel_tail() {
        let g = mpeg1();
        let a = analyze(&g);
        // VLC and Recon share the last level.
        assert_eq!(a.levels.last().unwrap().len(), 2);
        assert_eq!(a.slack(NodeId(4)), ms(3)); // Recon: 12 - 9
    }
}
