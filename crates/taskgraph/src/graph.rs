//! Core DAG representation.

use rtr_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a *configuration* (a bitstream). Two task instances with
/// the same `ConfigId` can reuse each other's reconfiguration — this is
/// the key the whole replacement machinery works on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ConfigId(pub u32);

impl fmt::Display for ConfigId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Index of a node within one [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index usable for slice access.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One task of a task graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskNode {
    /// Human-readable label (e.g. `"IDCT"`, or `"T5"` for paper graphs).
    pub name: String,
    /// The configuration this task needs loaded on an RU.
    pub config: ConfigId,
    /// Execution time once started (must be non-zero).
    pub exec_time: SimDuration,
}

/// Errors detected while building a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no nodes.
    Empty,
    /// An edge references a node id that was never created.
    UnknownNode(NodeId),
    /// An edge from a node to itself.
    SelfLoop(NodeId),
    /// The same edge was added twice.
    DuplicateEdge(NodeId, NodeId),
    /// The edges form a cycle; the payload is one node on it.
    Cycle(NodeId),
    /// A task was given a zero execution time.
    ZeroExecTime(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "task graph has no nodes"),
            GraphError::UnknownNode(n) => write!(f, "edge references unknown node {n}"),
            GraphError::SelfLoop(n) => write!(f, "self-loop on node {n}"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            GraphError::Cycle(n) => write!(f, "dependency cycle through node {n}"),
            GraphError::ZeroExecTime(n) => {
                write!(f, "node {n} has zero execution time")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable, validated task DAG.
///
/// Construction goes through [`TaskGraphBuilder`], which rejects cycles,
/// self-loops, duplicate edges and zero execution times, so every
/// `TaskGraph` in existence satisfies those invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskGraph {
    name: String,
    nodes: Vec<TaskNode>,
    preds: Vec<Vec<NodeId>>,
    succs: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl TaskGraph {
    /// Graph label (e.g. `"JPEG"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: builders reject empty graphs.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// All node ids in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this graph.
    pub fn node(&self, id: NodeId) -> &TaskNode {
        &self.nodes[id.idx()]
    }

    /// All nodes in index order.
    pub fn nodes(&self) -> &[TaskNode] {
        &self.nodes
    }

    /// Direct predecessors of `id`.
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        &self.preds[id.idx()]
    }

    /// Direct successors of `id`.
    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id.idx()]
    }

    /// Nodes with no predecessors.
    pub fn sources(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|n| self.preds(*n).is_empty())
    }

    /// Nodes with no successors.
    pub fn sinks(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|n| self.succs(*n).is_empty())
    }

    /// The configuration of node `id`.
    pub fn config_of(&self, id: NodeId) -> ConfigId {
        self.nodes[id.idx()].config
    }

    /// The execution time of node `id`.
    pub fn exec_time(&self, id: NodeId) -> SimDuration {
        self.nodes[id.idx()].exec_time
    }

    /// Sum of all execution times (a lower bound on single-RU makespan).
    pub fn total_exec_time(&self) -> SimDuration {
        self.nodes.iter().map(|n| n.exec_time).sum()
    }
}

/// Incremental builder for [`TaskGraph`].
#[derive(Debug, Clone, Default)]
pub struct TaskGraphBuilder {
    name: String,
    nodes: Vec<TaskNode>,
    edges: Vec<(NodeId, NodeId)>,
}

impl TaskGraphBuilder {
    /// Starts a builder for a graph named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TaskGraphBuilder {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a task and returns its id.
    pub fn node(
        &mut self,
        name: impl Into<String>,
        config: ConfigId,
        exec_time: SimDuration,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(TaskNode {
            name: name.into(),
            config,
            exec_time,
        });
        id
    }

    /// Records a dependency `from -> to` (`to` cannot start until `from`
    /// finishes). Validation happens in [`Self::build`].
    pub fn edge(&mut self, from: NodeId, to: NodeId) -> &mut Self {
        self.edges.push((from, to));
        self
    }

    /// Validates and freezes the graph.
    pub fn build(self) -> Result<TaskGraph, GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        let n = self.nodes.len();
        for (id, node) in self.nodes.iter().enumerate() {
            if node.exec_time.is_zero() {
                return Err(GraphError::ZeroExecTime(NodeId(id as u32)));
            }
        }
        let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(from, to) in &self.edges {
            if from.idx() >= n {
                return Err(GraphError::UnknownNode(from));
            }
            if to.idx() >= n {
                return Err(GraphError::UnknownNode(to));
            }
            if from == to {
                return Err(GraphError::SelfLoop(from));
            }
            if succs[from.idx()].contains(&to) {
                return Err(GraphError::DuplicateEdge(from, to));
            }
            succs[from.idx()].push(to);
            preds[to.idx()].push(from);
        }
        // Canonicalise adjacency order so structurally equal graphs
        // compare equal regardless of edge insertion order.
        for list in preds.iter_mut().chain(succs.iter_mut()) {
            list.sort_unstable();
        }
        let graph = TaskGraph {
            name: self.name,
            nodes: self.nodes,
            preds,
            succs,
            edge_count: self.edges.len(),
        };
        // Cycle check via Kahn's algorithm.
        if let Err(node) = crate::topo::topological_order(&graph) {
            return Err(GraphError::Cycle(node));
        }
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_ms(x)
    }

    fn chain3() -> TaskGraph {
        let mut b = TaskGraphBuilder::new("chain");
        let a = b.node("a", ConfigId(1), ms(1));
        let c = b.node("b", ConfigId(2), ms(2));
        let d = b.node("c", ConfigId(3), ms(3));
        b.edge(a, c).edge(c, d);
        b.build().unwrap()
    }

    #[test]
    fn builds_and_exposes_structure() {
        let g = chain3();
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.preds(NodeId(1)), &[NodeId(0)]);
        assert_eq!(g.succs(NodeId(1)), &[NodeId(2)]);
        assert_eq!(g.sources().collect::<Vec<_>>(), vec![NodeId(0)]);
        assert_eq!(g.sinks().collect::<Vec<_>>(), vec![NodeId(2)]);
        assert_eq!(g.total_exec_time(), ms(6));
        assert_eq!(g.config_of(NodeId(2)), ConfigId(3));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            TaskGraphBuilder::new("e").build().unwrap_err(),
            GraphError::Empty
        );
    }

    #[test]
    fn rejects_zero_exec_time() {
        let mut b = TaskGraphBuilder::new("z");
        b.node("t", ConfigId(1), SimDuration::ZERO);
        assert_eq!(b.build().unwrap_err(), GraphError::ZeroExecTime(NodeId(0)));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = TaskGraphBuilder::new("s");
        let a = b.node("a", ConfigId(1), ms(1));
        b.edge(a, a);
        assert_eq!(b.build().unwrap_err(), GraphError::SelfLoop(a));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut b = TaskGraphBuilder::new("d");
        let a = b.node("a", ConfigId(1), ms(1));
        let c = b.node("b", ConfigId(2), ms(1));
        b.edge(a, c).edge(a, c);
        assert_eq!(b.build().unwrap_err(), GraphError::DuplicateEdge(a, c));
    }

    #[test]
    fn rejects_unknown_node() {
        let mut b = TaskGraphBuilder::new("u");
        let a = b.node("a", ConfigId(1), ms(1));
        b.edge(a, NodeId(7));
        assert_eq!(b.build().unwrap_err(), GraphError::UnknownNode(NodeId(7)));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = TaskGraphBuilder::new("c");
        let a = b.node("a", ConfigId(1), ms(1));
        let c = b.node("b", ConfigId(2), ms(1));
        let d = b.node("c", ConfigId(3), ms(1));
        b.edge(a, c).edge(c, d).edge(d, a);
        assert!(matches!(b.build().unwrap_err(), GraphError::Cycle(_)));
    }

    #[test]
    fn allows_repeated_configs_within_graph() {
        let mut b = TaskGraphBuilder::new("rep");
        let a = b.node("dct1", ConfigId(9), ms(1));
        let c = b.node("dct2", ConfigId(9), ms(1));
        b.edge(a, c);
        let g = b.build().unwrap();
        assert_eq!(g.config_of(NodeId(0)), g.config_of(NodeId(1)));
    }

    #[test]
    fn single_node_graph_is_valid() {
        let mut b = TaskGraphBuilder::new("one");
        b.node("only", ConfigId(4), ms(5));
        let g = b.build().unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.sources().count(), 1);
        assert_eq!(g.sinks().count(), 1);
    }

    #[test]
    fn error_display_messages() {
        assert!(GraphError::Empty.to_string().contains("no nodes"));
        assert!(GraphError::Cycle(NodeId(3)).to_string().contains("n3"));
    }
}
