//! Graph serialisation: a JSON interchange format and Graphviz DOT export.
//!
//! `TaskGraph` itself is not directly `Deserialize` because arbitrary
//! adjacency data could violate its invariants; instead deserialisation
//! goes through [`GraphSpec`], which is re-validated by the normal
//! builder path.

use crate::graph::{ConfigId, GraphError, NodeId, TaskGraph, TaskGraphBuilder};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Flat, serde-friendly description of a task graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphSpec {
    /// Graph label.
    pub name: String,
    /// Node list; index in this list is the node id.
    pub nodes: Vec<NodeSpec>,
    /// Edges as `(from, to)` node-index pairs.
    pub edges: Vec<(u32, u32)>,
}

/// One node of a [`GraphSpec`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Node label.
    pub name: String,
    /// Configuration (bitstream) id.
    pub config: u32,
    /// Execution time in microseconds.
    pub exec_us: u64,
}

impl From<&TaskGraph> for GraphSpec {
    fn from(g: &TaskGraph) -> Self {
        GraphSpec {
            name: g.name().to_string(),
            nodes: g
                .nodes()
                .iter()
                .map(|n| NodeSpec {
                    name: n.name.clone(),
                    config: n.config.0,
                    exec_us: n.exec_time.as_us(),
                })
                .collect(),
            edges: g
                .node_ids()
                .flat_map(|n| g.succs(n).iter().map(move |s| (n.0, s.0)))
                .collect(),
        }
    }
}

impl TryFrom<GraphSpec> for TaskGraph {
    type Error = GraphError;

    fn try_from(spec: GraphSpec) -> Result<Self, GraphError> {
        let mut b = TaskGraphBuilder::new(spec.name);
        for n in spec.nodes {
            b.node(
                n.name,
                ConfigId(n.config),
                rtr_sim::SimDuration::from_us(n.exec_us),
            );
        }
        for (from, to) in spec.edges {
            b.edge(NodeId(from), NodeId(to));
        }
        b.build()
    }
}

/// Serialises `g` to pretty JSON.
pub fn to_json(g: &TaskGraph) -> String {
    serde_json::to_string_pretty(&GraphSpec::from(g)).expect("GraphSpec serialisation is total")
}

/// Errors from [`from_json`].
#[derive(Debug)]
pub enum ParseError {
    /// The input is not valid JSON for a [`GraphSpec`].
    Json(serde_json::Error),
    /// The JSON decoded but describes an invalid graph.
    Graph(GraphError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Json(e) => write!(f, "invalid graph JSON: {e}"),
            ParseError::Graph(e) => write!(f, "invalid graph structure: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses a graph from JSON produced by [`to_json`] (or hand-written in
/// the same schema), re-validating all invariants.
pub fn from_json(json: &str) -> Result<TaskGraph, ParseError> {
    let spec: GraphSpec = serde_json::from_str(json).map_err(ParseError::Json)?;
    TaskGraph::try_from(spec).map_err(ParseError::Graph)
}

/// Renders `g` in Graphviz DOT syntax (nodes labelled
/// `name\nconfig/exec`).
pub fn to_dot(g: &TaskGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", g.name());
    let _ = writeln!(out, "  rankdir=TB;");
    for id in g.node_ids() {
        let n = g.node(id);
        let _ = writeln!(
            out,
            "  {} [label=\"{}\\n{} {}\"];",
            id.0, n.name, n.config, n.exec_time
        );
    }
    for id in g.node_ids() {
        for s in g.succs(id) {
            let _ = writeln!(out, "  {} -> {};", id.0, s.0);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn json_round_trip_preserves_graph() {
        for g in benchmarks::multimedia_suite() {
            let json = to_json(&g);
            let back = from_json(&json).unwrap();
            assert_eq!(back, g);
        }
    }

    #[test]
    fn json_round_trip_fig_graphs() {
        for g in [
            benchmarks::fig2_tg1(),
            benchmarks::fig2_tg2(),
            benchmarks::fig3_tg1(),
            benchmarks::fig3_tg2(),
        ] {
            assert_eq!(from_json(&to_json(&g)).unwrap(), g);
        }
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(matches!(from_json("{nope"), Err(ParseError::Json(_))));
    }

    #[test]
    fn rejects_structurally_invalid_graphs() {
        let json = r#"{
            "name": "bad",
            "nodes": [
                {"name": "a", "config": 1, "exec_us": 1000},
                {"name": "b", "config": 2, "exec_us": 1000}
            ],
            "edges": [[0, 1], [1, 0]]
        }"#;
        match from_json(json) {
            Err(ParseError::Graph(GraphError::Cycle(_))) => {}
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_zero_exec_time_via_json() {
        let json = r#"{
            "name": "bad",
            "nodes": [{"name": "a", "config": 1, "exec_us": 0}],
            "edges": []
        }"#;
        assert!(matches!(
            from_json(json),
            Err(ParseError::Graph(GraphError::ZeroExecTime(_)))
        ));
    }

    #[test]
    fn dot_mentions_every_node_and_edge() {
        let g = benchmarks::mpeg1();
        let dot = to_dot(&g);
        assert!(dot.contains("digraph \"MPEG-1\""));
        for n in g.nodes() {
            assert!(dot.contains(&n.name));
        }
        assert_eq!(dot.matches(" -> ").count(), g.edge_count());
    }
}
