//! Topological ordering (Kahn's algorithm).

use crate::graph::{NodeId, TaskGraph};

/// Returns the nodes in a topological order (ties broken by node index,
/// so the result is deterministic), or `Err(node)` with some node that
/// lies on a cycle.
///
/// Used both for cycle detection at build time and as the canonical
/// iteration order for the analyses in [`crate::analysis`].
pub fn topological_order(g: &TaskGraph) -> Result<Vec<NodeId>, NodeId> {
    let n = g.len();
    let mut indegree: Vec<u32> = (0..n)
        .map(|i| g.preds(NodeId(i as u32)).len() as u32)
        .collect();
    // A BinaryHeap<Reverse<..>> would give the same order; with the small
    // graphs used here a sorted ready list keeps the code simple and the
    // order obviously deterministic.
    let mut ready: Vec<NodeId> = (0..n as u32)
        .map(NodeId)
        .filter(|id| indegree[id.idx()] == 0)
        .collect();
    ready.sort_unstable();
    let mut order = Vec::with_capacity(n);
    // `ready` is kept sorted ascending; pop from the front via an index.
    let mut head = 0usize;
    while head < ready.len() {
        let next = ready[head];
        head += 1;
        order.push(next);
        let mut newly_ready: Vec<NodeId> = Vec::new();
        for &s in g.succs(next) {
            indegree[s.idx()] -= 1;
            if indegree[s.idx()] == 0 {
                newly_ready.push(s);
            }
        }
        newly_ready.sort_unstable();
        // Insert keeping the unprocessed tail sorted.
        let tail = ready.split_off(head);
        let mut merged = Vec::with_capacity(tail.len() + newly_ready.len());
        let (mut i, mut j) = (0, 0);
        while i < tail.len() && j < newly_ready.len() {
            if tail[i] <= newly_ready[j] {
                merged.push(tail[i]);
                i += 1;
            } else {
                merged.push(newly_ready[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&tail[i..]);
        merged.extend_from_slice(&newly_ready[j..]);
        ready.extend(merged);
    }
    if order.len() == n {
        Ok(order)
    } else {
        // Some node still has positive indegree: it lies on (or behind) a
        // cycle. Report the smallest such node.
        let culprit = (0..n as u32)
            .map(NodeId)
            .find(|id| indegree[id.idx()] > 0)
            .expect("cycle detected but no node with positive indegree");
        Err(culprit)
    }
}

/// True if `order` is a permutation of `g`'s nodes that respects every
/// edge. Used by property tests.
pub fn is_topological_order(g: &TaskGraph, order: &[NodeId]) -> bool {
    if order.len() != g.len() {
        return false;
    }
    let mut position = vec![usize::MAX; g.len()];
    for (pos, id) in order.iter().enumerate() {
        if id.idx() >= g.len() || position[id.idx()] != usize::MAX {
            return false;
        }
        position[id.idx()] = pos;
    }
    g.node_ids().all(|n| {
        g.succs(n)
            .iter()
            .all(|&s| position[n.idx()] < position[s.idx()])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ConfigId, TaskGraphBuilder};
    use rtr_sim::SimDuration;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_ms(x)
    }

    fn diamond() -> TaskGraph {
        // 0 -> {1, 2} -> 3
        let mut b = TaskGraphBuilder::new("diamond");
        let n0 = b.node("0", ConfigId(0), ms(1));
        let n1 = b.node("1", ConfigId(1), ms(1));
        let n2 = b.node("2", ConfigId(2), ms(1));
        let n3 = b.node("3", ConfigId(3), ms(1));
        b.edge(n0, n1).edge(n0, n2).edge(n1, n3).edge(n2, n3);
        b.build().unwrap()
    }

    #[test]
    fn orders_diamond_with_id_tiebreak() {
        let g = diamond();
        let order = topological_order(&g).unwrap();
        assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert!(is_topological_order(&g, &order));
    }

    #[test]
    fn id_tiebreak_prefers_lower_ids_even_when_added_later() {
        // Two independent sources 0 and 1; 1 was declared second but has
        // an earlier successor.
        let mut b = TaskGraphBuilder::new("t");
        let a = b.node("a", ConfigId(0), ms(1));
        let c = b.node("b", ConfigId(1), ms(1));
        let d = b.node("c", ConfigId(2), ms(1));
        b.edge(c, d);
        let g = b.build().unwrap();
        let order = topological_order(&g).unwrap();
        assert_eq!(order, vec![a, c, d]);
    }

    #[test]
    fn validator_rejects_bad_orders() {
        let g = diamond();
        assert!(!is_topological_order(
            &g,
            &[NodeId(3), NodeId(1), NodeId(2), NodeId(0)]
        ));
        assert!(!is_topological_order(&g, &[NodeId(0), NodeId(1)]));
        assert!(!is_topological_order(
            &g,
            &[NodeId(0), NodeId(0), NodeId(1), NodeId(2)]
        ));
    }

    #[test]
    fn long_chain_order() {
        let mut b = TaskGraphBuilder::new("chain");
        let ids: Vec<_> = (0..50)
            .map(|i| b.node(format!("t{i}"), ConfigId(i), ms(1)))
            .collect();
        for w in ids.windows(2) {
            b.edge(w[0], w[1]);
        }
        let g = b.build().unwrap();
        let order = topological_order(&g).unwrap();
        assert_eq!(order, ids);
    }
}
