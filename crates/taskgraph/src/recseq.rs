//! The design-time *reconfiguration sequence*.
//!
//! The execution manager of the paper's ref.&nbsp;9 "performs a pre-processing
//! of the task graphs at design time in order to identify in which order
//! the tasks must be loaded in the system. Thus, the tasks are stored in a
//! sorted sequence of reconfigurations that will be followed at run time."
//!
//! The order that reproduces every example in the paper is ASAP start
//! time (zero-latency, unbounded RUs) with node-id tie-breaking: tasks
//! that can run earlier are loaded earlier, and among simultaneous
//! starters the paper's figures always load the lower-numbered task first
//! (e.g. Fig. 3 loads T5 before T6, both ASAP-ready at t = 12).
//!
//! Because builders reject zero execution times, ASAP start strictly
//! increases along every edge, so the sequence is always a topological
//! order — the run-time manager never has to load a successor before a
//! predecessor.

use crate::analysis::analyze;
use crate::graph::{NodeId, TaskGraph};

/// Computes the reconfiguration sequence of `g`.
pub fn reconfiguration_sequence(g: &TaskGraph) -> Vec<NodeId> {
    let analysis = analyze(g);
    let mut order: Vec<NodeId> = g.node_ids().collect();
    order.sort_by_key(|id| (analysis.asap_start[id.idx()], *id));
    debug_assert!(
        crate::topo::is_topological_order(g, &order),
        "reconfiguration sequence must be a topological order"
    );
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ConfigId, TaskGraphBuilder};
    use crate::topo::is_topological_order;
    use rtr_sim::SimDuration;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_ms(x)
    }

    #[test]
    fn fig3_tg2_sequence_is_4_5_6_7() {
        let mut b = TaskGraphBuilder::new("tg2");
        let t4 = b.node("T4", ConfigId(4), ms(12));
        let t5 = b.node("T5", ConfigId(5), ms(8));
        let t6 = b.node("T6", ConfigId(6), ms(6));
        let t7 = b.node("T7", ConfigId(7), ms(6));
        b.edge(t4, t5).edge(t4, t6).edge(t5, t7).edge(t6, t7);
        let g = b.build().unwrap();
        assert_eq!(reconfiguration_sequence(&g), vec![t4, t5, t6, t7]);
    }

    #[test]
    fn earlier_asap_loads_first_regardless_of_id() {
        // Node 0 starts at t=10 (behind a long pred), node 2 is a source.
        let mut b = TaskGraphBuilder::new("g");
        let slow = b.node("slow-start", ConfigId(0), ms(1));
        let long = b.node("long", ConfigId(1), ms(10));
        let src = b.node("src", ConfigId(2), ms(1));
        b.edge(long, slow);
        let g = b.build().unwrap();
        let seq = reconfiguration_sequence(&g);
        assert_eq!(seq, vec![long, src, slow]);
        assert!(is_topological_order(&g, &seq));
    }

    #[test]
    fn ties_broken_by_node_id() {
        let mut b = TaskGraphBuilder::new("par");
        let n0 = b.node("a", ConfigId(0), ms(3));
        let n1 = b.node("b", ConfigId(1), ms(1));
        let n2 = b.node("c", ConfigId(2), ms(2));
        let g = b.build().unwrap();
        assert_eq!(reconfiguration_sequence(&g), vec![n0, n1, n2]);
    }
}
