//! Interned graph templates and their design-time artifacts.
//!
//! The paper's hybrid approach "performs the bulk of the computations
//! at design time": for every *template* (distinct task graph) the
//! reconfiguration sequence, its configuration projection and the
//! predecessor counts are fixed properties, yet a sweep instantiates
//! each template thousands of times across jobs, replications and grid
//! cells. [`TemplateSet`] is the shared intern table that computes
//! these artifacts exactly once per template and hands out
//! [`Arc<TemplateArtifacts>`] clones — safe to share across worker
//! threads and engine resets.
//!
//! Identity is the `Arc<TaskGraph>` allocation (pointer identity, like
//! the rest of the workspace): two structurally equal graphs behind
//! different `Arc`s are different templates. Every entry keeps a clone
//! of its graph `Arc` alive, so a key's address can never be recycled
//! for a different graph while the set holds it — pointer keys stay
//! unambiguous for the set's whole lifetime.

use crate::graph::{ConfigId, NodeId, TaskGraph};
use crate::recseq::reconfiguration_sequence;
use rtr_sim::FxHashMap;
use std::sync::{Arc, RwLock};

/// The design-time artifacts of one graph template: everything the
/// run-time manager walks instead of recomputing.
#[derive(Debug)]
pub struct TemplateArtifacts {
    /// The template graph (kept alive so the interning pointer key
    /// stays valid).
    pub graph: Arc<TaskGraph>,
    /// The reconfiguration sequence (load order, the paper's §III).
    pub rec_seq: Arc<Vec<NodeId>>,
    /// Configuration of each `rec_seq` entry — the request stream the
    /// replacement module sees.
    pub cfg_seq: Arc<Vec<ConfigId>>,
    /// Per-node predecessor counts (indexed by node id) — the initial
    /// dependency state of every instance, copied into the engine's
    /// pooled scratch instead of being re-derived per activation.
    pub pred_counts: Arc<Vec<u32>>,
}

impl TemplateArtifacts {
    /// Runs the design-time phase for `graph`.
    pub fn compute(graph: &Arc<TaskGraph>) -> Arc<Self> {
        let rec_seq = reconfiguration_sequence(graph);
        let cfg_seq = rec_seq.iter().map(|&n| graph.config_of(n)).collect();
        let pred_counts = graph
            .node_ids()
            .map(|id| graph.preds(id).len() as u32)
            .collect();
        Arc::new(TemplateArtifacts {
            graph: Arc::clone(graph),
            rec_seq: Arc::new(rec_seq),
            cfg_seq: Arc::new(cfg_seq),
            pred_counts: Arc::new(pred_counts),
        })
    }
}

/// A thread-safe intern table of [`TemplateArtifacts`], keyed by graph
/// identity. Clone the `Arc<TemplateSet>` into every engine and worker
/// of a sweep so each distinct template is analysed once per process,
/// not once per cell.
#[derive(Debug, Default)]
pub struct TemplateSet {
    entries: RwLock<FxHashMap<usize, Arc<TemplateArtifacts>>>,
}

impl TemplateSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the artifacts of `graph`, computing them on first
    /// access. Concurrent first accesses are serialised by the write
    /// lock, so the computation runs once.
    pub fn get_or_compute(&self, graph: &Arc<TaskGraph>) -> Arc<TemplateArtifacts> {
        let key = Arc::as_ptr(graph) as usize;
        if let Some(hit) = self.entries.read().expect("template set lock").get(&key) {
            return Arc::clone(hit);
        }
        let mut entries = self.entries.write().expect("template set lock");
        Arc::clone(
            entries
                .entry(key)
                .or_insert_with(|| TemplateArtifacts::compute(graph)),
        )
    }

    /// Number of distinct templates interned.
    pub fn len(&self) -> usize {
        self.entries.read().expect("template set lock").len()
    }

    /// True when nothing was interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn artifacts_match_direct_computation() {
        let g = Arc::new(benchmarks::jpeg());
        let tpl = TemplateArtifacts::compute(&g);
        assert_eq!(*tpl.rec_seq, reconfiguration_sequence(&g));
        let cfgs: Vec<ConfigId> = tpl.rec_seq.iter().map(|&n| g.config_of(n)).collect();
        assert_eq!(*tpl.cfg_seq, cfgs);
        for id in g.node_ids() {
            assert_eq!(tpl.pred_counts[id.idx()], g.preds(id).len() as u32);
        }
    }

    #[test]
    fn set_interns_by_graph_identity() {
        let set = TemplateSet::new();
        let g = Arc::new(benchmarks::jpeg());
        let a = set.get_or_compute(&g);
        let b = set.get_or_compute(&g);
        assert!(Arc::ptr_eq(&a, &b), "same template, same artifacts");
        assert_eq!(set.len(), 1);
        // A structurally identical but distinct allocation is a
        // different template.
        let g2 = Arc::new(benchmarks::jpeg());
        let c = set.get_or_compute(&g2);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn entries_pin_their_graphs() {
        // Dropping the caller's Arc must not free the graph while the
        // set holds its key: the entry owns a clone.
        let set = TemplateSet::new();
        let tpl = {
            let g = Arc::new(benchmarks::mpeg1());
            set.get_or_compute(&g)
        };
        assert_eq!(tpl.graph.name(), "MPEG-1");
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn set_is_shareable_across_threads() {
        let set = Arc::new(TemplateSet::new());
        let g = Arc::new(benchmarks::hough());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let set = Arc::clone(&set);
                let g = Arc::clone(&g);
                std::thread::spawn(move || set.get_or_compute(&g).rec_seq.len())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), g.len());
        }
        assert_eq!(set.len(), 1);
    }
}
