//! Seeded random task-graph generators.
//!
//! Used by stress tests, property tests and the ablation experiments to
//! exercise the system far beyond the paper's three benchmark graphs.
//! All generators are deterministic given the caller's RNG, and every
//! produced graph satisfies the [`crate::TaskGraph`] invariants by
//! construction.

use crate::graph::{ConfigId, NodeId, TaskGraph, TaskGraphBuilder};
use rand::{Rng, RngExt};
use rtr_sim::SimDuration;

/// Parameters shared by the generators.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Inclusive range of per-task execution times, in microseconds.
    pub exec_us: (u64, u64),
    /// First configuration id to allocate. Each generated node consumes
    /// the next id unless `config_pool` is set.
    pub config_base: u32,
    /// When `Some(k)`, node configurations are drawn uniformly from
    /// `config_base .. config_base + k` instead of being unique — this
    /// creates *intra-* and *inter-graph* configuration sharing, an
    /// extension the paper does not evaluate but the replacement
    /// machinery must survive.
    pub config_pool: Option<u32>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            exec_us: (1_000, 30_000),
            config_base: 1_000,
            config_pool: None,
        }
    }
}

impl GenConfig {
    fn pick_exec<R: Rng>(&self, rng: &mut R) -> SimDuration {
        let (lo, hi) = self.exec_us;
        assert!(lo > 0 && lo <= hi, "invalid exec_us range");
        SimDuration::from_us(rng.random_range(lo..=hi))
    }

    fn pick_config<R: Rng>(&self, rng: &mut R, ordinal: u32) -> ConfigId {
        match self.config_pool {
            Some(k) if k > 0 => ConfigId(self.config_base + rng.random_range(0..k)),
            _ => ConfigId(self.config_base + ordinal),
        }
    }
}

/// A linear chain of `len` tasks.
pub fn chain<R: Rng>(rng: &mut R, name: &str, len: usize, cfg: &GenConfig) -> TaskGraph {
    assert!(len > 0, "chain length must be positive");
    let mut b = TaskGraphBuilder::new(name);
    let mut prev: Option<NodeId> = None;
    for i in 0..len {
        let id = b.node(
            format!("t{i}"),
            cfg.pick_config(rng, i as u32),
            cfg.pick_exec(rng),
        );
        if let Some(p) = prev {
            b.edge(p, id);
        }
        prev = Some(id);
    }
    b.build().expect("chain generator produces valid graphs")
}

/// A fork-join: one source, `branches` parallel middle tasks, one sink.
pub fn fork_join<R: Rng>(rng: &mut R, name: &str, branches: usize, cfg: &GenConfig) -> TaskGraph {
    assert!(branches > 0, "fork_join needs at least one branch");
    let mut b = TaskGraphBuilder::new(name);
    let src = b.node("fork", cfg.pick_config(rng, 0), cfg.pick_exec(rng));
    let mids: Vec<NodeId> = (0..branches)
        .map(|i| {
            b.node(
                format!("branch{i}"),
                cfg.pick_config(rng, 1 + i as u32),
                cfg.pick_exec(rng),
            )
        })
        .collect();
    let sink = b.node(
        "join",
        cfg.pick_config(rng, 1 + branches as u32),
        cfg.pick_exec(rng),
    );
    for m in &mids {
        b.edge(src, *m).edge(*m, sink);
    }
    b.build()
        .expect("fork_join generator produces valid graphs")
}

/// A layered DAG: `layers` ranks of `1..=max_width` nodes; every node has
/// at least one predecessor in the previous layer, plus extra edges with
/// probability `edge_prob`.
pub fn layered<R: Rng>(
    rng: &mut R,
    name: &str,
    layers: usize,
    max_width: usize,
    edge_prob: f64,
    cfg: &GenConfig,
) -> TaskGraph {
    assert!(
        layers > 0 && max_width > 0,
        "layered needs layers and width"
    );
    let mut b = TaskGraphBuilder::new(name);
    let mut ordinal = 0u32;
    let mut prev_layer: Vec<NodeId> = Vec::new();
    for layer in 0..layers {
        let width = rng.random_range(1..=max_width);
        let mut this_layer = Vec::with_capacity(width);
        for i in 0..width {
            let id = b.node(
                format!("l{layer}n{i}"),
                cfg.pick_config(rng, ordinal),
                cfg.pick_exec(rng),
            );
            ordinal += 1;
            if !prev_layer.is_empty() {
                // Guarantee connectivity to the previous layer...
                let anchor = prev_layer[rng.random_range(0..prev_layer.len())];
                b.edge(anchor, id);
                // ...plus optional extra edges.
                for &p in &prev_layer {
                    if p != anchor && rng.random_bool(edge_prob) {
                        b.edge(p, id);
                    }
                }
            }
            this_layer.push(id);
        }
        prev_layer = this_layer;
    }
    b.build().expect("layered generator produces valid graphs")
}

/// A series-parallel graph built by recursive composition: at each level
/// the generator either chains two sub-graphs or runs them in parallel
/// between a fork and a join node. `size_budget` bounds the node count.
pub fn series_parallel<R: Rng>(
    rng: &mut R,
    name: &str,
    size_budget: usize,
    cfg: &GenConfig,
) -> TaskGraph {
    let mut b = TaskGraphBuilder::new(name);
    let mut ordinal = 0u32;
    let budget = size_budget.max(1);
    let (_first, _last) = sp_rec(rng, &mut b, budget, cfg, &mut ordinal);
    b.build()
        .expect("series_parallel generator produces valid graphs")
}

/// Recursively emits a sub-graph and returns its (entry, exit) nodes.
fn sp_rec<R: Rng>(
    rng: &mut R,
    b: &mut TaskGraphBuilder,
    budget: usize,
    cfg: &GenConfig,
    ordinal: &mut u32,
) -> (NodeId, NodeId) {
    if budget <= 1 {
        let id = b.node(
            format!("sp{}", *ordinal),
            cfg.pick_config(rng, *ordinal),
            cfg.pick_exec(rng),
        );
        *ordinal += 1;
        return (id, id);
    }
    let left_budget = rng.random_range(1..budget);
    let right_budget = budget - left_budget;
    let (l_in, l_out) = sp_rec(rng, b, left_budget, cfg, ordinal);
    let (r_in, r_out) = sp_rec(rng, b, right_budget, cfg, ordinal);
    if rng.random_bool(0.5) {
        // Series composition.
        b.edge(l_out, r_in);
        (l_in, r_out)
    } else {
        // Parallel composition between fresh fork/join nodes.
        let fork = b.node(
            format!("sp{}f", *ordinal),
            cfg.pick_config(rng, *ordinal),
            cfg.pick_exec(rng),
        );
        *ordinal += 1;
        let join = b.node(
            format!("sp{}j", *ordinal),
            cfg.pick_config(rng, *ordinal),
            cfg.pick_exec(rng),
        );
        *ordinal += 1;
        b.edge(fork, l_in).edge(fork, r_in);
        b.edge(l_out, join).edge(r_out, join);
        (fork, join)
    }
}

/// An Erdős–Rényi-style DAG: `n` nodes, each pair `(i, j)` with `i < j`
/// connected with probability `p` (so the node order is the topological
/// order).
pub fn gnp_dag<R: Rng>(rng: &mut R, name: &str, n: usize, p: f64, cfg: &GenConfig) -> TaskGraph {
    assert!(n > 0, "gnp_dag needs at least one node");
    let mut b = TaskGraphBuilder::new(name);
    let ids: Vec<NodeId> = (0..n)
        .map(|i| {
            b.node(
                format!("g{i}"),
                cfg.pick_config(rng, i as u32),
                cfg.pick_exec(rng),
            )
        })
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.random_bool(p) {
                b.edge(ids[i], ids[j]);
            }
        }
    }
    b.build().expect("gnp_dag generator produces valid graphs")
}

/// Generates a family of `count` distinct graph templates for workload
/// experiments, mixing all generator shapes. Config ids are segmented per
/// template (base + 100·index) unless a shared pool is requested.
pub fn template_family<R: Rng>(rng: &mut R, count: usize, base_cfg: &GenConfig) -> Vec<TaskGraph> {
    (0..count)
        .map(|i| {
            let mut cfg = base_cfg.clone();
            if cfg.config_pool.is_none() {
                cfg.config_base = base_cfg.config_base + 100 * i as u32;
            }
            let name = format!("tpl{i}");
            match i % 4 {
                0 => {
                    let len = rng.random_range(3..=8);
                    chain(rng, &name, len, &cfg)
                }
                1 => {
                    let branches = rng.random_range(2..=5);
                    fork_join(rng, &name, branches, &cfg)
                }
                2 => {
                    let layers = rng.random_range(2..=4);
                    layered(rng, &name, layers, 3, 0.4, &cfg)
                }
                _ => {
                    let budget = rng.random_range(4..=9);
                    series_parallel(rng, &name, budget, &cfg)
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn chain_has_line_structure() {
        let g = chain(&mut rng(), "c", 6, &GenConfig::default());
        assert_eq!(g.len(), 6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.sources().count(), 1);
        assert_eq!(g.sinks().count(), 1);
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(&mut rng(), "fj", 4, &GenConfig::default());
        assert_eq!(g.len(), 6);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.sources().count(), 1);
        assert_eq!(g.sinks().count(), 1);
    }

    #[test]
    fn layered_is_connected_to_previous_layer() {
        let g = layered(&mut rng(), "ly", 4, 3, 0.5, &GenConfig::default());
        // Every non-source node has at least one predecessor.
        let sources: Vec<_> = g.sources().collect();
        for id in g.node_ids() {
            if !sources.contains(&id) {
                assert!(!g.preds(id).is_empty());
            }
        }
    }

    #[test]
    fn series_parallel_single_source_sink_budgets() {
        for budget in [1usize, 2, 5, 12] {
            let g = series_parallel(&mut rng(), "sp", budget, &GenConfig::default());
            assert!(g.len() >= budget, "budget {budget} -> {} nodes", g.len());
        }
    }

    #[test]
    fn gnp_respects_probability_extremes() {
        let g0 = gnp_dag(&mut rng(), "p0", 10, 0.0, &GenConfig::default());
        assert_eq!(g0.edge_count(), 0);
        let g1 = gnp_dag(&mut rng(), "p1", 10, 1.0, &GenConfig::default());
        assert_eq!(g1.edge_count(), 45);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = template_family(&mut StdRng::seed_from_u64(7), 6, &GenConfig::default());
        let b = template_family(&mut StdRng::seed_from_u64(7), 6, &GenConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn config_pool_shares_configs() {
        let cfg = GenConfig {
            config_pool: Some(3),
            ..GenConfig::default()
        };
        let g = chain(&mut rng(), "pool", 20, &cfg);
        let distinct: std::collections::HashSet<_> = g.nodes().iter().map(|n| n.config).collect();
        assert!(distinct.len() <= 3);
    }

    #[test]
    fn unique_configs_without_pool() {
        let g = chain(&mut rng(), "uniq", 10, &GenConfig::default());
        let distinct: std::collections::HashSet<_> = g.nodes().iter().map(|n| n.config).collect();
        assert_eq!(distinct.len(), 10);
    }
}
