//! Static (design-time) schedule analysis.
//!
//! All quantities here assume *zero reconfiguration latency and unlimited
//! RUs* — they characterise the graph itself, independent of the hardware.
//! The paper's Table II "Initial Execution Time" column is exactly
//! [`GraphAnalysis::critical_path`] of each benchmark graph.

use crate::graph::{NodeId, TaskGraph};
use crate::topo::topological_order;
use rtr_sim::{SimDuration, SimTime};

/// Per-node and aggregate timing analysis of a task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphAnalysis {
    /// Earliest possible start of each node (zero-latency, unbounded RUs).
    pub asap_start: Vec<SimTime>,
    /// Latest start of each node that still meets the critical path.
    pub alap_start: Vec<SimTime>,
    /// Makespan of the ideal schedule (the "initial execution time" of
    /// the application in the paper's Table II).
    pub critical_path: SimDuration,
    /// Nodes per ASAP level (level = number of edges on the longest
    /// path from a source).
    pub levels: Vec<Vec<NodeId>>,
}

impl GraphAnalysis {
    /// Scheduling slack of a node: how much its start may slip without
    /// extending the critical path.
    pub fn slack(&self, id: NodeId) -> SimDuration {
        self.alap_start[id.idx()].since(self.asap_start[id.idx()])
    }

    /// Number of levels (longest path in *hop* count + 1).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Maximum number of nodes in any level — a cheap lower bound on the
    /// parallelism the graph can exploit.
    pub fn width(&self) -> usize {
        self.levels.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Computes the full analysis.
///
/// # Panics
/// Never panics for graphs built via [`crate::TaskGraphBuilder`] (they
/// are guaranteed acyclic).
pub fn analyze(g: &TaskGraph) -> GraphAnalysis {
    let order = topological_order(g).expect("TaskGraph invariants guarantee acyclicity");
    let n = g.len();

    // ASAP forward pass.
    let mut asap_start = vec![SimTime::ZERO; n];
    let mut hop_level = vec![0usize; n];
    for &id in &order {
        let mut start = SimTime::ZERO;
        let mut level = 0usize;
        for &p in g.preds(id) {
            let pred_finish = asap_start[p.idx()] + g.exec_time(p);
            if pred_finish > start {
                start = pred_finish;
            }
            level = level.max(hop_level[p.idx()] + 1);
        }
        asap_start[id.idx()] = start;
        hop_level[id.idx()] = level;
    }
    let critical_path_end = order
        .iter()
        .map(|&id| asap_start[id.idx()] + g.exec_time(id))
        .max()
        .expect("graph is non-empty");
    let critical_path = critical_path_end.since(SimTime::ZERO);

    // ALAP backward pass.
    let mut alap_start = vec![SimTime::MAX; n];
    for &id in order.iter().rev() {
        let latest_finish = if g.succs(id).is_empty() {
            critical_path_end
        } else {
            g.succs(id)
                .iter()
                .map(|&s| alap_start[s.idx()])
                .min()
                .expect("non-empty successor list")
        };
        alap_start[id.idx()] = latest_finish - g.exec_time(id);
    }

    // Level decomposition.
    let depth = hop_level.iter().copied().max().unwrap_or(0) + 1;
    let mut levels = vec![Vec::new(); depth];
    for id in g.node_ids() {
        levels[hop_level[id.idx()]].push(id);
    }

    GraphAnalysis {
        asap_start,
        alap_start,
        critical_path,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ConfigId, TaskGraphBuilder};

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_ms(x)
    }
    fn at(x: u64) -> SimTime {
        SimTime::from_ms(x)
    }

    /// Fig. 3's Task Graph 2 reconstruction: 4(12) -> {5(8), 6(6)} -> 7(6).
    fn fig3_tg2() -> TaskGraph {
        let mut b = TaskGraphBuilder::new("tg2");
        let t4 = b.node("T4", ConfigId(4), ms(12));
        let t5 = b.node("T5", ConfigId(5), ms(8));
        let t6 = b.node("T6", ConfigId(6), ms(6));
        let t7 = b.node("T7", ConfigId(7), ms(6));
        b.edge(t4, t5).edge(t4, t6).edge(t5, t7).edge(t6, t7);
        b.build().unwrap()
    }

    #[test]
    fn asap_of_fig3_tg2() {
        let g = fig3_tg2();
        let a = analyze(&g);
        assert_eq!(a.asap_start, vec![at(0), at(12), at(12), at(20)]);
        assert_eq!(a.critical_path, ms(26));
    }

    #[test]
    fn alap_and_slack_of_fig3_tg2() {
        let g = fig3_tg2();
        let a = analyze(&g);
        // Critical path runs 4 -> 5 -> 7; task 6 has 2 ms of slack.
        assert_eq!(a.slack(NodeId(0)), SimDuration::ZERO);
        assert_eq!(a.slack(NodeId(1)), SimDuration::ZERO);
        assert_eq!(a.slack(NodeId(2)), ms(2));
        assert_eq!(a.slack(NodeId(3)), SimDuration::ZERO);
    }

    #[test]
    fn levels_and_width() {
        let g = fig3_tg2();
        let a = analyze(&g);
        assert_eq!(a.depth(), 3);
        assert_eq!(a.width(), 2);
        assert_eq!(a.levels[0], vec![NodeId(0)]);
        assert_eq!(a.levels[1], vec![NodeId(1), NodeId(2)]);
        assert_eq!(a.levels[2], vec![NodeId(3)]);
    }

    #[test]
    fn chain_critical_path_is_sum() {
        let mut b = TaskGraphBuilder::new("chain");
        let ids: Vec<_> = [21u64, 15, 26, 17]
            .iter()
            .enumerate()
            .map(|(i, &t)| b.node(format!("t{i}"), ConfigId(i as u32), ms(t)))
            .collect();
        for w in ids.windows(2) {
            b.edge(w[0], w[1]);
        }
        let g = b.build().unwrap();
        let a = analyze(&g);
        assert_eq!(a.critical_path, ms(79));
        assert_eq!(a.width(), 1);
        assert_eq!(a.depth(), 4);
        // In a chain every task is critical.
        for id in g.node_ids() {
            assert_eq!(a.slack(id), SimDuration::ZERO);
        }
    }

    #[test]
    fn independent_tasks_all_level_zero() {
        let mut b = TaskGraphBuilder::new("par");
        for i in 0..5 {
            b.node(format!("t{i}"), ConfigId(i), ms(i as u64 + 1));
        }
        let g = b.build().unwrap();
        let a = analyze(&g);
        assert_eq!(a.depth(), 1);
        assert_eq!(a.width(), 5);
        assert_eq!(a.critical_path, ms(5));
        // Slack of task i is critical_path - exec_i.
        assert_eq!(a.slack(NodeId(0)), ms(4));
        assert_eq!(a.slack(NodeId(4)), ms(0));
    }
}
