//! Manager configuration.

use crate::qos::PreemptionMode;
use rtr_hw::DeviceSpec;
use serde::{Deserialize, Serialize};

/// How much of the future application sequence the replacement module
/// can see — the paper's *Dynamic List* (DL).
///
/// The remaining reconfiguration sequence of the *current* graph is
/// always visible (the manager owns it); the lookahead governs how many
/// *future* task graphs are exposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Lookahead {
    /// No future knowledge beyond the current graph (what a pure
    /// history-based policy such as LRU effectively uses).
    None,
    /// The next `n` enqueued task graphs — "Local LFD (n)" in the paper.
    Graphs(usize),
    /// The entire remaining sequence — the clairvoyant LFD oracle.
    All,
}

impl Lookahead {
    /// Number of future graphs visible given `remaining` enqueued ones.
    pub fn visible_graphs(self, remaining: usize) -> usize {
        match self {
            Lookahead::None => 0,
            Lookahead::Graphs(n) => n.min(remaining),
            Lookahead::All => remaining,
        }
    }
}

/// Configuration-prefetching knobs.
///
/// When the single reconfiguration port is idle and the demand path has
/// nothing to load, the engine's prefetch planner
/// (`crates/manager/src/engine/prefetch.rs`) may speculatively load
/// upcoming configurations (the nearest next uses in the visible
/// window, current graph tail + arrived backlog) into RUs whose
/// residents have *farther* next uses — never evicting a configuration
/// with a strictly nearer next use than the one being fetched (the
/// Fig. 3 hazard), and always yielding the port to demand (an in-flight
/// speculative load is cancelled the moment a demand load needs it).
///
/// `depth == 0` (the default) disables prefetching entirely: the engine
/// takes the exact pre-prefetch code path and reproduces the golden
/// figures bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchConfig {
    /// Maximum number of distinct upcoming configurations the planner
    /// considers per idle-port planning round (nearest next use first).
    /// `0` disables prefetching.
    pub depth: usize,
}

impl PrefetchConfig {
    /// Prefetching disabled (the default; bit-exact with the
    /// pre-prefetch engine).
    pub fn off() -> Self {
        PrefetchConfig { depth: 0 }
    }

    /// Prefetching enabled with the given planning depth.
    pub fn with_depth(depth: usize) -> Self {
        PrefetchConfig { depth }
    }

    /// True when the planner may issue speculative loads.
    pub fn enabled(&self) -> bool {
        self.depth > 0
    }
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig::off()
    }
}

/// Full configuration of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManagerConfig {
    /// Number of reconfigurable units.
    pub rus: usize,
    /// Device parameters (reconfiguration latency, bitstream size,
    /// energy per load).
    pub device: DeviceSpec,
    /// Dynamic-List visibility for the replacement module.
    pub lookahead: Lookahead,
    /// Enables the run-time Skip Events feature (requires jobs carrying
    /// mobility annotations to have any effect).
    pub skip_events: bool,
    /// When false, resident configurations are never reused — every task
    /// instance reloads. This is the "original reconfiguration overhead"
    /// baseline.
    pub reuse_enabled: bool,
    /// Record a full schedule trace (disable for large parameter sweeps).
    pub record_trace: bool,
    /// Speculative configuration prefetching (off by default — the
    /// paper's manager only loads on demand).
    pub prefetch: PrefetchConfig,
    /// Preemption policy for higher-priority arrivals (off by default —
    /// the pre-QoS run-to-completion engine, bit-exact).
    pub preemption: PreemptionMode,
}

impl ManagerConfig {
    /// The paper's default experimental setup: 4 RUs, 4 ms latency,
    /// reuse on, skip off, DL = 1 graph.
    pub fn paper_default() -> Self {
        ManagerConfig {
            rus: 4,
            device: DeviceSpec::paper_default(),
            lookahead: Lookahead::Graphs(1),
            skip_events: false,
            reuse_enabled: true,
            record_trace: true,
            prefetch: PrefetchConfig::off(),
            preemption: PreemptionMode::Off,
        }
    }

    /// Builder-style RU count override.
    pub fn with_rus(mut self, rus: usize) -> Self {
        self.rus = rus;
        self
    }

    /// Builder-style lookahead override.
    pub fn with_lookahead(mut self, lookahead: Lookahead) -> Self {
        self.lookahead = lookahead;
        self
    }

    /// Builder-style Skip Events toggle.
    pub fn with_skip_events(mut self, on: bool) -> Self {
        self.skip_events = on;
        self
    }

    /// Builder-style reuse toggle.
    pub fn with_reuse(mut self, on: bool) -> Self {
        self.reuse_enabled = on;
        self
    }

    /// Builder-style trace-recording toggle.
    pub fn with_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Builder-style prefetch override.
    pub fn with_prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Builder-style preemption-mode override.
    pub fn with_preemption(mut self, mode: PreemptionMode) -> Self {
        self.preemption = mode;
        self
    }
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visible_graphs_clamps_to_remaining() {
        assert_eq!(Lookahead::None.visible_graphs(10), 0);
        assert_eq!(Lookahead::Graphs(4).visible_graphs(2), 2);
        assert_eq!(Lookahead::Graphs(4).visible_graphs(9), 4);
        assert_eq!(Lookahead::All.visible_graphs(7), 7);
    }

    #[test]
    fn builder_chain() {
        let c = ManagerConfig::paper_default()
            .with_rus(6)
            .with_lookahead(Lookahead::All)
            .with_skip_events(true)
            .with_reuse(false)
            .with_trace(false)
            .with_prefetch(PrefetchConfig::with_depth(3))
            .with_preemption(PreemptionMode::Checkpoint);
        assert_eq!(c.rus, 6);
        assert_eq!(c.preemption, PreemptionMode::Checkpoint);
        assert_eq!(c.lookahead, Lookahead::All);
        assert!(c.skip_events);
        assert!(!c.reuse_enabled);
        assert!(!c.record_trace);
        assert_eq!(c.prefetch.depth, 3);
        assert!(c.prefetch.enabled());
    }

    #[test]
    fn preemption_defaults_off_and_legacy_json_loads() {
        assert_eq!(
            ManagerConfig::paper_default().preemption,
            PreemptionMode::Off
        );
        // A pre-QoS serialized config (no `preemption` key) still
        // deserializes, defaulting the mode to Off.
        let mut v = Serialize::serialize(&ManagerConfig::paper_default());
        if let serde::Value::Object(m) = &mut v {
            m.remove("preemption");
        }
        let back = <ManagerConfig as Deserialize>::deserialize(&v).unwrap();
        assert_eq!(back, ManagerConfig::paper_default());
    }

    #[test]
    fn prefetch_defaults_off() {
        assert!(!ManagerConfig::paper_default().prefetch.enabled());
        assert_eq!(PrefetchConfig::default(), PrefetchConfig::off());
        assert!(!PrefetchConfig::off().enabled());
        assert!(PrefetchConfig::with_depth(1).enabled());
    }
}
