//! Manager configuration.

use crate::qos::PreemptionMode;
use rtr_hw::DeviceSpec;
use rtr_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// How much of the future application sequence the replacement module
/// can see — the paper's *Dynamic List* (DL).
///
/// The remaining reconfiguration sequence of the *current* graph is
/// always visible (the manager owns it); the lookahead governs how many
/// *future* task graphs are exposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Lookahead {
    /// No future knowledge beyond the current graph (what a pure
    /// history-based policy such as LRU effectively uses).
    None,
    /// The next `n` enqueued task graphs — "Local LFD (n)" in the paper.
    Graphs(usize),
    /// The entire remaining sequence — the clairvoyant LFD oracle.
    All,
}

impl Lookahead {
    /// Number of future graphs visible given `remaining` enqueued ones.
    pub fn visible_graphs(self, remaining: usize) -> usize {
        match self {
            Lookahead::None => 0,
            Lookahead::Graphs(n) => n.min(remaining),
            Lookahead::All => remaining,
        }
    }
}

/// Configuration-prefetching knobs.
///
/// When the single reconfiguration port is idle and the demand path has
/// nothing to load, the engine's prefetch planner
/// (`crates/manager/src/engine/prefetch.rs`) may speculatively load
/// upcoming configurations (the nearest next uses in the visible
/// window, current graph tail + arrived backlog) into RUs whose
/// residents have *farther* next uses — never evicting a configuration
/// with a strictly nearer next use than the one being fetched (the
/// Fig. 3 hazard), and always yielding the port to demand (an in-flight
/// speculative load is cancelled the moment a demand load needs it).
///
/// `depth == 0` (the default) disables prefetching entirely: the engine
/// takes the exact pre-prefetch code path and reproduces the golden
/// figures bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchConfig {
    /// Maximum number of distinct upcoming configurations the planner
    /// considers per idle-port planning round (nearest next use first).
    /// `0` disables prefetching.
    pub depth: usize,
}

impl PrefetchConfig {
    /// Prefetching disabled (the default; bit-exact with the
    /// pre-prefetch engine).
    pub fn off() -> Self {
        PrefetchConfig { depth: 0 }
    }

    /// Prefetching enabled with the given planning depth.
    pub fn with_depth(depth: usize) -> Self {
        PrefetchConfig { depth }
    }

    /// True when the planner may issue speculative loads.
    pub fn enabled(&self) -> bool {
        self.depth > 0
    }
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig::off()
    }
}

/// Deterministic fault-injection plan.
///
/// A seeded schedule of three hardware fault classes, drawn from a
/// dedicated SplitMix64 stream advanced only at fixed engine dispatch
/// points (so a given `(plan, workload, config)` triple always injects
/// the same faults — replays and subject/reference comparisons stay
/// deterministic):
///
/// * **Transient load failures** (`load_fault_pm`): a demand or
///   speculative reconfiguration completes corrupt (detected by the
///   Fletcher checksum in `rtr-hw::bitstream`) and is retried with
///   exponential backoff up to `max_retries` times; exhausting the
///   budget quarantines the faulty unit.
/// * **Resident-config upsets** (`upset_pm`): an SEU silently
///   invalidates a resident, unclaimed bitstream; it stops counting as
///   reusable and is repaired by the next (re)load of that RU.
/// * **RU hard faults** (`ru_fault_pm`): a unit dies — in-flight work
///   is revoked and replayed elsewhere, the RU is quarantined, and
///   (when `repair_latency` is set) heals back into the pool later.
///
/// All rates are per-mille probabilities evaluated per dispatch point.
/// The default plan is **off**: every rate zero, in which case the
/// engine takes the exact pre-fault code path and reproduces the
/// golden figures bit for bit (same contract as [`PrefetchConfig`] and
/// `PreemptionMode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the fault-decision stream (independent of workload
    /// seeds; same plan + same run ⇒ same faults).
    pub seed: u64,
    /// Per-mille chance that a completing (pre)load arrives corrupt.
    pub load_fault_pm: u16,
    /// Bounded retry budget for corrupt loads; attempt `k` backs off
    /// `latency × 2^(k-1)` before re-occupying the port.
    pub max_retries: u8,
    /// Per-mille chance (per execution-end event) that a resident,
    /// unclaimed configuration suffers an upset.
    pub upset_pm: u16,
    /// Per-mille chance (per execution-end event) that some RU
    /// hard-faults and is quarantined.
    pub ru_fault_pm: u16,
    /// Time a quarantined RU takes to heal back to `Empty`; `None`
    /// means hard faults are permanent for the rest of the run.
    pub repair_latency: Option<SimDuration>,
}

impl FaultPlan {
    /// No faults (the default; bit-exact with the pre-fault engine).
    pub fn off() -> Self {
        FaultPlan {
            seed: 0,
            load_fault_pm: 0,
            max_retries: 0,
            upset_pm: 0,
            ru_fault_pm: 0,
            repair_latency: None,
        }
    }

    /// Mild fault environment: occasional transient load corruption,
    /// rare upsets and hard faults, units heal after 20 ms.
    pub fn low(seed: u64) -> Self {
        FaultPlan {
            seed,
            load_fault_pm: 20,
            max_retries: 3,
            upset_pm: 10,
            ru_fault_pm: 4,
            repair_latency: Some(SimDuration::from_ms(20)),
        }
    }

    /// Hostile fault environment: frequent corruption with a tighter
    /// retry budget, units heal after 40 ms.
    pub fn high(seed: u64) -> Self {
        FaultPlan {
            seed,
            load_fault_pm: 120,
            max_retries: 2,
            upset_pm: 60,
            ru_fault_pm: 25,
            repair_latency: Some(SimDuration::from_ms(40)),
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style transient-load fault knobs.
    pub fn with_load_faults(mut self, per_mille: u16, max_retries: u8) -> Self {
        self.load_fault_pm = per_mille;
        self.max_retries = max_retries;
        self
    }

    /// Builder-style resident-upset rate.
    pub fn with_upsets(mut self, per_mille: u16) -> Self {
        self.upset_pm = per_mille;
        self
    }

    /// Builder-style RU hard-fault knobs.
    pub fn with_ru_faults(mut self, per_mille: u16, repair: Option<SimDuration>) -> Self {
        self.ru_fault_pm = per_mille;
        self.repair_latency = repair;
        self
    }

    /// True when no fault class can ever fire — the engine then runs
    /// the exact pre-fault code path.
    pub fn is_off(&self) -> bool {
        self.load_fault_pm == 0 && self.upset_pm == 0 && self.ru_fault_pm == 0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::off()
    }
}

impl Serialize for FaultPlan {
    fn serialize(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("seed".to_string(), Serialize::serialize(&self.seed));
        m.insert(
            "load_fault_pm".to_string(),
            Serialize::serialize(&self.load_fault_pm),
        );
        m.insert(
            "max_retries".to_string(),
            Serialize::serialize(&self.max_retries),
        );
        m.insert("upset_pm".to_string(), Serialize::serialize(&self.upset_pm));
        m.insert(
            "ru_fault_pm".to_string(),
            Serialize::serialize(&self.ru_fault_pm),
        );
        m.insert(
            "repair_latency".to_string(),
            Serialize::serialize(&self.repair_latency),
        );
        serde::Value::Object(m)
    }
}

impl Deserialize for FaultPlan {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        // `null` (and an absent field, which the shim reads as `null`)
        // is the off plan — pre-fault files stay loadable.
        if matches!(v, serde::Value::Null) {
            return Ok(FaultPlan::off());
        }
        let m = serde::as_object(v)?;
        Ok(FaultPlan {
            seed: serde::field(m, "seed")?,
            load_fault_pm: serde::field(m, "load_fault_pm")?,
            max_retries: serde::field(m, "max_retries")?,
            upset_pm: serde::field(m, "upset_pm")?,
            ru_fault_pm: serde::field(m, "ru_fault_pm")?,
            repair_latency: serde::field(m, "repair_latency")?,
        })
    }
}

/// Full configuration of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManagerConfig {
    /// Number of reconfigurable units.
    pub rus: usize,
    /// Device parameters (reconfiguration latency, bitstream size,
    /// energy per load).
    pub device: DeviceSpec,
    /// Dynamic-List visibility for the replacement module.
    pub lookahead: Lookahead,
    /// Enables the run-time Skip Events feature (requires jobs carrying
    /// mobility annotations to have any effect).
    pub skip_events: bool,
    /// When false, resident configurations are never reused — every task
    /// instance reloads. This is the "original reconfiguration overhead"
    /// baseline.
    pub reuse_enabled: bool,
    /// Record a full schedule trace (disable for large parameter sweeps).
    pub record_trace: bool,
    /// Speculative configuration prefetching (off by default — the
    /// paper's manager only loads on demand).
    pub prefetch: PrefetchConfig,
    /// Preemption policy for higher-priority arrivals (off by default —
    /// the pre-QoS run-to-completion engine, bit-exact).
    pub preemption: PreemptionMode,
    /// Deterministic fault-injection plan (off by default — the
    /// pre-fault fault-free engine, bit-exact).
    pub faults: FaultPlan,
}

impl ManagerConfig {
    /// The paper's default experimental setup: 4 RUs, 4 ms latency,
    /// reuse on, skip off, DL = 1 graph.
    pub fn paper_default() -> Self {
        ManagerConfig {
            rus: 4,
            device: DeviceSpec::paper_default(),
            lookahead: Lookahead::Graphs(1),
            skip_events: false,
            reuse_enabled: true,
            record_trace: true,
            prefetch: PrefetchConfig::off(),
            preemption: PreemptionMode::Off,
            faults: FaultPlan::off(),
        }
    }

    /// Builder-style RU count override.
    pub fn with_rus(mut self, rus: usize) -> Self {
        self.rus = rus;
        self
    }

    /// Builder-style lookahead override.
    pub fn with_lookahead(mut self, lookahead: Lookahead) -> Self {
        self.lookahead = lookahead;
        self
    }

    /// Builder-style Skip Events toggle.
    pub fn with_skip_events(mut self, on: bool) -> Self {
        self.skip_events = on;
        self
    }

    /// Builder-style reuse toggle.
    pub fn with_reuse(mut self, on: bool) -> Self {
        self.reuse_enabled = on;
        self
    }

    /// Builder-style trace-recording toggle.
    pub fn with_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Builder-style prefetch override.
    pub fn with_prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Builder-style preemption-mode override.
    pub fn with_preemption(mut self, mode: PreemptionMode) -> Self {
        self.preemption = mode;
        self
    }

    /// Builder-style fault-plan override.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visible_graphs_clamps_to_remaining() {
        assert_eq!(Lookahead::None.visible_graphs(10), 0);
        assert_eq!(Lookahead::Graphs(4).visible_graphs(2), 2);
        assert_eq!(Lookahead::Graphs(4).visible_graphs(9), 4);
        assert_eq!(Lookahead::All.visible_graphs(7), 7);
    }

    #[test]
    fn builder_chain() {
        let c = ManagerConfig::paper_default()
            .with_rus(6)
            .with_lookahead(Lookahead::All)
            .with_skip_events(true)
            .with_reuse(false)
            .with_trace(false)
            .with_prefetch(PrefetchConfig::with_depth(3))
            .with_preemption(PreemptionMode::Checkpoint);
        assert_eq!(c.rus, 6);
        assert_eq!(c.preemption, PreemptionMode::Checkpoint);
        assert_eq!(c.lookahead, Lookahead::All);
        assert!(c.skip_events);
        assert!(!c.reuse_enabled);
        assert!(!c.record_trace);
        assert_eq!(c.prefetch.depth, 3);
        assert!(c.prefetch.enabled());
    }

    #[test]
    fn preemption_defaults_off_and_legacy_json_loads() {
        assert_eq!(
            ManagerConfig::paper_default().preemption,
            PreemptionMode::Off
        );
        // A pre-QoS serialized config (no `preemption` key) still
        // deserializes, defaulting the mode to Off.
        let mut v = Serialize::serialize(&ManagerConfig::paper_default());
        if let serde::Value::Object(m) = &mut v {
            m.remove("preemption");
        }
        let back = <ManagerConfig as Deserialize>::deserialize(&v).unwrap();
        assert_eq!(back, ManagerConfig::paper_default());
    }

    #[test]
    fn faults_default_off_and_legacy_json_loads() {
        assert!(ManagerConfig::paper_default().faults.is_off());
        assert_eq!(FaultPlan::default(), FaultPlan::off());
        assert!(!FaultPlan::low(1).is_off());
        assert!(!FaultPlan::high(1).is_off());
        // A pre-fault serialized config (no `faults` key) still
        // deserializes, defaulting the plan to off.
        let mut v = Serialize::serialize(&ManagerConfig::paper_default());
        if let serde::Value::Object(m) = &mut v {
            m.remove("faults");
        }
        let back = <ManagerConfig as Deserialize>::deserialize(&v).unwrap();
        assert_eq!(back, ManagerConfig::paper_default());
    }

    #[test]
    fn fault_plan_builders() {
        let p = FaultPlan::off()
            .with_seed(7)
            .with_load_faults(50, 4)
            .with_upsets(9)
            .with_ru_faults(3, Some(SimDuration::from_ms(10)));
        assert_eq!(p.seed, 7);
        assert_eq!(p.load_fault_pm, 50);
        assert_eq!(p.max_retries, 4);
        assert_eq!(p.upset_pm, 9);
        assert_eq!(p.ru_fault_pm, 3);
        assert_eq!(p.repair_latency, Some(SimDuration::from_ms(10)));
        assert!(!p.is_off());
    }

    #[test]
    fn prefetch_defaults_off() {
        assert!(!ManagerConfig::paper_default().prefetch.enabled());
        assert_eq!(PrefetchConfig::default(), PrefetchConfig::off());
        assert!(!PrefetchConfig::off().enabled());
        assert!(PrefetchConfig::with_depth(1).enabled());
    }
}
