//! The zero-latency ("ideal") baseline.
//!
//! The paper expresses overheads "with respect to an ideal schedule
//! where no reconfiguration overhead is generated" (Fig. 2). With zero
//! reconfiguration latency the replacement policy is irrelevant, so the
//! ideal schedule of a job sequence is policy-independent: graphs run
//! back-to-back, and within a graph tasks start as soon as their
//! predecessors finish and an RU is free (list scheduling in
//! reconfiguration-sequence priority order).
//!
//! For graphs whose parallelism never exceeds the RU count — true for
//! every experiment in the paper — this equals the critical path, i.e.
//! the paper's "initial execution time" per application.

use crate::job::JobSpec;
use rtr_sim::{SimDuration, SimTime};
use rtr_taskgraph::{reconfiguration_sequence, TaskGraph};
use std::sync::Arc;

/// Ideal (zero-latency) makespan of a single graph on `rus` units.
pub fn ideal_graph_makespan(g: &TaskGraph, rus: usize) -> SimDuration {
    assert!(rus > 0, "need at least one RU");
    let seq = reconfiguration_sequence(g);
    let n = g.len();
    let mut finish: Vec<Option<SimTime>> = vec![None; n];
    // Free times of the RU pool: we only need the multiset.
    let mut ru_free: Vec<SimTime> = vec![SimTime::ZERO; rus];
    let mut started = vec![false; n];
    let mut remaining = n;
    let mut makespan = SimTime::ZERO;

    while remaining > 0 {
        // Earliest start among unstarted ready tasks, in sequence order.
        let mut progressed = false;
        for &node in &seq {
            if started[node.idx()] {
                continue;
            }
            let deps_ready = g.preds(node).iter().all(|p| finish[p.idx()].is_some());
            if !deps_ready {
                continue;
            }
            let ready_at = g
                .preds(node)
                .iter()
                .map(|p| finish[p.idx()].expect("checked above"))
                .max()
                .unwrap_or(SimTime::ZERO);
            // Take the RU that frees earliest.
            let (ru_idx, &free_at) = ru_free
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .expect("rus > 0");
            let start = ready_at.max(free_at);
            let end = start + g.exec_time(node);
            ru_free[ru_idx] = end;
            finish[node.idx()] = Some(end);
            started[node.idx()] = true;
            remaining -= 1;
            makespan = makespan.max(end);
            progressed = true;
        }
        assert!(progressed, "list scheduling stalled on an acyclic graph");
    }
    makespan.since(SimTime::ZERO)
}

/// Ideal makespan of a full job sequence: graphs execute strictly
/// sequentially in arrival order (ties broken by submission order,
/// matching the streaming engine), each starting no earlier than its
/// arrival. With every arrival at t = 0 — the paper's batch setting —
/// this is the plain sum of per-graph ideals.
pub fn ideal_sequence_makespan(jobs: &[JobSpec], rus: usize) -> SimDuration {
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| (jobs[i].arrival, i));
    ideal_sequence_makespan_with(jobs, order, |g| ideal_graph_makespan(g, rus))
}

/// The sequencing rule itself, shared with the engine's memoised path
/// ([`Engine::outcome`](crate::Engine::outcome)): jobs run strictly
/// sequentially in the given `(arrival, submission)` order, each
/// starting no earlier than its arrival, with `graph_ideal` supplying
/// the per-graph zero-latency makespan (computed here, memoised per
/// template in the engine). This is the single source of truth for the
/// ideal baseline's ordering semantics.
pub fn ideal_sequence_makespan_with(
    jobs: &[JobSpec],
    order: impl IntoIterator<Item = usize>,
    mut graph_ideal: impl FnMut(&Arc<TaskGraph>) -> SimDuration,
) -> SimDuration {
    let mut clock = SimTime::ZERO;
    for i in order {
        let start = clock.max(jobs[i].arrival);
        clock = start + graph_ideal(&jobs[i].graph);
    }
    clock.since(SimTime::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_taskgraph::benchmarks;
    use std::sync::Arc;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_ms(x)
    }

    #[test]
    fn ideal_equals_critical_path_when_rus_suffice() {
        assert_eq!(ideal_graph_makespan(&benchmarks::jpeg(), 4), ms(79));
        assert_eq!(ideal_graph_makespan(&benchmarks::mpeg1(), 4), ms(37));
        assert_eq!(ideal_graph_makespan(&benchmarks::hough(), 4), ms(94));
        assert_eq!(ideal_graph_makespan(&benchmarks::fig3_tg1(), 4), ms(18));
        assert_eq!(ideal_graph_makespan(&benchmarks::fig3_tg2(), 4), ms(26));
    }

    #[test]
    fn single_ru_serialises_everything() {
        let g = benchmarks::mpeg1();
        assert_eq!(ideal_graph_makespan(&g, 1), g.total_exec_time());
    }

    #[test]
    fn limited_rus_extend_parallel_sections() {
        // Hough has a 2-wide level (GradX ∥ GradY, 18 ms each); with one
        // RU they serialise: 94 + 18 = 112.
        assert_eq!(ideal_graph_makespan(&benchmarks::hough(), 1), ms(112));
        assert_eq!(ideal_graph_makespan(&benchmarks::hough(), 2), ms(94));
    }

    #[test]
    fn sequence_is_sum_of_graphs() {
        let jobs = vec![
            JobSpec::new(Arc::new(benchmarks::fig3_tg1())),
            JobSpec::new(Arc::new(benchmarks::fig3_tg2())),
            JobSpec::new(Arc::new(benchmarks::fig3_tg1())),
        ];
        // 18 + 26 + 18 = 62 ms — the ideal baseline of Fig. 3.
        assert_eq!(ideal_sequence_makespan(&jobs, 4), ms(62));
    }

    #[test]
    fn arrivals_insert_idle_gaps_and_reorder() {
        // tg2 (26 ms) arrives at 0, tg1 (18 ms) arrives at 100 ms:
        // the machine idles 100 − 26 = 74 ms, total 118 ms.
        let jobs = vec![
            JobSpec::new(Arc::new(benchmarks::fig3_tg2())),
            JobSpec::new(Arc::new(benchmarks::fig3_tg1()))
                .with_arrival(rtr_sim::SimTime::from_ms(100)),
        ];
        assert_eq!(ideal_sequence_makespan(&jobs, 4), ms(118));
        // Submission order reversed: arrival order still wins, so the
        // ideal is identical.
        let jobs_rev = vec![jobs[1].clone(), jobs[0].clone()];
        assert_eq!(ideal_sequence_makespan(&jobs_rev, 4), ms(118));
    }

    #[test]
    fn fig2_sequence_ideal() {
        let tg1 = Arc::new(benchmarks::fig2_tg1());
        let tg2 = Arc::new(benchmarks::fig2_tg2());
        let jobs: Vec<JobSpec> = [&tg1, &tg2, &tg2, &tg1, &tg2]
            .iter()
            .map(|g| JobSpec::new(Arc::clone(g)))
            .collect();
        // 9 + 8 + 8 + 9 + 8 = 42 ms — the ideal baseline of Fig. 2.
        assert_eq!(ideal_sequence_makespan(&jobs, 4), ms(42));
    }
}
