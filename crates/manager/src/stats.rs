//! Per-run statistics and the overhead metrics of the paper's Fig. 9.

use rtr_hw::TrafficStats;
use rtr_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Counters of the speculative-prefetch subsystem (all zero when
/// prefetching is disabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PrefetchStats {
    /// Speculative loads started on the idle port.
    pub issued: u64,
    /// Speculative loads that ran to completion (resident afterwards).
    pub completed: u64,
    /// Speculative loads aborted because a demand load needed the port.
    pub cancelled: u64,
    /// Prefetched configurations later claimed by the demand path
    /// before being evicted — each hit hid one full load latency.
    pub hits: u64,
    /// Prefetched configurations evicted before any use — the bus
    /// traffic they moved was wasted.
    pub wasted: u64,
}

impl PrefetchStats {
    /// The closed-ledger identities every run must satisfy: each
    /// issued speculative load either completed or was cancelled, and
    /// hit/waste attribution never exceeds the completions. The
    /// `prefetch-accounting` checker asserts this on every validated
    /// run.
    pub fn balanced(&self) -> bool {
        self.issued == self.completed + self.cancelled && self.hits + self.wasted <= self.completed
    }

    /// Fraction of completed prefetches that were later used, in
    /// `[0, 1]` (0 when none completed).
    pub fn hit_ratio(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.hits as f64 / self.completed as f64
        }
    }
}

/// Counters of the fault-injection + recovery subsystem (all zero when
/// the fault plan is off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Faults injected, all classes (transient loads + upsets + RU
    /// hard faults).
    pub injected: u64,
    /// Backoff retries of corrupt loads.
    pub retries: u64,
    /// Upset residents repaired by a later rewrite of the same RU.
    pub repairs: u64,
    /// RUs quarantined out of the pool (hard faults and retry
    /// exhaustion combined).
    pub quarantines: u64,
    /// Quarantined RUs that healed back into the pool.
    pub heals: u64,
    /// Total time the pool spent with at least one RU quarantined.
    pub degraded_time: SimDuration,
    /// Execution time discarded by hard faults (work done before the
    /// fault instant that must be redone elsewhere).
    pub lost_work_cycles: SimDuration,
}

impl Default for FaultStats {
    fn default() -> Self {
        FaultStats {
            injected: 0,
            retries: 0,
            repairs: 0,
            quarantines: 0,
            heals: 0,
            degraded_time: SimDuration::ZERO,
            lost_work_cycles: SimDuration::ZERO,
        }
    }
}

impl FaultStats {
    /// Internal-consistency identities the `fault-accounting` checker
    /// asserts: a unit can only heal after being quarantined, and a
    /// run that never lost a unit accrued no degraded time.
    pub fn balanced(&self) -> bool {
        self.heals <= self.quarantines
            && (self.quarantines > 0 || self.degraded_time == SimDuration::ZERO)
    }
}

/// Sojourn / deadline breakdown for one QoS priority class.
///
/// Percentiles use the nearest-rank definition on the sorted per-graph
/// sojourn times of the class. A class that completed zero jobs reports
/// all-zero durations (integer arithmetic throughout — no `0/0` NaN is
/// possible).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassSojournStats {
    /// The lane priority this row aggregates.
    pub priority: u8,
    /// Task graphs of this class that completed.
    pub jobs: u64,
    /// Completed graphs of this class that finished after their
    /// deadline.
    pub deadline_misses: u64,
    /// Summed lateness (`completion − deadline`) of the missing graphs.
    pub tardiness_total: SimDuration,
    /// Median sojourn time (nearest rank).
    pub p50: SimDuration,
    /// 95th-percentile sojourn time (nearest rank).
    pub p95: SimDuration,
    /// Worst-case sojourn time.
    pub max: SimDuration,
    /// Summed sojourn time (mean = `sojourn_total / jobs`).
    pub sojourn_total: SimDuration,
}

/// Nearest-rank percentile over an ascending-sorted slice; `ZERO` for
/// an empty one.
fn percentile(sorted: &[SimDuration], pct: u64) -> SimDuration {
    if sorted.is_empty() {
        return SimDuration::ZERO;
    }
    let n = sorted.len() as u64;
    let rank = (pct * n).div_ceil(100).max(1).min(n);
    sorted[(rank - 1) as usize]
}

impl ClassSojournStats {
    /// Aggregates one class from its per-graph samples. `samples` is
    /// sorted in place; an empty class yields all-zero durations.
    pub fn from_samples(
        priority: u8,
        samples: &mut [SimDuration],
        deadline_misses: u64,
        tardiness_total: SimDuration,
    ) -> Self {
        samples.sort_unstable();
        ClassSojournStats {
            priority,
            jobs: samples.len() as u64,
            deadline_misses,
            tardiness_total,
            p50: percentile(samples, 50),
            p95: percentile(samples, 95),
            max: samples.last().copied().unwrap_or(SimDuration::ZERO),
            sojourn_total: samples.iter().copied().sum(),
        }
    }

    /// Mean sojourn time in milliseconds (0 for an empty class — never
    /// NaN).
    pub fn mean_sojourn_ms(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.sojourn_total.as_ms_f64() / self.jobs as f64
        }
    }

    /// Fraction of this class's completed graphs that missed their
    /// deadline, in `[0, 1]` (0 for an empty class).
    pub fn miss_rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.jobs as f64
        }
    }
}

/// QoS-scheduling counters of one run (all zero / empty when every job
/// is best-effort and preemption is off — the pre-QoS engine).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QosStats {
    /// Completed graphs that finished after their deadline.
    pub deadline_misses: u64,
    /// Summed lateness (`completion − deadline`) across missed
    /// deadlines.
    pub tardiness_total: SimDuration,
    /// Running graphs suspended by a higher-priority arrival.
    pub preemptions: u64,
    /// In-flight tasks checkpointed at a preemption instant.
    pub checkpoints: u64,
    /// In-flight tasks killed at a preemption instant and replayed from
    /// scratch later.
    pub replayed_nodes: u64,
    /// Execution time discarded by kills (work done before the
    /// preemption instant that must be redone).
    pub lost_work_cycles: SimDuration,
    /// Per-priority sojourn / deadline breakdown, ascending priority.
    /// Only classes that completed at least one graph appear.
    pub class_sojourns: Vec<ClassSojournStats>,
}

impl Default for QosStats {
    fn default() -> Self {
        QosStats {
            deadline_misses: 0,
            tardiness_total: SimDuration::ZERO,
            preemptions: 0,
            checkpoints: 0,
            replayed_nodes: 0,
            lost_work_cycles: SimDuration::ZERO,
            class_sojourns: Vec::new(),
        }
    }
}

impl QosStats {
    /// The class row for a given priority, if any graph of that class
    /// completed.
    pub fn class(&self, priority: u8) -> Option<&ClassSojournStats> {
        self.class_sojourns.iter().find(|c| c.priority == priority)
    }

    /// Ledger identity checked by the `qos-accounting` checker: the
    /// per-class miss/tardiness rows must sum to the run totals.
    pub fn balanced(&self) -> bool {
        let misses: u64 = self.class_sojourns.iter().map(|c| c.deadline_misses).sum();
        let tardiness: SimDuration = self.class_sojourns.iter().map(|c| c.tardiness_total).sum();
        misses == self.deadline_misses && tardiness == self.tardiness_total
    }
}

/// Aggregate outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Name of the replacement policy that produced this run.
    pub policy: String,
    /// Completion time of the last task graph.
    pub makespan: SimDuration,
    /// Task instances executed.
    pub executed: u64,
    /// Task instances whose configuration was reused (no load).
    pub reuses: u64,
    /// Reconfigurations performed.
    pub loads: u64,
    /// Reconfigurations delayed by the Skip Events feature (run-time
    /// skips and forced mobility-probe delays combined).
    pub skips: u64,
    /// Load attempts that found no eviction candidate and retried.
    pub stalls: u64,
    /// Energy / bus-traffic counters.
    pub traffic: TrafficStats,
    /// Speculative-prefetch counters (all zero with prefetch off).
    pub prefetch: PrefetchStats,
    /// Total time the single reconfiguration port spent writing
    /// bitstreams (demand loads, completed prefetches and the written
    /// part of cancelled ones) — the port-utilisation counter of the
    /// `ReconfigController`, surfaced so pooled-vs-fresh equality pins
    /// it.
    pub port_busy_time: SimDuration,
    /// Arrival instant of each task graph, in activation order
    /// (all-zero in the paper's batch setting).
    pub graph_arrivals: Vec<SimTime>,
    /// Completion instant of each task graph, in activation order
    /// (equal to submission order when all jobs arrive at t = 0).
    pub graph_completions: Vec<SimTime>,
    /// Zero-latency baseline makespan of the same job sequence (the
    /// "ideal schedule where no reconfiguration overhead is generated"
    /// of the paper's Fig. 2).
    pub ideal_makespan: SimDuration,
    /// Per-load reconfiguration latency used in the run.
    pub reconfig_latency: SimDuration,
    /// QoS counters: deadline misses, tardiness, preemption ledger and
    /// per-class sojourn breakdowns (defaulted for pre-QoS runs).
    pub qos: QosStats,
    /// Fault-injection + recovery counters (all zero with the fault
    /// plan off).
    pub faults: FaultStats,
}

impl RunStats {
    /// Reuse rate as the paper defines it: "the number of reused tasks
    /// divided by the total number of executed tasks", in percent.
    ///
    /// Counts every zero-*latency* placement — genuine demand reuse
    /// *and* claims of speculatively prefetched configurations. A
    /// prefetch hit hides the port latency but did move a bitstream on
    /// the speculative lane; use [`Self::demand_reuse_rate_pct`] for
    /// the traffic-free share, and `traffic.prefetch_loads` /
    /// `traffic.bytes_moved` for what speculation actually cost.
    pub fn reuse_rate_pct(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.reuses as f64 / self.executed as f64 * 100.0
        }
    }

    /// The traffic-free reuse rate: placements that required *no*
    /// bitstream movement at all (reuse claims minus prefetch hits),
    /// over executed tasks, in percent. With prefetch off this equals
    /// [`Self::reuse_rate_pct`]; with prefetch on, the two bracket the
    /// trade the planner makes — latency hidden versus bus traffic
    /// spent.
    pub fn demand_reuse_rate_pct(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.reuses.saturating_sub(self.prefetch.hits) as f64 / self.executed as f64 * 100.0
        }
    }

    /// Reconfiguration overhead that remained visible in the makespan:
    /// `makespan − ideal` (the "overhead: N ms" labels of Figs. 2/3).
    pub fn total_overhead(&self) -> SimDuration {
        self.makespan.saturating_sub(self.ideal_makespan)
    }

    /// The "original reconfiguration overhead": what reconfigurations
    /// would cost if none were hidden or avoided — one full latency per
    /// executed task instance.
    pub fn original_overhead(&self) -> SimDuration {
        self.reconfig_latency * self.executed
    }

    /// The Fig. 9c metric: percentage of the original reconfiguration
    /// overhead still visible after prefetch + replacement. A zero-task
    /// run has no overhead to attribute, so it reports 0 (never NaN).
    pub fn remaining_overhead_pct(&self) -> f64 {
        if self.executed == 0 {
            return 0.0;
        }
        self.total_overhead().percent_of(self.original_overhead())
    }

    /// Pool availability under faults: the fraction of the run during
    /// which *no* RU was quarantined, in percent
    /// (`100 · (1 − degraded_time / makespan)`; 100 for a zero-length
    /// or fault-free run — never NaN).
    pub fn availability_pct(&self) -> f64 {
        if self.makespan == SimDuration::ZERO {
            return 100.0;
        }
        100.0 - self.faults.degraded_time.percent_of(self.makespan)
    }

    /// Per-graph sojourn times (completion − arrival): how long each
    /// application spent in the system, queueing included. The key
    /// responsiveness metric of streaming-arrival runs; in the batch
    /// setting it degenerates to the completion instants.
    pub fn sojourns(&self) -> impl Iterator<Item = SimDuration> + '_ {
        self.graph_arrivals
            .iter()
            .zip(&self.graph_completions)
            .map(|(&a, &c)| c.since(a))
    }

    /// Mean sojourn time in milliseconds (0 when no graph completed).
    pub fn mean_sojourn_ms(&self) -> f64 {
        let n = self.graph_completions.len();
        if n == 0 {
            return 0.0;
        }
        self.sojourns().map(|d| d.as_ms_f64()).sum::<f64>() / n as f64
    }

    /// Worst-case sojourn time across all graphs.
    pub fn max_sojourn(&self) -> SimDuration {
        self.sojourns().max().unwrap_or(SimDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> RunStats {
        RunStats {
            policy: "test".into(),
            makespan: SimDuration::from_ms(120),
            executed: 10,
            reuses: 4,
            loads: 6,
            skips: 1,
            stalls: 2,
            traffic: TrafficStats::default(),
            prefetch: PrefetchStats::default(),
            port_busy_time: SimDuration::from_ms(24),
            graph_arrivals: vec![SimTime::ZERO, SimTime::from_ms(40)],
            graph_completions: vec![SimTime::from_ms(50), SimTime::from_ms(120)],
            ideal_makespan: SimDuration::from_ms(100),
            reconfig_latency: SimDuration::from_ms(4),
            qos: QosStats::default(),
            faults: FaultStats::default(),
        }
    }

    #[test]
    fn reuse_rate_matches_paper_definition() {
        assert!((stats().reuse_rate_pct() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn overheads() {
        let s = stats();
        assert_eq!(s.total_overhead(), SimDuration::from_ms(20));
        assert_eq!(s.original_overhead(), SimDuration::from_ms(40));
        assert!((s.remaining_overhead_pct() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn zero_executed_is_safe() {
        let mut s = stats();
        s.executed = 0;
        assert_eq!(s.reuse_rate_pct(), 0.0);
        assert_eq!(s.remaining_overhead_pct(), 0.0);
    }

    #[test]
    fn prefetch_balance_identities() {
        let mut p = PrefetchStats::default();
        assert!(p.balanced());
        p.issued = 5;
        p.completed = 3;
        p.cancelled = 2;
        p.hits = 2;
        p.wasted = 1;
        assert!(p.balanced());
        p.wasted = 2; // hits + wasted > completed
        assert!(!p.balanced());
        p.wasted = 1;
        p.cancelled = 1; // issued != completed + cancelled
        assert!(!p.balanced());
    }

    #[test]
    fn prefetch_hit_ratio_is_finite() {
        let mut p = PrefetchStats::default();
        assert_eq!(p.hit_ratio(), 0.0);
        p.completed = 4;
        p.hits = 3;
        assert!((p.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn demand_reuse_excludes_prefetch_hits() {
        let mut s = stats();
        // 4 reuses over 10 executed = 40%; 3 of them were prefetch
        // hits, so only 1 placement was truly traffic-free.
        s.prefetch.hits = 3;
        assert!((s.reuse_rate_pct() - 40.0).abs() < 1e-12);
        assert!((s.demand_reuse_rate_pct() - 10.0).abs() < 1e-12);
        // Without prefetching the two metrics coincide.
        s.prefetch.hits = 0;
        assert_eq!(s.demand_reuse_rate_pct(), s.reuse_rate_pct());
        // Never negative, even on inconsistent inputs.
        s.prefetch.hits = 99;
        assert_eq!(s.demand_reuse_rate_pct(), 0.0);
    }

    #[test]
    fn sojourn_metrics() {
        // Graph 0: 50 − 0 = 50 ms; graph 1: 120 − 40 = 80 ms.
        let s = stats();
        assert!((s.mean_sojourn_ms() - 65.0).abs() < 1e-12);
        assert_eq!(s.max_sojourn(), SimDuration::from_ms(80));
    }

    #[test]
    fn class_sojourn_percentiles_nearest_rank() {
        let mut samples: Vec<SimDuration> = [80, 10, 30, 20, 50, 40, 60, 70, 90, 100] // unsorted on purpose
            .iter()
            .map(|&ms| SimDuration::from_ms(ms))
            .collect();
        let c = ClassSojournStats::from_samples(2, &mut samples, 3, SimDuration::from_ms(12));
        assert_eq!(c.priority, 2);
        assert_eq!(c.jobs, 10);
        // Nearest rank over 10 samples: p50 → rank 5 (50 ms), p95 →
        // rank ceil(9.5) = 10 (100 ms).
        assert_eq!(c.p50, SimDuration::from_ms(50));
        assert_eq!(c.p95, SimDuration::from_ms(100));
        assert_eq!(c.max, SimDuration::from_ms(100));
        assert!((c.mean_sojourn_ms() - 55.0).abs() < 1e-12);
        assert!((c.miss_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_class_reports_zero_not_nan() {
        let c = ClassSojournStats::from_samples(7, &mut Vec::new(), 0, SimDuration::ZERO);
        assert_eq!(c.jobs, 0);
        assert_eq!(c.p50, SimDuration::ZERO);
        assert_eq!(c.p95, SimDuration::ZERO);
        assert_eq!(c.max, SimDuration::ZERO);
        for v in [c.mean_sojourn_ms(), c.miss_rate()] {
            assert!(v.is_finite());
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn single_sample_class_percentiles_collapse() {
        let mut one = vec![SimDuration::from_ms(42)];
        let c = ClassSojournStats::from_samples(1, &mut one, 1, SimDuration::from_ms(2));
        assert_eq!(c.p50, SimDuration::from_ms(42));
        assert_eq!(c.p95, SimDuration::from_ms(42));
        assert_eq!(c.max, SimDuration::from_ms(42));
        assert!((c.miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fault_ledger_balance_and_availability() {
        let mut f = FaultStats::default();
        assert!(f.balanced());
        f.degraded_time = SimDuration::from_ms(5); // degraded without any quarantine
        assert!(!f.balanced());
        f.quarantines = 2;
        f.heals = 1;
        assert!(f.balanced());
        f.heals = 3; // more heals than quarantines
        assert!(!f.balanced());

        let mut s = stats();
        assert_eq!(s.availability_pct(), 100.0);
        s.faults.quarantines = 1;
        s.faults.degraded_time = SimDuration::from_ms(30); // of a 120 ms run
        assert!((s.availability_pct() - 75.0).abs() < 1e-9);
        s.makespan = SimDuration::ZERO;
        assert_eq!(s.availability_pct(), 100.0);
    }

    #[test]
    fn qos_ledger_balance() {
        let mut q = QosStats::default();
        assert!(q.balanced());
        q.class_sojourns.push(ClassSojournStats::from_samples(
            0,
            &mut [SimDuration::from_ms(10)],
            1,
            SimDuration::from_ms(3),
        ));
        q.class_sojourns.push(ClassSojournStats::from_samples(
            2,
            &mut [SimDuration::from_ms(5)],
            1,
            SimDuration::from_ms(4),
        ));
        q.deadline_misses = 2;
        q.tardiness_total = SimDuration::from_ms(7);
        assert!(q.balanced());
        assert_eq!(q.class(2).unwrap().jobs, 1);
        assert!(q.class(1).is_none());
        q.deadline_misses = 3;
        assert!(!q.balanced());
    }

    #[test]
    fn empty_run_sojourn_is_zero() {
        let mut s = stats();
        s.graph_arrivals.clear();
        s.graph_completions.clear();
        assert_eq!(s.mean_sojourn_ms(), 0.0);
        assert_eq!(s.max_sojourn(), SimDuration::ZERO);
    }

    #[test]
    fn zero_task_and_zero_job_runs_report_zero_not_nan() {
        // The stats of a run with no jobs at all (or whose jobs executed
        // no tasks): every derived metric must be a finite 0, never a
        // NaN from a 0/0 — empty and all-future-arrival scenarios
        // tabulate cleanly.
        let s = RunStats {
            policy: "empty".into(),
            makespan: SimDuration::ZERO,
            executed: 0,
            reuses: 0,
            loads: 0,
            skips: 0,
            stalls: 0,
            traffic: TrafficStats::default(),
            prefetch: PrefetchStats::default(),
            port_busy_time: SimDuration::ZERO,
            graph_arrivals: Vec::new(),
            graph_completions: Vec::new(),
            ideal_makespan: SimDuration::ZERO,
            reconfig_latency: SimDuration::from_ms(4),
            qos: QosStats::default(),
            faults: FaultStats::default(),
        };
        for v in [
            s.reuse_rate_pct(),
            s.remaining_overhead_pct(),
            s.mean_sojourn_ms(),
        ] {
            assert!(v.is_finite(), "derived metric must never be NaN/inf");
            assert_eq!(v, 0.0);
        }
        assert_eq!(s.max_sojourn(), SimDuration::ZERO);
        assert_eq!(s.total_overhead(), SimDuration::ZERO);
        assert_eq!(s.original_overhead(), SimDuration::ZERO);
    }
}
