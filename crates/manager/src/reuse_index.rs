//! The incremental next-occurrence index over the future request
//! stream — the data structure that turns a replacement decision from an
//! O(stream × candidates) rescan into O(candidates · log n).
//!
//! Belady-style policies (LFD, the paper's Local LFD) need one question
//! answered per candidate: *when is this configuration requested next?*
//! The legacy implementation answered it by linearly walking a
//! [`FutureView`](crate::FutureView) rebuilt for every decision. The
//! [`ReuseIndex`] instead maintains, incrementally as the engine runs,
//!
//! * a **global position space**: every configuration request of every
//!   job gets a monotonically increasing position as the job *arrives*
//!   (arrival order = activation order, so positions are stream order);
//! * **per-config occurrence lists**: for each [`ConfigId`], the sorted
//!   list of its positions — sorted for free, because positions are
//!   assigned monotonically;
//! * a **segment deque** mirroring `[current job] + arrived backlog`,
//!   so the visible Dynamic-List window of any decision is a single
//!   *contiguous* position interval.
//!
//! That contiguity is the crux: the window the replacement module sees
//! is always "the rest of the current graph's sequence, then the next
//! `w` arrived graphs" — consecutive segments in activation order.
//! A next-use query is therefore one binary search (`partition_point`)
//! in the config's occurrence list against the window's lower bound,
//! plus an upper-bound check. No per-decision rebuild, and the index is
//! shared across consecutive decisions.
//!
//! Retired jobs are pruned front-first ([`ReuseIndex::retire_front`]),
//! so memory tracks the live backlog, not the whole run history.

use rtr_sim::DenseIdMap;
use rtr_taskgraph::ConfigId;
use std::collections::VecDeque;
use std::sync::Arc;

/// One config's sorted position list: a contiguous `Vec` with a lazy
/// head cursor instead of a ring buffer, so the binary-search hot path
/// (`partition_point` per replacement decision) runs on a plain slice —
/// no ring-wrap masking per probe. Front pops advance the cursor; the
/// dead prefix is compacted away once it outgrows the live tail, so
/// memory stays proportional to the live backlog (amortised O(1) per
/// pop).
#[derive(Debug, Clone, Default)]
struct OccurrenceList {
    buf: Vec<u64>,
    head: usize,
    /// Query cursor: index of the first entry not yet known to lie
    /// below the last queried lower bound. The engine's decision
    /// windows have monotonically non-decreasing lower bounds (the
    /// stream is consumed front to back), so advancing this cursor
    /// instead of binary-searching makes a next-use query amortised
    /// O(1) — each position is stepped over at most once per run.
    /// Purely an accelerator: a lower bound that *does* move backwards
    /// (ad-hoc windows in tests) falls back to an exact binary search
    /// over the skipped prefix.
    search: std::cell::Cell<usize>,
}

impl OccurrenceList {
    fn push_back(&mut self, v: u64) {
        self.buf.push(v);
    }

    fn pop_front(&mut self) -> Option<u64> {
        let v = self.buf.get(self.head).copied()?;
        self.head += 1;
        if self.head >= 64 && self.head * 2 >= self.buf.len() {
            self.buf.drain(..self.head);
            self.search.set(self.search.get().saturating_sub(self.head));
            self.head = 0;
        }
        Some(v)
    }

    /// The first live position `>= lo`, advancing the query cursor.
    fn first_at_or_after(&self, lo: u64) -> Option<u64> {
        let mut i = self.search.get().clamp(self.head, self.buf.len());
        if i > self.head && self.buf[i - 1] >= lo {
            // The bound moved backwards relative to the cached cursor:
            // exact binary search over the prefix the cursor skipped.
            i = self.head + self.buf[self.head..i].partition_point(|&p| p < lo);
        } else {
            while i < self.buf.len() && self.buf[i] < lo {
                i += 1;
            }
        }
        self.search.set(i);
        self.buf.get(i).copied()
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.search.set(0);
    }
}

/// Per-config occurrence lists over a dense-by-id table
/// ([`DenseIdMap`]): one array index per query on the hot path.
/// Emptied lists keep their allocation.
#[derive(Debug, Clone, Default)]
struct OccurrenceTable {
    lists: DenseIdMap<OccurrenceList>,
}

impl OccurrenceTable {
    /// The list for `config`, creating an empty one if absent.
    fn entry(&mut self, config: ConfigId) -> &mut OccurrenceList {
        self.lists.entry(config.0)
    }

    /// The list for `config`, if any occurrence was ever recorded.
    fn get(&self, config: ConfigId) -> Option<&OccurrenceList> {
        self.lists.get(config.0)
    }

    /// Empties every list, keeping all allocations.
    fn clear(&mut self) {
        self.lists.clear_values(OccurrenceList::clear);
    }
}

/// One job's contiguous slice of the global position space.
#[derive(Debug, Clone)]
struct IndexSegment {
    /// Global position of the segment's first request.
    base: u64,
    /// The job's configuration sequence (design-time artifact, shared
    /// with the engine's template cache).
    cfgs: Arc<Vec<ConfigId>>,
}

impl IndexSegment {
    /// One past the segment's last global position.
    fn end(&self) -> u64 {
        self.base + self.cfgs.len() as u64
    }
}

/// A contiguous half-open interval `[lo, hi)` of global positions: the
/// visible future window of one replacement decision.
///
/// Obtained from [`ReuseIndex::window`]; cheap to copy, valid until the
/// index is mutated (the engine derives a fresh one per decision — it
/// is two additions, not a rebuild).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReuseWindow {
    lo: u64,
    hi: u64,
}

impl ReuseWindow {
    /// Number of requests inside the window.
    pub fn len(&self) -> usize {
        (self.hi - self.lo) as usize
    }

    /// True when the window contains no requests.
    pub fn is_empty(&self) -> bool {
        self.hi == self.lo
    }

    /// The same window truncated to at most `max_len` requests — a
    /// bounded planning horizon (used by the prefetch planner so a huge
    /// backlog never turns one planning round into a full-stream scan).
    pub fn clamp_len(self, max_len: usize) -> ReuseWindow {
        ReuseWindow {
            lo: self.lo,
            hi: self.hi.min(self.lo + max_len as u64),
        }
    }
}

/// Per-config next-occurrence index over the future request stream.
///
/// Maintained by the engine as jobs arrive ([`push_job`]), as the
/// current graph's sequence is consumed (positional, via the `consumed`
/// argument of [`window`]), and as graphs retire ([`retire_front`]).
/// Policies query it through
/// [`DecisionContext`](crate::DecisionContext).
///
/// [`push_job`]: ReuseIndex::push_job
/// [`window`]: ReuseIndex::window
/// [`retire_front`]: ReuseIndex::retire_front
#[derive(Debug, Clone, Default)]
pub struct ReuseIndex {
    /// Sorted global positions per configuration. Push order is
    /// monotone (positions only grow), pops are front-first (retired
    /// jobs hold the smallest positions), so each deque stays sorted
    /// without ever sorting. Emptied lists are kept (not removed), so
    /// a pooled engine's steady state reuses their allocations instead
    /// of churning the table — the config universe is bounded by the
    /// template set.
    occurrences: OccurrenceTable,
    /// `[current job] + arrived backlog`, in activation order.
    segments: VecDeque<IndexSegment>,
    /// Next global position to assign.
    next_pos: u64,
}

impl ReuseIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a job's configuration sequence to the stream, assigning
    /// it the next contiguous position range. Call in *arrival* order —
    /// the engine's activation order — so positions are stream order.
    pub fn push_job(&mut self, cfgs: Arc<Vec<ConfigId>>) {
        let base = self.next_pos;
        for (k, &c) in cfgs.iter().enumerate() {
            self.occurrences.entry(c).push_back(base + k as u64);
        }
        self.next_pos = base + cfgs.len() as u64;
        self.segments.push_back(IndexSegment { base, cfgs });
    }

    /// Retires the front (= oldest, the just-completed current) job,
    /// pruning its occurrences. The front job holds the globally
    /// smallest live positions, so pruning is a front pop per
    /// occurrence — O(len of the retired sequence).
    ///
    /// # Panics
    /// Panics if the index holds no jobs, or if the occurrence lists
    /// are out of sync (an engine-integration bug).
    pub fn retire_front(&mut self) {
        let seg = self
            .segments
            .pop_front()
            .expect("retire_front needs a live job");
        for (k, &c) in seg.cfgs.iter().enumerate() {
            let popped = self.occurrences.entry(c).pop_front();
            debug_assert_eq!(popped, Some(seg.base + k as u64));
        }
    }

    /// Empties the index while keeping every allocation (segment deque,
    /// per-config occurrence lists, map table) — the pooled engine's
    /// reset hook. A cleared index answers queries exactly like a fresh
    /// one: the position space restarts at 0.
    pub fn clear(&mut self) {
        self.occurrences.clear();
        self.segments.clear();
        self.next_pos = 0;
    }

    /// Number of live jobs (current + backlog) in the index.
    pub fn jobs(&self) -> usize {
        self.segments.len()
    }

    /// Total number of live (not yet retired) requests indexed.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.cfgs.len()).sum()
    }

    /// True when no job is indexed.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The visible window of one decision: the front job's sequence
    /// with its first `consumed` entries dropped (the entries already
    /// placed, plus the one being placed now), followed by the next
    /// `visible_jobs` backlog jobs — one contiguous interval, because
    /// segments are contiguous in activation order.
    ///
    /// # Panics
    /// Panics if the index holds no jobs (decisions only happen while a
    /// graph is current).
    pub fn window(&self, consumed: usize, visible_jobs: usize) -> ReuseWindow {
        let front = self.segments.front().expect("window needs a current job");
        let lo = front.base + (consumed as u64).min(front.cfgs.len() as u64);
        let last = visible_jobs.min(self.segments.len() - 1);
        let hi = self.segments[last].end();
        ReuseWindow { lo, hi }
    }

    /// Global position of `config`'s next request inside `window`, or
    /// `None` if it is not requested there. One `partition_point` on
    /// the config's sorted occurrence list: O(log n).
    pub fn next_use(&self, config: ConfigId, window: ReuseWindow) -> Option<u64> {
        let p = self.occurrences.get(config)?.first_at_or_after(window.lo)?;
        (p < window.hi).then_some(p)
    }

    /// Ordinal of the live segment (0 = the current job, `k` = the
    /// `k`-1-th backlog job) containing global position `pos`, or
    /// `None` for a retired or not-yet-assigned position. The engine maps the
    /// ordinal back to a job index through its own `[current] + arrived`
    /// bookkeeping — the deadline-aware path's owner lookup. One binary
    /// search over the segment deque.
    pub fn segment_of(&self, pos: u64) -> Option<usize> {
        let i = self.segments.partition_point(|s| s.end() <= pos);
        let seg = self.segments.get(i)?;
        (pos >= seg.base).then_some(i)
    }

    /// Forward distance of `config` in `window`: the 1-based position
    /// of its next request, exactly matching the legacy
    /// [`FutureView::distance_of`](crate::FutureView::distance_of)
    /// contract — so index-backed and scan-backed decisions compare
    /// (and tie) identically.
    pub fn distance_of(&self, config: ConfigId, window: ReuseWindow) -> Option<usize> {
        self.next_use(config, window)
            .map(|p| (p - window.lo + 1) as usize)
    }

    /// True when `config` is requested inside `window` — the
    /// `reusable(victim)` predicate of the paper's Fig. 8, in O(log n).
    pub fn contains(&self, config: ConfigId, window: ReuseWindow) -> bool {
        self.next_use(config, window).is_some()
    }

    /// Fills `out` with the first (at most) `k` *distinct*
    /// configurations requested inside `window`, in stream order —
    /// nearest next use first. This is the prefetch planner's query:
    /// "which configurations does the visible future want soonest?"
    ///
    /// The scan walks the window front to back and stops as soon as `k`
    /// distinct configurations are found; pass a
    /// [`clamp_len`](ReuseWindow::clamp_len)-bounded window to cap the
    /// worst case (a long window with fewer than `k` distinct configs).
    /// Dedup is a linear probe of `out` — `k` is a small planning depth,
    /// not a stream length.
    pub fn next_k_configs(&self, window: ReuseWindow, k: usize, out: &mut Vec<ConfigId>) {
        out.clear();
        if k == 0 {
            return;
        }
        for cfg in self.iter_window(window) {
            if !out.contains(&cfg) {
                out.push(cfg);
                if out.len() == k {
                    break;
                }
            }
        }
    }

    /// Iterates the window's requests in stream order — the legacy
    /// iterator view, reconstructed from the segment deque without
    /// copying (each item is a slice walk).
    pub fn iter_window(&self, window: ReuseWindow) -> impl Iterator<Item = ConfigId> + '_ {
        self.segments.iter().flat_map(move |seg| {
            let lo = window.lo.max(seg.base).min(seg.end());
            let hi = window.hi.max(seg.base).min(seg.end());
            seg.cfgs[(lo - seg.base) as usize..(hi - seg.base) as usize]
                .iter()
                .copied()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: u32) -> ConfigId {
        ConfigId(id)
    }

    fn seq(ids: &[u32]) -> Arc<Vec<ConfigId>> {
        Arc::new(ids.iter().map(|&i| c(i)).collect())
    }

    #[test]
    fn distances_match_stream_order() {
        let mut idx = ReuseIndex::new();
        idx.push_job(seq(&[1, 2, 3])); // current
        idx.push_job(seq(&[4, 1]));
        // Window: everything after the current job's first entry.
        let w = idx.window(1, 1);
        assert_eq!(w.len(), 4);
        assert_eq!(idx.distance_of(c(2), w), Some(1));
        assert_eq!(idx.distance_of(c(3), w), Some(2));
        assert_eq!(idx.distance_of(c(4), w), Some(3));
        assert_eq!(idx.distance_of(c(1), w), Some(4));
        assert_eq!(idx.distance_of(c(9), w), None);
    }

    #[test]
    fn window_excludes_consumed_prefix_and_invisible_jobs() {
        let mut idx = ReuseIndex::new();
        idx.push_job(seq(&[1, 2]));
        idx.push_job(seq(&[3]));
        idx.push_job(seq(&[4]));
        // Only the current job's tail: lookahead 0.
        let w = idx.window(1, 0);
        assert_eq!(idx.distance_of(c(2), w), Some(1));
        assert!(!idx.contains(c(3), w));
        assert!(!idx.contains(c(4), w));
        // One backlog job visible.
        let w = idx.window(1, 1);
        assert!(idx.contains(c(3), w));
        assert!(!idx.contains(c(4), w));
        // Visible-jobs request beyond the backlog clamps.
        let w = idx.window(1, 99);
        assert!(idx.contains(c(4), w));
    }

    #[test]
    fn consumed_prefix_clamps_to_sequence_length() {
        let mut idx = ReuseIndex::new();
        idx.push_job(seq(&[1]));
        idx.push_job(seq(&[1, 5]));
        // The current job is fully consumed; only the backlog remains.
        let w = idx.window(7, 1);
        assert_eq!(idx.distance_of(c(1), w), Some(1));
        assert_eq!(idx.distance_of(c(5), w), Some(2));
    }

    #[test]
    fn first_occurrence_wins_with_duplicates() {
        let mut idx = ReuseIndex::new();
        idx.push_job(seq(&[7, 8, 7, 7]));
        let w = idx.window(1, 0);
        assert_eq!(idx.distance_of(c(7), w), Some(2));
        assert_eq!(idx.distance_of(c(8), w), Some(1));
    }

    #[test]
    fn retire_front_prunes_and_keeps_later_jobs_queryable() {
        let mut idx = ReuseIndex::new();
        idx.push_job(seq(&[1, 2]));
        idx.push_job(seq(&[2, 3]));
        assert_eq!(idx.len(), 4);
        idx.retire_front();
        assert_eq!(idx.jobs(), 1);
        assert_eq!(idx.len(), 2);
        let w = idx.window(0, 0);
        assert_eq!(idx.distance_of(c(2), w), Some(1));
        assert_eq!(idx.distance_of(c(3), w), Some(2));
        assert!(!idx.contains(c(1), w));
    }

    #[test]
    fn iter_window_reconstructs_the_stream() {
        let mut idx = ReuseIndex::new();
        idx.push_job(seq(&[1, 2, 3]));
        idx.push_job(seq(&[4, 5]));
        idx.push_job(seq(&[6]));
        let w = idx.window(2, 1);
        let got: Vec<u32> = idx.iter_window(w).map(|c| c.0).collect();
        assert_eq!(got, vec![3, 4, 5]);
        // Distances agree with the reconstructed stream.
        for (i, cfg) in idx.iter_window(w).enumerate() {
            assert_eq!(idx.distance_of(cfg, w), Some(i + 1));
        }
    }

    #[test]
    fn next_k_configs_dedups_in_stream_order() {
        let mut idx = ReuseIndex::new();
        idx.push_job(seq(&[1, 2, 1, 3, 2, 4]));
        let w = idx.window(0, 0);
        let mut out = Vec::new();
        idx.next_k_configs(w, 3, &mut out);
        assert_eq!(out, vec![c(1), c(2), c(3)]);
        // Fewer distinct configs than k: all of them, once each.
        idx.next_k_configs(w, 99, &mut out);
        assert_eq!(out, vec![c(1), c(2), c(3), c(4)]);
        // k = 0 and empty windows yield nothing.
        idx.next_k_configs(w, 0, &mut out);
        assert!(out.is_empty());
        idx.next_k_configs(idx.window(6, 0), 4, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn clamp_len_bounds_the_scan_horizon() {
        let mut idx = ReuseIndex::new();
        idx.push_job(seq(&[1, 1, 1, 2, 3]));
        let w = idx.window(0, 0).clamp_len(3);
        assert_eq!(w.len(), 3);
        let mut out = Vec::new();
        idx.next_k_configs(w, 4, &mut out);
        assert_eq!(out, vec![c(1)], "configs beyond the horizon are unseen");
        // Clamping beyond the window length is a no-op.
        assert_eq!(idx.window(0, 0).clamp_len(99), idx.window(0, 0));
    }

    #[test]
    fn empty_window_has_no_occurrences() {
        let mut idx = ReuseIndex::new();
        idx.push_job(seq(&[1]));
        let w = idx.window(1, 0);
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(idx.next_use(c(1), w), None);
        assert!(idx.iter_window(w).next().is_none());
    }

    #[test]
    fn segment_of_maps_positions_to_live_ordinals() {
        let mut idx = ReuseIndex::new();
        idx.push_job(seq(&[1, 2])); // positions 0..2
        idx.push_job(seq(&[3])); // position 2
        idx.push_job(seq(&[4, 5])); // positions 3..5
        assert_eq!(idx.segment_of(0), Some(0));
        assert_eq!(idx.segment_of(1), Some(0));
        assert_eq!(idx.segment_of(2), Some(1));
        assert_eq!(idx.segment_of(4), Some(2));
        assert_eq!(idx.segment_of(5), None, "beyond the live stream");
        idx.retire_front();
        // Positions of the retired front are gone; ordinals shift down.
        assert_eq!(idx.segment_of(0), None);
        assert_eq!(idx.segment_of(2), Some(0));
        assert_eq!(idx.segment_of(3), Some(1));
    }

    #[test]
    fn clear_resets_position_space_like_fresh() {
        let mut idx = ReuseIndex::new();
        idx.push_job(seq(&[1, 2, 3]));
        idx.push_job(seq(&[2, 4]));
        idx.retire_front();
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
        // Rebuild after clear: behaves exactly like a fresh index
        // (positions restart at 0).
        let mut fresh = ReuseIndex::new();
        for target in [&mut idx, &mut fresh] {
            target.push_job(seq(&[5, 6]));
            target.push_job(seq(&[6, 7]));
        }
        let w = idx.window(1, 1);
        assert_eq!(w, fresh.window(1, 1));
        for c_id in [5u32, 6, 7, 99] {
            assert_eq!(idx.next_use(c(c_id), w), fresh.next_use(c(c_id), w));
        }
    }

    #[test]
    fn positions_survive_interleaved_push_retire() {
        let mut idx = ReuseIndex::new();
        for round in 0..100u32 {
            idx.push_job(seq(&[round % 5, (round + 1) % 5]));
            if round % 3 == 2 {
                idx.retire_front();
            }
        }
        // The index stays internally consistent: every live occurrence
        // is addressable through a full window.
        let w = idx.window(0, idx.jobs());
        let stream: Vec<ConfigId> = idx.iter_window(w).collect();
        assert_eq!(stream.len(), idx.len());
        for (i, &cfg) in stream.iter().enumerate() {
            let d = idx.distance_of(cfg, w).expect("occurs");
            assert!(d <= i + 1, "next use cannot be after a later sighting");
            assert_eq!(stream[d - 1], cfg, "distance points at an occurrence");
        }
    }
}
