//! Trace validation: checks that a recorded schedule obeys every system
//! invariant. Property tests run random workloads through every policy
//! and validate the traces; golden tests validate the paper examples.
//!
//! Checked invariants:
//!
//! 1. Reconfigurations are serialised on the single port and take
//!    exactly the device latency.
//! 2. Per RU, load and execution intervals never overlap.
//! 3. A task executes exactly once, after its configuration was loaded
//!    into or reused on its RU.
//! 4. A task starts only after all its predecessors finished.
//! 5. Graph executions are sequential and in arrival order (FIFO over
//!    the online queue; plain submission order in the batch setting),
//!    and never start before the job's arrival.
//! 6. A reuse claim only happens when the same configuration was left
//!    on that RU by a previous load with no intervening overwrite.
//! 7. Stats counters match the trace.

use crate::job::JobSpec;
use crate::stats::RunStats;
use crate::trace::{Trace, TraceEvent};
use rtr_sim::{SimDuration, SimTime};
use rtr_taskgraph::ConfigId;
use std::collections::HashMap;
use std::fmt;

/// A violated invariant, with human-readable context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation(pub String);

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace invariant violated: {}", self.0)
    }
}

macro_rules! check {
    ($violations:expr, $cond:expr, $($arg:tt)+) => {
        if !$cond {
            $violations.push(Violation(format!($($arg)+)));
        }
    };
}

/// Validates `trace` (produced by simulating `jobs`) against all
/// invariants; returns every violation found.
pub fn validate_trace(
    trace: &Trace,
    jobs: &[JobSpec],
    latency: SimDuration,
    stats: Option<&RunStats>,
) -> Vec<Violation> {
    let mut v: Vec<Violation> = Vec::new();

    // --- Invariant 1: serialised reconfiguration port. ---
    let mut port_busy_until: Option<(SimTime, u32)> = None;
    // --- Per-RU interval tracking (invariant 2). ---
    let mut ru_busy_until: HashMap<u16, SimTime> = HashMap::new();
    // --- Per (job, node) lifecycle (invariants 3, 4). ---
    #[derive(Default, Clone)]
    struct NodeLife {
        placed_at: Option<SimTime>, // load end or reuse
        exec_start: Option<SimTime>,
        exec_end: Option<SimTime>,
        ru: Option<u16>,
    }
    let mut life: HashMap<(u32, u32), NodeLife> = HashMap::new();
    // --- Resident config per RU (invariant 6). ---
    let mut resident: HashMap<u16, ConfigId> = HashMap::new();
    // --- Graph ordering (invariant 5): activation follows arrival
    // order, ties broken by submission index (the engine's queue is
    // FIFO per instant). ---
    let mut expected_order: Vec<u32> = (0..jobs.len() as u32).collect();
    expected_order.sort_by_key(|&i| (jobs[i as usize].arrival, i));
    let mut graph_started: Vec<u32> = Vec::new();
    let mut graph_ended: Vec<(u32, SimTime)> = Vec::new();
    let mut current_graph: Option<u32> = None;
    // --- Counters (invariant 7). ---
    let (mut loads, mut reuses, mut execs, mut skips, mut stalls) = (0u64, 0u64, 0u64, 0u64, 0u64);

    let mut pending_load: HashMap<u16, (ConfigId, SimTime, u32, u32)> = HashMap::new();

    for ev in trace.iter() {
        match *ev {
            TraceEvent::JobArrival { job, at } => {
                check!(
                    v,
                    jobs.get(job as usize).map(|j| j.arrival) == Some(at),
                    "job {job} arrived at {at}, but its spec says {:?}",
                    jobs.get(job as usize).map(|j| j.arrival)
                );
            }
            TraceEvent::GraphStart { job, at } => {
                check!(
                    v,
                    current_graph.is_none(),
                    "graph {job} started at {at} while graph {current_graph:?} is active"
                );
                if let Some(&(prev, prev_end)) = graph_ended.last() {
                    check!(
                        v,
                        at >= prev_end,
                        "graph {job} started at {at} before graph {prev} ended at {prev_end}"
                    );
                }
                check!(
                    v,
                    jobs.get(job as usize).is_none_or(|j| at >= j.arrival),
                    "graph {job} started at {at} before its arrival at {:?}",
                    jobs.get(job as usize).map(|j| j.arrival)
                );
                check!(
                    v,
                    expected_order.get(graph_started.len()) == Some(&job),
                    "graphs must start in arrival order {expected_order:?}; \
                     got {job} after {graph_started:?}"
                );
                graph_started.push(job);
                current_graph = Some(job);
            }
            TraceEvent::GraphEnd { job, at } => {
                check!(
                    v,
                    current_graph == Some(job),
                    "graph {job} ended at {at} but is not current"
                );
                current_graph = None;
                graph_ended.push((job, at));
            }
            TraceEvent::LoadStart {
                job,
                node,
                config,
                ru,
                at,
            } => {
                loads += 1;
                check!(
                    v,
                    current_graph == Some(job),
                    "load for job {job} node {node} at {at}: job is not current \
                     (no cross-graph prefetch)"
                );
                if let Some((busy_until, j)) = port_busy_until {
                    check!(
                        v,
                        at >= busy_until,
                        "load at {at} overlaps in-flight reconfiguration of job {j} \
                         (busy until {busy_until})"
                    );
                }
                port_busy_until = Some((at + latency, job));
                if let Some(&busy) = ru_busy_until.get(&ru.0) {
                    check!(
                        v,
                        at >= busy,
                        "{ru} reloaded at {at} while busy until {busy}"
                    );
                }
                ru_busy_until.insert(ru.0, at + latency);
                pending_load.insert(ru.0, (config, at, job, node.0));
                // Eviction: the previous resident is gone.
                resident.remove(&ru.0);
            }
            TraceEvent::LoadEnd {
                job,
                node,
                config,
                ru,
                at,
            } => {
                match pending_load.remove(&ru.0) {
                    Some((c, started, j, n)) => {
                        check!(
                            v,
                            c == config && j == job && n == node.0,
                            "load end at {at} on {ru} does not match its start"
                        );
                        check!(
                            v,
                            at.since(started) == latency,
                            "load of {config} on {ru} took {} (expected {latency})",
                            at.since(started)
                        );
                    }
                    None => v.push(Violation(format!(
                        "load end at {at} on {ru} without a start"
                    ))),
                }
                resident.insert(ru.0, config);
                life.entry((job, node.0)).or_default().placed_at = Some(at);
                life.entry((job, node.0)).or_default().ru = Some(ru.0);
            }
            TraceEvent::Reuse {
                job,
                node,
                config,
                ru,
                at,
            } => {
                reuses += 1;
                check!(
                    v,
                    current_graph == Some(job),
                    "reuse for job {job} at {at}: job is not current"
                );
                check!(
                    v,
                    resident.get(&ru.0) == Some(&config),
                    "reuse of {config} on {ru} at {at} but resident is {:?}",
                    resident.get(&ru.0)
                );
                life.entry((job, node.0)).or_default().placed_at = Some(at);
                life.entry((job, node.0)).or_default().ru = Some(ru.0);
            }
            TraceEvent::ExecStart {
                job,
                node,
                config,
                ru,
                at,
            } => {
                check!(
                    v,
                    current_graph == Some(job),
                    "exec start for job {job} at {at}: job is not current"
                );
                check!(
                    v,
                    resident.get(&ru.0) == Some(&config),
                    "exec of {config} on {ru} at {at} but resident is {:?}",
                    resident.get(&ru.0)
                );
                let entry = life.entry((job, node.0)).or_default();
                check!(
                    v,
                    entry.exec_start.is_none(),
                    "node {node} of job {job} executed twice"
                );
                match entry.placed_at {
                    Some(p) => check!(
                        v,
                        at >= p,
                        "node {node} of job {job} started at {at} before its \
                         configuration arrived at {p}"
                    ),
                    None => v.push(Violation(format!(
                        "node {node} of job {job} started without load or reuse"
                    ))),
                }
                check!(
                    v,
                    entry.ru == Some(ru.0),
                    "node {node} of job {job} executes on {ru} but was placed on RU{:?}",
                    entry.ru.map(|r| r + 1)
                );
                entry.exec_start = Some(at);
                // Predecessors must have finished.
                let graph = &jobs[job as usize].graph;
                for &p in graph.preds(rtr_taskgraph::NodeId(node.0)) {
                    let pred_end = life.get(&(job, p.0)).and_then(|l| l.exec_end);
                    match pred_end {
                        Some(e) => check!(
                            v,
                            at >= e,
                            "node {node} of job {job} started at {at} before \
                             predecessor {p} finished at {e}"
                        ),
                        None => v.push(Violation(format!(
                            "node {node} of job {job} started before predecessor {p} ran"
                        ))),
                    }
                }
            }
            TraceEvent::ExecEnd {
                job, node, ru, at, ..
            } => {
                execs += 1;
                let entry = life.entry((job, node.0)).or_default();
                match entry.exec_start {
                    Some(s) => {
                        let expected = jobs[job as usize]
                            .graph
                            .exec_time(rtr_taskgraph::NodeId(node.0));
                        check!(
                            v,
                            at.since(s) == expected,
                            "node {node} of job {job} ran {} (expected {expected})",
                            at.since(s)
                        );
                    }
                    None => v.push(Violation(format!(
                        "exec end without start for node {node} of job {job}"
                    ))),
                }
                check!(
                    v,
                    entry.exec_end.is_none(),
                    "node {node} of job {job} finished twice"
                );
                entry.exec_end = Some(at);
                ru_busy_until.insert(ru.0, at);
            }
            TraceEvent::Skip { at, .. } => {
                skips += 1;
                check!(
                    v,
                    current_graph.is_some(),
                    "skip at {at} outside any active graph"
                );
            }
            TraceEvent::Stall { at, .. } => {
                stalls += 1;
                check!(
                    v,
                    current_graph.is_some(),
                    "stall at {at} outside any active graph"
                );
            }
        }
    }

    // Every started graph ended.
    check!(
        v,
        graph_ended.len() == graph_started.len(),
        "{} graphs started but {} ended",
        graph_started.len(),
        graph_ended.len()
    );
    // Every executed node ran exactly once with a placement.
    for ((job, node), l) in &life {
        check!(
            v,
            l.exec_start.is_some() && l.exec_end.is_some(),
            "node {node} of job {job} never completed execution"
        );
    }
    // Executed count matches the workload.
    let expected_execs: u64 = graph_started
        .iter()
        .map(|&j| jobs[j as usize].graph.len() as u64)
        .sum();
    check!(
        v,
        execs == expected_execs,
        "trace has {execs} executions, workload requires {expected_execs}"
    );

    if let Some(s) = stats {
        check!(
            v,
            s.loads == loads,
            "stats.loads {} != trace {loads}",
            s.loads
        );
        check!(
            v,
            s.reuses == reuses,
            "stats.reuses {} != trace {reuses}",
            s.reuses
        );
        check!(
            v,
            s.executed == execs,
            "stats.executed {} != trace {execs}",
            s.executed
        );
        check!(
            v,
            s.skips == skips,
            "stats.skips {} != trace {skips}",
            s.skips
        );
        check!(
            v,
            s.stalls == stalls,
            "stats.stalls {} != trace {stalls}",
            s.stalls
        );
    }
    v
}

/// Panics with a readable report if `validate_trace` finds violations.
pub fn assert_valid(
    trace: &Trace,
    jobs: &[JobSpec],
    latency: SimDuration,
    stats: Option<&RunStats>,
) {
    let violations = validate_trace(trace, jobs, latency, stats);
    if !violations.is_empty() {
        let mut report = String::from("schedule trace violates invariants:\n");
        for violation in &violations {
            report.push_str(&format!("  - {violation}\n"));
        }
        panic!("{report}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ManagerConfig;
    use crate::manager::simulate;
    use crate::policy::FirstCandidatePolicy;
    use rtr_taskgraph::benchmarks;
    use std::sync::Arc;

    fn jobs() -> Vec<JobSpec> {
        let jpeg = Arc::new(benchmarks::jpeg());
        let mpeg = Arc::new(benchmarks::mpeg1());
        vec![
            JobSpec::new(Arc::clone(&jpeg)),
            JobSpec::new(mpeg),
            JobSpec::new(jpeg),
        ]
    }

    #[test]
    fn valid_run_passes() {
        let cfg = ManagerConfig::paper_default();
        let jobs = jobs();
        let out = simulate(&cfg, &jobs, &mut FirstCandidatePolicy).unwrap();
        assert_valid(
            &out.trace,
            &jobs,
            cfg.device.reconfig_latency,
            Some(&out.stats),
        );
    }

    #[test]
    fn detects_tampered_counts() {
        let cfg = ManagerConfig::paper_default();
        let jobs = jobs();
        let out = simulate(&cfg, &jobs, &mut FirstCandidatePolicy).unwrap();
        let mut bad = out.stats.clone();
        bad.reuses += 1;
        let violations = validate_trace(&out.trace, &jobs, cfg.device.reconfig_latency, Some(&bad));
        assert!(!violations.is_empty());
    }

    #[test]
    fn detects_corrupted_trace() {
        let cfg = ManagerConfig::paper_default();
        let jobs = jobs();
        let mut out = simulate(&cfg, &jobs, &mut FirstCandidatePolicy).unwrap();
        // Remove an exec-end event: lifecycle checks must fire.
        let idx = out
            .trace
            .events
            .iter()
            .position(|e| matches!(e, TraceEvent::ExecEnd { .. }))
            .unwrap();
        out.trace.events.remove(idx);
        let violations = validate_trace(&out.trace, &jobs, cfg.device.reconfig_latency, None);
        assert!(!violations.is_empty());
    }
}
