//! Trace validation: checks that a recorded schedule obeys every system
//! invariant. Property tests run random workloads through every policy
//! and validate the traces; golden tests validate the paper examples.
//!
//! Checked invariants:
//!
//! 1. Reconfigurations — demand *and* speculative — are serialised on
//!    the single port; demand loads and completed prefetches take
//!    exactly the device latency, and a cancelled prefetch is aborted
//!    inside its write interval.
//! 2. Per RU, load and execution intervals never overlap, and a
//!    speculative load never targets an RU whose resident is claimed
//!    (placed but not yet finished) or executing.
//! 3. A task executes exactly once, after its configuration was loaded
//!    into or reused on its RU.
//! 4. A task starts only after all its predecessors finished.
//! 5. Graph executions are sequential and in arrival order (FIFO over
//!    the online queue; plain submission order in the batch setting),
//!    and never start before the job's arrival.
//! 6. A reuse claim only happens when the same configuration was left
//!    on that RU by a previous load (demand or completed speculative)
//!    with no intervening overwrite.
//! 7. **The prefetch guard**: a speculative load never evicts a
//!    resident configuration whose next request comes strictly before
//!    the fetched configuration's — checked against the *entire*
//!    remaining request stream (a superset of any lookahead window the
//!    engine could have used, so an engine guard violation can never
//!    hide behind limited visibility).
//! 8. Stats counters match the trace: load/reuse/skip/stall/exec
//!    counts, the prefetch issue/complete/cancel/hit/waste counters,
//!    traffic totals, the port busy time and the makespan.

use crate::job::JobSpec;
use crate::stats::RunStats;
use crate::trace::{Trace, TraceEvent};
use rtr_sim::{SimDuration, SimTime};
use rtr_taskgraph::{reconfiguration_sequence, ConfigId};
use std::collections::HashMap;
use std::fmt;

/// A violated invariant, with human-readable context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation(pub String);

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace invariant violated: {}", self.0)
    }
}

macro_rules! check {
    ($violations:expr, $cond:expr, $($arg:tt)+) => {
        if !$cond {
            $violations.push(Violation(format!($($arg)+)));
        }
    };
}

/// Validates `trace` (produced by simulating `jobs`) against all
/// invariants; returns every violation found.
pub fn validate_trace(
    trace: &Trace,
    jobs: &[JobSpec],
    latency: SimDuration,
    stats: Option<&RunStats>,
) -> Vec<Violation> {
    let mut v: Vec<Violation> = Vec::new();

    // --- Invariant 1: serialised reconfiguration port. ---
    let mut port_busy_until: Option<(SimTime, u32)> = None;
    // The single in-flight speculative load `(config, started, ru)`.
    let mut pending_prefetch: Option<(ConfigId, SimTime, u16)> = None;
    // Port write time actually spent (invariant 8 vs `port_busy_time`).
    let mut port_busy_total = SimDuration::ZERO;
    // --- Per-RU interval tracking (invariant 2). ---
    let mut ru_busy_until: HashMap<u16, SimTime> = HashMap::new();
    // Placed-but-not-finished tasks per RU (claimed residents — never
    // legal speculative-eviction targets).
    let mut ru_claims: HashMap<u16, u32> = HashMap::new();
    // RUs whose resident arrived via a completed prefetch and was not
    // claimed since (attributes hits and waste, invariant 8).
    let mut speculative_resident: HashMap<u16, bool> = HashMap::new();
    // Per-job count of placements (loads + reuses) — placements follow
    // the design-time reconfiguration sequence, so this is the cursor
    // into the job's configuration sequence (invariant 7).
    let mut placements: HashMap<u32, usize> = HashMap::new();
    // Per-job configuration sequences, derived lazily: only traces with
    // speculative loads pay for the design-time recomputation.
    let mut cfg_seqs: Option<Vec<Vec<ConfigId>>> = None;
    let seqs_of = |jobs: &[JobSpec]| -> Vec<Vec<ConfigId>> {
        jobs.iter()
            .map(|j| {
                reconfiguration_sequence(&j.graph)
                    .into_iter()
                    .map(|n| j.graph.config_of(n))
                    .collect()
            })
            .collect()
    };
    // --- Per (job, node) lifecycle (invariants 3, 4). ---
    #[derive(Default, Clone)]
    struct NodeLife {
        placed_at: Option<SimTime>, // load end or reuse
        exec_start: Option<SimTime>,
        exec_end: Option<SimTime>,
        ru: Option<u16>,
    }
    let mut life: HashMap<(u32, u32), NodeLife> = HashMap::new();
    // --- Resident config per RU (invariant 6). ---
    let mut resident: HashMap<u16, ConfigId> = HashMap::new();
    // --- Graph ordering (invariant 5): activation follows arrival
    // order, ties broken by submission index (the engine's queue is
    // FIFO per instant). ---
    let mut expected_order: Vec<u32> = (0..jobs.len() as u32).collect();
    expected_order.sort_by_key(|&i| (jobs[i as usize].arrival, i));
    let mut graph_started: Vec<u32> = Vec::new();
    let mut graph_ended: Vec<(u32, SimTime)> = Vec::new();
    let mut current_graph: Option<u32> = None;
    // --- Counters (invariant 8). ---
    let (mut loads, mut reuses, mut execs, mut skips, mut stalls) = (0u64, 0u64, 0u64, 0u64, 0u64);
    let (mut pf_issued, mut pf_completed, mut pf_cancelled, mut pf_hits, mut pf_wasted) =
        (0u64, 0u64, 0u64, 0u64, 0u64);

    let mut pending_load: HashMap<u16, (ConfigId, SimTime, u32, u32)> = HashMap::new();

    for ev in trace.iter() {
        match *ev {
            TraceEvent::JobArrival { job, at } => {
                check!(
                    v,
                    jobs.get(job as usize).map(|j| j.arrival) == Some(at),
                    "job {job} arrived at {at}, but its spec says {:?}",
                    jobs.get(job as usize).map(|j| j.arrival)
                );
            }
            TraceEvent::GraphStart { job, at } => {
                check!(
                    v,
                    current_graph.is_none(),
                    "graph {job} started at {at} while graph {current_graph:?} is active"
                );
                if let Some(&(prev, prev_end)) = graph_ended.last() {
                    check!(
                        v,
                        at >= prev_end,
                        "graph {job} started at {at} before graph {prev} ended at {prev_end}"
                    );
                }
                check!(
                    v,
                    jobs.get(job as usize).is_none_or(|j| at >= j.arrival),
                    "graph {job} started at {at} before its arrival at {:?}",
                    jobs.get(job as usize).map(|j| j.arrival)
                );
                check!(
                    v,
                    expected_order.get(graph_started.len()) == Some(&job),
                    "graphs must start in arrival order {expected_order:?}; \
                     got {job} after {graph_started:?}"
                );
                graph_started.push(job);
                current_graph = Some(job);
            }
            TraceEvent::GraphEnd { job, at } => {
                check!(
                    v,
                    current_graph == Some(job),
                    "graph {job} ended at {at} but is not current"
                );
                current_graph = None;
                graph_ended.push((job, at));
            }
            TraceEvent::LoadStart {
                job,
                node,
                config,
                ru,
                at,
            } => {
                loads += 1;
                check!(
                    v,
                    current_graph == Some(job),
                    "load for job {job} node {node} at {at}: job is not current \
                     (no cross-graph prefetch)"
                );
                if let Some((busy_until, j)) = port_busy_until {
                    check!(
                        v,
                        at >= busy_until,
                        "load at {at} overlaps in-flight reconfiguration of job {j} \
                         (busy until {busy_until})"
                    );
                }
                check!(
                    v,
                    pending_prefetch.is_none(),
                    "demand load at {at} started while a speculative load of \
                     {:?} was still in flight (it must be cancelled first)",
                    pending_prefetch
                );
                port_busy_until = Some((at + latency, job));
                if let Some(&busy) = ru_busy_until.get(&ru.0) {
                    check!(
                        v,
                        at >= busy,
                        "{ru} reloaded at {at} while busy until {busy}"
                    );
                }
                ru_busy_until.insert(ru.0, at + latency);
                pending_load.insert(ru.0, (config, at, job, node.0));
                // Eviction: the previous resident is gone; a wasted
                // prefetch (never claimed) is accounted here.
                resident.remove(&ru.0);
                if speculative_resident.remove(&ru.0) == Some(true) {
                    pf_wasted += 1;
                }
            }
            TraceEvent::LoadEnd {
                job,
                node,
                config,
                ru,
                at,
            } => {
                match pending_load.remove(&ru.0) {
                    Some((c, started, j, n)) => {
                        check!(
                            v,
                            c == config && j == job && n == node.0,
                            "load end at {at} on {ru} does not match its start"
                        );
                        check!(
                            v,
                            at.since(started) == latency,
                            "load of {config} on {ru} took {} (expected {latency})",
                            at.since(started)
                        );
                    }
                    None => v.push(Violation(format!(
                        "load end at {at} on {ru} without a start"
                    ))),
                }
                port_busy_total += latency;
                resident.insert(ru.0, config);
                life.entry((job, node.0)).or_default().placed_at = Some(at);
                life.entry((job, node.0)).or_default().ru = Some(ru.0);
                *ru_claims.entry(ru.0).or_default() += 1;
                *placements.entry(job).or_default() += 1;
            }
            TraceEvent::Reuse {
                job,
                node,
                config,
                ru,
                at,
            } => {
                reuses += 1;
                check!(
                    v,
                    current_graph == Some(job),
                    "reuse for job {job} at {at}: job is not current"
                );
                check!(
                    v,
                    resident.get(&ru.0) == Some(&config),
                    "reuse of {config} on {ru} at {at} but resident is {:?}",
                    resident.get(&ru.0)
                );
                life.entry((job, node.0)).or_default().placed_at = Some(at);
                life.entry((job, node.0)).or_default().ru = Some(ru.0);
                *ru_claims.entry(ru.0).or_default() += 1;
                *placements.entry(job).or_default() += 1;
                // A claim on a still-speculative resident is a hit.
                if speculative_resident.remove(&ru.0) == Some(true) {
                    pf_hits += 1;
                }
            }
            TraceEvent::ExecStart {
                job,
                node,
                config,
                ru,
                at,
            } => {
                check!(
                    v,
                    current_graph == Some(job),
                    "exec start for job {job} at {at}: job is not current"
                );
                check!(
                    v,
                    resident.get(&ru.0) == Some(&config),
                    "exec of {config} on {ru} at {at} but resident is {:?}",
                    resident.get(&ru.0)
                );
                let entry = life.entry((job, node.0)).or_default();
                check!(
                    v,
                    entry.exec_start.is_none(),
                    "node {node} of job {job} executed twice"
                );
                match entry.placed_at {
                    Some(p) => check!(
                        v,
                        at >= p,
                        "node {node} of job {job} started at {at} before its \
                         configuration arrived at {p}"
                    ),
                    None => v.push(Violation(format!(
                        "node {node} of job {job} started without load or reuse"
                    ))),
                }
                check!(
                    v,
                    entry.ru == Some(ru.0),
                    "node {node} of job {job} executes on {ru} but was placed on RU{:?}",
                    entry.ru.map(|r| r + 1)
                );
                entry.exec_start = Some(at);
                // Predecessors must have finished.
                let graph = &jobs[job as usize].graph;
                for &p in graph.preds(rtr_taskgraph::NodeId(node.0)) {
                    let pred_end = life.get(&(job, p.0)).and_then(|l| l.exec_end);
                    match pred_end {
                        Some(e) => check!(
                            v,
                            at >= e,
                            "node {node} of job {job} started at {at} before \
                             predecessor {p} finished at {e}"
                        ),
                        None => v.push(Violation(format!(
                            "node {node} of job {job} started before predecessor {p} ran"
                        ))),
                    }
                }
            }
            TraceEvent::ExecEnd {
                job, node, ru, at, ..
            } => {
                execs += 1;
                let entry = life.entry((job, node.0)).or_default();
                match entry.exec_start {
                    Some(s) => {
                        let expected = jobs[job as usize]
                            .graph
                            .exec_time(rtr_taskgraph::NodeId(node.0));
                        check!(
                            v,
                            at.since(s) == expected,
                            "node {node} of job {job} ran {} (expected {expected})",
                            at.since(s)
                        );
                    }
                    None => v.push(Violation(format!(
                        "exec end without start for node {node} of job {job}"
                    ))),
                }
                check!(
                    v,
                    entry.exec_end.is_none(),
                    "node {node} of job {job} finished twice"
                );
                entry.exec_end = Some(at);
                ru_busy_until.insert(ru.0, at);
                if let Some(c) = ru_claims.get_mut(&ru.0) {
                    *c = c.saturating_sub(1);
                }
            }
            TraceEvent::PrefetchStart { config, ru, at } => {
                pf_issued += 1;
                check!(
                    v,
                    current_graph.is_some(),
                    "speculative load at {at} outside any active graph (the \
                     planner only runs while a graph is current)"
                );
                // Port exclusivity with both lanes.
                if let Some((busy_until, j)) = port_busy_until {
                    check!(
                        v,
                        at >= busy_until,
                        "speculative load at {at} overlaps job {j}'s demand \
                         reconfiguration (busy until {busy_until})"
                    );
                }
                check!(
                    v,
                    pending_prefetch.is_none(),
                    "speculative load at {at} while another one is in flight"
                );
                if let Some(&busy) = ru_busy_until.get(&ru.0) {
                    check!(
                        v,
                        at >= busy,
                        "{ru} speculatively reloaded at {at} while busy until {busy}"
                    );
                }
                check!(
                    v,
                    ru_claims.get(&ru.0).copied().unwrap_or(0) == 0,
                    "speculative load at {at} targets {ru}, whose resident is \
                     claimed by a placed-but-unfinished task"
                );
                ru_busy_until.insert(ru.0, at + latency);
                pending_prefetch = Some((config, at, ru.0));
                let evicted = resident.remove(&ru.0);
                if speculative_resident.remove(&ru.0) == Some(true) {
                    pf_wasted += 1;
                }
                // Invariant 7 — the reuse-distance guard. The remaining
                // request stream (current graph's unplaced tail, then
                // every not-yet-started job in activation order) is a
                // superset of any engine-side lookahead window starting
                // at the same point, so "the victim's next request is
                // strictly after the fetched configuration's" here is
                // implied by the engine's windowed guard — and any
                // engine regression surfaces as a violation.
                let seqs = cfg_seqs.get_or_insert_with(|| seqs_of(jobs));
                // Walk the stream segment by segment (current tail,
                // then each not-yet-started job) without materialising
                // it, early-exiting once both queried configurations
                // are located — on real traces the nearest requests sit
                // in the first segment or two, so this is O(1)-ish per
                // speculative load instead of O(stream).
                let mut fetched_next: Option<usize> = None;
                let mut victim_next: Option<usize> = None;
                let cur_tail = current_graph.map(|cur| {
                    let seq = &seqs[cur as usize];
                    let done = placements.get(&cur).copied().unwrap_or(0);
                    seq[done.min(seq.len())..].as_ref()
                });
                let rest = expected_order
                    .iter()
                    .skip(graph_started.len())
                    .map(|&j| seqs[j as usize].as_slice());
                let mut base = 0usize;
                for seg in cur_tail.into_iter().chain(rest) {
                    for (k, &c) in seg.iter().enumerate() {
                        if fetched_next.is_none() && c == config {
                            fetched_next = Some(base + k);
                        }
                        if victim_next.is_none() && evicted == Some(c) {
                            victim_next = Some(base + k);
                        }
                    }
                    base += seg.len();
                    if fetched_next.is_some() && (evicted.is_none() || victim_next.is_some()) {
                        break;
                    }
                }
                check!(
                    v,
                    fetched_next.is_some(),
                    "speculative load of {config} at {at}: the configuration is \
                     never requested again"
                );
                if let (Some(victim), Some(fetched_next)) = (evicted, fetched_next) {
                    check!(
                        v,
                        victim_next.is_none_or(|vn| vn > fetched_next),
                        "prefetch guard violated at {at}: speculative load of \
                         {config} (next request at stream offset {fetched_next}) \
                         evicted {victim} whose next request comes at offset \
                         {victim_next:?} — strictly nearer"
                    );
                }
            }
            TraceEvent::PrefetchEnd { config, ru, at } => {
                pf_completed += 1;
                match pending_prefetch.take() {
                    Some((c, started, r)) => {
                        check!(
                            v,
                            c == config && r == ru.0,
                            "speculative load end at {at} on {ru} does not match \
                             its start"
                        );
                        check!(
                            v,
                            at.since(started) == latency,
                            "speculative load of {config} on {ru} took {} \
                             (expected {latency})",
                            at.since(started)
                        );
                        port_busy_total += at.since(started);
                    }
                    None => v.push(Violation(format!(
                        "speculative load end at {at} on {ru} without a start"
                    ))),
                }
                resident.insert(ru.0, config);
                speculative_resident.insert(ru.0, true);
            }
            TraceEvent::PrefetchCancel { config, ru, at } => {
                pf_cancelled += 1;
                match pending_prefetch.take() {
                    Some((c, started, r)) => {
                        check!(
                            v,
                            c == config && r == ru.0,
                            "speculative cancel at {at} on {ru} does not match \
                             the in-flight load"
                        );
                        check!(
                            v,
                            at >= started && at.since(started) <= latency,
                            "speculative load of {config} cancelled at {at}, \
                             outside its write interval (started {started})"
                        );
                        port_busy_total += at.since(started);
                    }
                    None => v.push(Violation(format!(
                        "speculative cancel at {at} on {ru} with nothing in flight"
                    ))),
                }
                // The partially written RU holds nothing and is free.
                resident.remove(&ru.0);
                ru_busy_until.insert(ru.0, at);
            }
            TraceEvent::Skip { at, .. } => {
                skips += 1;
                check!(
                    v,
                    current_graph.is_some(),
                    "skip at {at} outside any active graph"
                );
            }
            TraceEvent::Stall { at, .. } => {
                stalls += 1;
                check!(
                    v,
                    current_graph.is_some(),
                    "stall at {at} outside any active graph"
                );
            }
        }
    }

    // Every started graph ended.
    check!(
        v,
        graph_ended.len() == graph_started.len(),
        "{} graphs started but {} ended",
        graph_started.len(),
        graph_ended.len()
    );
    // Every executed node ran exactly once with a placement.
    for ((job, node), l) in &life {
        check!(
            v,
            l.exec_start.is_some() && l.exec_end.is_some(),
            "node {node} of job {job} never completed execution"
        );
    }
    // Executed count matches the workload.
    let expected_execs: u64 = graph_started
        .iter()
        .map(|&j| jobs[j as usize].graph.len() as u64)
        .sum();
    check!(
        v,
        execs == expected_execs,
        "trace has {execs} executions, workload requires {expected_execs}"
    );

    // A started speculative load must end or be cancelled.
    check!(
        v,
        pending_prefetch.is_none(),
        "speculative load {pending_prefetch:?} neither completed nor cancelled"
    );

    if let Some(s) = stats {
        check!(
            v,
            s.loads == loads,
            "stats.loads {} != trace {loads}",
            s.loads
        );
        check!(
            v,
            s.reuses == reuses,
            "stats.reuses {} != trace {reuses}",
            s.reuses
        );
        check!(
            v,
            s.executed == execs,
            "stats.executed {} != trace {execs}",
            s.executed
        );
        check!(
            v,
            s.skips == skips,
            "stats.skips {} != trace {skips}",
            s.skips
        );
        check!(
            v,
            s.stalls == stalls,
            "stats.stalls {} != trace {stalls}",
            s.stalls
        );
        let pf = s.prefetch;
        check!(
            v,
            (pf.issued, pf.completed, pf.cancelled) == (pf_issued, pf_completed, pf_cancelled),
            "stats.prefetch issued/completed/cancelled {:?} != trace {:?}",
            (pf.issued, pf.completed, pf.cancelled),
            (pf_issued, pf_completed, pf_cancelled)
        );
        check!(
            v,
            (pf.hits, pf.wasted) == (pf_hits, pf_wasted),
            "stats.prefetch hits/wasted {:?} != trace {:?}",
            (pf.hits, pf.wasted),
            (pf_hits, pf_wasted)
        );
        check!(
            v,
            s.traffic.loads == loads
                && s.traffic.reuses == reuses
                && s.traffic.prefetch_loads == pf_completed,
            "stats.traffic load/reuse/prefetch counters {:?} != trace {:?}",
            (s.traffic.loads, s.traffic.reuses, s.traffic.prefetch_loads),
            (loads, reuses, pf_completed)
        );
        check!(
            v,
            s.port_busy_time == port_busy_total,
            "stats.port_busy_time {} != trace total {port_busy_total}",
            s.port_busy_time
        );
        if let Some(&(_, last_end)) = graph_ended.last() {
            check!(
                v,
                s.makespan == last_end.since(SimTime::ZERO),
                "stats.makespan {} != last graph completion {last_end} (no \
                 trailing event may extend the makespan)",
                s.makespan
            );
        }
    }
    v
}

/// Panics with a readable report if `validate_trace` finds violations.
pub fn assert_valid(
    trace: &Trace,
    jobs: &[JobSpec],
    latency: SimDuration,
    stats: Option<&RunStats>,
) {
    let violations = validate_trace(trace, jobs, latency, stats);
    if !violations.is_empty() {
        let mut report = String::from("schedule trace violates invariants:\n");
        for violation in &violations {
            report.push_str(&format!("  - {violation}\n"));
        }
        panic!("{report}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ManagerConfig;
    use crate::manager::simulate;
    use crate::policy::FirstCandidatePolicy;
    use rtr_taskgraph::benchmarks;
    use std::sync::Arc;

    fn jobs() -> Vec<JobSpec> {
        let jpeg = Arc::new(benchmarks::jpeg());
        let mpeg = Arc::new(benchmarks::mpeg1());
        vec![
            JobSpec::new(Arc::clone(&jpeg)),
            JobSpec::new(mpeg),
            JobSpec::new(jpeg),
        ]
    }

    #[test]
    fn valid_run_passes() {
        let cfg = ManagerConfig::paper_default();
        let jobs = jobs();
        let out = simulate(&cfg, &jobs, &mut FirstCandidatePolicy).unwrap();
        assert_valid(
            &out.trace,
            &jobs,
            cfg.device.reconfig_latency,
            Some(&out.stats),
        );
    }

    #[test]
    fn detects_tampered_counts() {
        let cfg = ManagerConfig::paper_default();
        let jobs = jobs();
        let out = simulate(&cfg, &jobs, &mut FirstCandidatePolicy).unwrap();
        let mut bad = out.stats.clone();
        bad.reuses += 1;
        let violations = validate_trace(&out.trace, &jobs, cfg.device.reconfig_latency, Some(&bad));
        assert!(!violations.is_empty());
    }

    #[test]
    fn detects_corrupted_trace() {
        let cfg = ManagerConfig::paper_default();
        let jobs = jobs();
        let mut out = simulate(&cfg, &jobs, &mut FirstCandidatePolicy).unwrap();
        // Remove an exec-end event: lifecycle checks must fire.
        let idx = out
            .trace
            .events
            .iter()
            .position(|e| matches!(e, TraceEvent::ExecEnd { .. }))
            .unwrap();
        out.trace.events.remove(idx);
        let violations = validate_trace(&out.trace, &jobs, cfg.device.reconfig_latency, None);
        assert!(!violations.is_empty());
    }
}
