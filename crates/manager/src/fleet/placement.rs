//! Placement: routing an admitted job to one device of the fleet.
//!
//! Placement decisions happen at dispatch time, before any device has
//! simulated a cycle, so the router scores devices against a
//! deterministic *residency model*: a per-device LRU set over the
//! configuration sequences of the jobs already routed there, with
//! capacity equal to the device's RU count. The model is the dispatch
//! plane's view of "what will be resident" — the same design-time
//! information the paper's replacement module exploits inside one
//! device, lifted to cluster scope. Every decision is recorded (when
//! enabled) with the *full* per-device score vector, so the
//! `placement-residency` checker can replay the model independently
//! and confirm the claimed overlap actually existed at decision time.

use crate::job::{JobSpec, TenantId};
use rtr_sim::SimDuration;
use rtr_taskgraph::{reconfiguration_sequence, ConfigId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The pluggable placement policies the fleet knows by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementKind {
    /// Cycle through the devices in submission order.
    RoundRobin,
    /// Route to the device with the least design-time work queued,
    /// ties to the lowest index.
    LeastLoaded,
    /// The headline router: route to the device whose residency model
    /// overlaps the job's configuration sequence the most — the
    /// paper's reuse insight at cluster scope. Ties fall back to the
    /// least-loaded device, so an overlap-free fleet degrades to load
    /// balancing instead of pile-up.
    ReuseAffinity,
}

impl PlacementKind {
    /// All placement policies, in sweep order.
    pub const ALL: [PlacementKind; 3] = [
        PlacementKind::RoundRobin,
        PlacementKind::LeastLoaded,
        PlacementKind::ReuseAffinity,
    ];

    /// Stable kebab-case label (tables, CSV, JSON round-trips).
    pub fn label(&self) -> &'static str {
        match self {
            PlacementKind::RoundRobin => "round-robin",
            PlacementKind::LeastLoaded => "least-loaded",
            PlacementKind::ReuseAffinity => "reuse-affinity",
        }
    }

    /// Parses a [`Self::label`] back to the kind.
    pub fn from_label(s: &str) -> Option<PlacementKind> {
        PlacementKind::ALL.iter().copied().find(|k| k.label() == s)
    }

    /// Builds the policy implementation for this kind.
    pub fn build(&self) -> Box<dyn PlacementPolicy> {
        match self {
            PlacementKind::RoundRobin => Box::new(RoundRobin::default()),
            PlacementKind::LeastLoaded => Box::new(LeastLoaded),
            PlacementKind::ReuseAffinity => Box::new(ReuseAffinity),
        }
    }
}

impl Serialize for PlacementKind {
    fn serialize(&self) -> serde::Value {
        serde::Value::String(self.label().to_string())
    }
}

impl Deserialize for PlacementKind {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        let s = String::deserialize(v)?;
        PlacementKind::from_label(&s)
            .ok_or_else(|| serde::Error::msg(format!("unknown placement policy '{s}'")))
    }
}

/// What one device looks like to the router at decision time. All
/// fields derive from dispatch-plane bookkeeping only — no device has
/// simulated anything yet when placement runs.
#[derive(Debug, Clone, Copy)]
pub struct DeviceView {
    /// Device index within the fleet.
    pub index: usize,
    /// The device's RU count (its residency-model capacity).
    pub rus: usize,
    /// Jobs already routed to the device.
    pub queued_jobs: usize,
    /// Summed design-time execution work already routed there.
    pub queued_work: SimDuration,
    /// Distinct configurations of the arriving job's cfg-sequence
    /// present in the device's residency model.
    pub overlap: u32,
}

/// A deterministic device router. `place` must be a pure function of
/// the views (plus internal counters seeded at construction): the
/// whole fleet contract is replayability.
pub trait PlacementPolicy: Send {
    /// Stable name (matches the [`PlacementKind`] label).
    fn name(&self) -> &'static str;
    /// Picks the device index for `job` among `views` (never empty).
    fn place(&mut self, job: &JobSpec, views: &[DeviceView]) -> usize;
}

/// Cycle through devices in dispatch order.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl PlacementPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        PlacementKind::RoundRobin.label()
    }
    fn place(&mut self, _job: &JobSpec, views: &[DeviceView]) -> usize {
        let idx = self.next % views.len();
        self.next = self.next.wrapping_add(1);
        idx
    }
}

/// Route to the device with the least queued design-time work.
#[derive(Debug)]
pub struct LeastLoaded;

impl PlacementPolicy for LeastLoaded {
    fn name(&self) -> &'static str {
        PlacementKind::LeastLoaded.label()
    }
    fn place(&mut self, _job: &JobSpec, views: &[DeviceView]) -> usize {
        least_loaded(views)
    }
}

/// Route to the device with the highest residency overlap; ties fall
/// back to least-loaded.
#[derive(Debug)]
pub struct ReuseAffinity;

impl PlacementPolicy for ReuseAffinity {
    fn name(&self) -> &'static str {
        PlacementKind::ReuseAffinity.label()
    }
    fn place(&mut self, _job: &JobSpec, views: &[DeviceView]) -> usize {
        let best = views.iter().map(|v| v.overlap).max().unwrap_or(0);
        let candidates: Vec<DeviceView> = views
            .iter()
            .copied()
            .filter(|v| v.overlap == best)
            .collect();
        candidates[least_loaded(&candidates)].index
    }
}

/// Lowest-queued-work view (ties to the lowest device index, which is
/// the iteration order).
fn least_loaded(views: &[DeviceView]) -> usize {
    let mut best = 0usize;
    for (i, v) in views.iter().enumerate().skip(1) {
        if v.queued_work < views[best].queued_work {
            best = i;
        }
    }
    best
}

/// The dispatch plane's deterministic model of one device's residency:
/// an LRU set of configurations with capacity equal to the device's
/// usable RU count. Public so the `placement-residency` checker can
/// replay decisions independently of the fleet that made them.
#[derive(Debug, Clone)]
pub struct ResidencyModel {
    capacity: usize,
    /// LRU order, least recent first.
    resident: Vec<ConfigId>,
}

impl ResidencyModel {
    /// An empty model for a device with `capacity` RUs.
    pub fn new(capacity: usize) -> Self {
        ResidencyModel {
            capacity,
            resident: Vec::with_capacity(capacity),
        }
    }

    /// Distinct configurations of `seq` present in the model.
    pub fn overlap(&self, seq: &[ConfigId]) -> u32 {
        let mut n = 0u32;
        for (i, c) in seq.iter().enumerate() {
            if seq[..i].contains(c) {
                continue; // count each distinct configuration once
            }
            if self.resident.contains(c) {
                n += 1;
            }
        }
        n
    }

    /// Records that `seq` was routed here: every configuration is
    /// touched in sequence order (moved to most-recent, inserted with
    /// LRU eviction when absent).
    pub fn admit(&mut self, seq: &[ConfigId]) {
        if self.capacity == 0 {
            return;
        }
        for &c in seq {
            if let Some(pos) = self.resident.iter().position(|&r| r == c) {
                self.resident.remove(pos);
            } else if self.resident.len() == self.capacity {
                self.resident.remove(0);
            }
            self.resident.push(c);
        }
    }

    /// The resident set in LRU order (least recent first).
    pub fn resident(&self) -> &[ConfigId] {
        &self.resident
    }
}

/// One recorded placement decision: everything the
/// `placement-residency` checker needs to replay the router's view at
/// the instant the decision was made.
#[derive(Debug, Clone)]
pub struct PlacementDecision {
    /// Fleet-wide submission index of the job.
    pub submit_index: usize,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// The device the router chose.
    pub device: usize,
    /// The job's distinct-configuration sequence the overlap was
    /// scored against.
    pub cfg_seq: Arc<Vec<ConfigId>>,
    /// Per-device residency overlaps at decision time.
    pub overlaps: Vec<u32>,
    /// Per-device queued design-time work at decision time.
    pub queued_work: Vec<SimDuration>,
}

/// The distinct-configuration sequence of one job, in design-time
/// reconfiguration order — the unit the residency model tracks.
pub fn job_cfg_seq(job: &JobSpec) -> Vec<ConfigId> {
    let mut seq = Vec::new();
    for node in reconfiguration_sequence(&job.graph) {
        let c = job.graph.config_of(node);
        if !seq.contains(&c) {
            seq.push(c);
        }
    }
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_taskgraph::benchmarks;

    fn views(work: &[u64], overlap: &[u32]) -> Vec<DeviceView> {
        work.iter()
            .zip(overlap)
            .enumerate()
            .map(|(i, (&w, &o))| DeviceView {
                index: i,
                rus: 4,
                queued_jobs: 0,
                queued_work: SimDuration::from_us(w),
                overlap: o,
            })
            .collect()
    }

    #[test]
    fn labels_round_trip() {
        for kind in PlacementKind::ALL {
            assert_eq!(PlacementKind::from_label(kind.label()), Some(kind));
            let v = Serialize::serialize(&kind);
            assert_eq!(PlacementKind::deserialize(&v).unwrap(), kind);
        }
        assert!(PlacementKind::from_label("nope").is_none());
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::default();
        let g = std::sync::Arc::new(benchmarks::jpeg());
        let job = JobSpec::new(g);
        let v = views(&[0, 0, 0], &[0, 0, 0]);
        let picks: Vec<usize> = (0..5).map(|_| rr.place(&job, &v)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn least_loaded_prefers_min_work_lowest_index() {
        let g = std::sync::Arc::new(benchmarks::jpeg());
        let job = JobSpec::new(g);
        let mut ll = LeastLoaded;
        assert_eq!(ll.place(&job, &views(&[5, 2, 2], &[0, 0, 0])), 1);
        assert_eq!(ll.place(&job, &views(&[3, 3, 3], &[0, 0, 0])), 0);
    }

    #[test]
    fn reuse_affinity_prefers_overlap_then_load() {
        let g = std::sync::Arc::new(benchmarks::jpeg());
        let job = JobSpec::new(g);
        let mut ra = ReuseAffinity;
        // Highest overlap wins even when busier.
        assert_eq!(ra.place(&job, &views(&[9, 1, 1], &[3, 1, 0])), 0);
        // Overlap ties fall back to least-loaded.
        assert_eq!(ra.place(&job, &views(&[9, 1, 4], &[2, 2, 0])), 1);
    }

    #[test]
    fn residency_model_is_lru_with_capacity() {
        let mut m = ResidencyModel::new(2);
        let c = |n: u32| ConfigId(n);
        m.admit(&[c(1), c(2)]);
        assert_eq!(m.overlap(&[c(1), c(2), c(3)]), 2);
        // Touch 1, then admit 3: 2 is the LRU victim.
        m.admit(&[c(1)]);
        m.admit(&[c(3)]);
        assert_eq!(m.resident(), &[c(1), c(3)]);
        assert_eq!(m.overlap(&[c(2)]), 0);
        // Duplicates in a sequence count once.
        assert_eq!(m.overlap(&[c(1), c(1)]), 1);
    }

    #[test]
    fn cfg_seq_is_distinct_in_reconfiguration_order() {
        let g = std::sync::Arc::new(benchmarks::jpeg());
        let job = JobSpec::new(std::sync::Arc::clone(&g));
        let seq = job_cfg_seq(&job);
        assert!(!seq.is_empty());
        for (i, c) in seq.iter().enumerate() {
            assert!(!seq[..i].contains(c), "duplicate config in cfg_seq");
        }
    }
}
