//! Fleet-level ledgers: per-tenant accounting and the aggregate
//! roll-up of per-device [`RunStats`].
//!
//! Everything here is *derived* — the fleet computes it from admission
//! events and device outcomes, and the `fleet-accounting` checker
//! recomputes it independently and asserts equality. No counter is
//! authoritative on its own.

use crate::fleet::placement::{PlacementDecision, PlacementKind};
use crate::job::TenantId;
use crate::stats::RunStats;
use rtr_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// One tenant's ledger across the whole fleet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantStats {
    /// The tenant this row aggregates.
    pub tenant: u32,
    /// Jobs the tenant submitted to the ingress queue.
    pub submitted: u64,
    /// Submissions that passed admission control.
    pub admitted: u64,
    /// Submissions rejected with
    /// [`FleetError::QuotaExceeded`](crate::fleet::FleetError).
    pub rejected: u64,
    /// Admitted jobs whose task graph ran to completion.
    pub completed: u64,
    /// Task instances executed on behalf of the tenant, counted at
    /// dispatch time from the job's design-time graph size. Runtime
    /// fault recovery and preemption replays re-execute tasks *on the
    /// device* without re-dispatching, so the tenant sum is a lower
    /// bound on the device-measured total.
    pub executed: u64,
}

impl TenantStats {
    /// An empty ledger for `tenant`.
    pub fn new(tenant: TenantId) -> Self {
        TenantStats {
            tenant: tenant.0,
            submitted: 0,
            admitted: 0,
            rejected: 0,
            completed: 0,
            executed: 0,
        }
    }

    /// Per-tenant ledger identity: every submission was either
    /// admitted or rejected, and only admitted jobs can complete.
    pub fn balanced(&self) -> bool {
        self.submitted == self.admitted + self.rejected && self.completed <= self.admitted
    }
}

/// One admission-control decision, in fleet submission order. Always
/// recorded (two words per job) so the `tenant-isolation` checker can
/// replay admission without re-running the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionEvent {
    /// Fleet-wide submission index (rejected submissions count too).
    pub submit_index: usize,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// The tenant's jobs already pending in the ingress queue when
    /// this submission arrived.
    pub pending_before: u64,
    /// Whether the submission was admitted.
    pub admitted: bool,
}

/// Aggregate statistics of one fleet run: totals, the per-tenant
/// ledger, and the untouched per-device [`RunStats`] they roll up
/// from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Number of pooled devices.
    pub devices: usize,
    /// Label of the placement policy that routed the jobs.
    pub placement: String,
    /// Jobs submitted to the ingress queue (admitted + rejected).
    pub submitted: u64,
    /// Jobs that passed admission control.
    pub admitted: u64,
    /// Jobs rejected by per-tenant quota backpressure.
    pub rejected: u64,
    /// Admitted jobs whose task graph ran to completion.
    pub completed: u64,
    /// Task instances executed across all devices.
    pub executed: u64,
    /// Task instances whose configuration was reused (no load),
    /// summed across devices.
    pub reuses: u64,
    /// Reconfigurations performed across all devices.
    pub loads: u64,
    /// Fleet makespan: the latest device makespan (devices run in
    /// parallel in wall-clock terms).
    pub makespan: SimDuration,
    /// Per-tenant ledgers, ascending tenant id.
    pub per_tenant: Vec<TenantStats>,
    /// The per-device run statistics the totals roll up from, in
    /// device order.
    pub per_device: Vec<RunStats>,
}

impl FleetStats {
    /// The ledger row of `tenant`, if it ever submitted.
    pub fn tenant(&self, tenant: TenantId) -> Option<&TenantStats> {
        self.per_tenant.iter().find(|t| t.tenant == tenant.0)
    }

    /// The paper's reuse rate at cluster scope: reused task instances
    /// over executed task instances across every pooled device, in
    /// percent. This is the headline metric `ReuseAffinity` placement
    /// is built to raise — routing a job to the device that already
    /// holds its configurations turns cross-device cache misses into
    /// reuses.
    pub fn cross_device_reuse_rate_pct(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.reuses as f64 / self.executed as f64 * 100.0
        }
    }

    /// Jain's fairness index over per-tenant *completed* jobs, in
    /// `(0, 1]`: `(Σx)² / (n · Σx²)`. 1.0 means every tenant finished
    /// the same number of jobs; `1/n` means one tenant got everything.
    /// An empty or all-zero ledger reports 1.0 (vacuously fair, never
    /// NaN).
    pub fn fairness_index(&self) -> f64 {
        let xs: Vec<f64> = self.per_tenant.iter().map(|t| t.completed as f64).collect();
        let sum: f64 = xs.iter().sum();
        let sq: f64 = xs.iter().map(|x| x * x).sum();
        if xs.is_empty() || sq == 0.0 {
            1.0
        } else {
            (sum * sum) / (xs.len() as f64 * sq)
        }
    }

    /// The roll-up identities the `fleet-accounting` checker asserts:
    /// totals equal the sum of the per-device ledgers, per-tenant rows
    /// sum to the fleet totals (executed is a lower bound — replays
    /// re-execute on-device without re-dispatching), each row is
    /// itself balanced, and the makespan is the device maximum.
    pub fn balanced(&self) -> bool {
        let dev_executed: u64 = self.per_device.iter().map(|d| d.executed).sum();
        let dev_reuses: u64 = self.per_device.iter().map(|d| d.reuses).sum();
        let dev_loads: u64 = self.per_device.iter().map(|d| d.loads).sum();
        let dev_completed: u64 = self
            .per_device
            .iter()
            .map(|d| d.graph_completions.len() as u64)
            .sum();
        let dev_makespan = self
            .per_device
            .iter()
            .map(|d| d.makespan)
            .max()
            .unwrap_or(SimDuration::ZERO);
        let t_sub: u64 = self.per_tenant.iter().map(|t| t.submitted).sum();
        let t_adm: u64 = self.per_tenant.iter().map(|t| t.admitted).sum();
        let t_rej: u64 = self.per_tenant.iter().map(|t| t.rejected).sum();
        let t_comp: u64 = self.per_tenant.iter().map(|t| t.completed).sum();
        let t_exec: u64 = self.per_tenant.iter().map(|t| t.executed).sum();
        self.devices == self.per_device.len()
            && self.executed == dev_executed
            && self.reuses == dev_reuses
            && self.loads == dev_loads
            && self.completed == dev_completed
            && self.makespan == dev_makespan
            && self.submitted == self.admitted + self.rejected
            && (t_sub, t_adm, t_rej) == (self.submitted, self.admitted, self.rejected)
            && t_comp == self.completed
            && t_exec <= self.executed
            && self.per_tenant.iter().all(TenantStats::balanced)
            && self
                .per_tenant
                .windows(2)
                .all(|w| w[0].tenant < w[1].tenant)
    }
}

/// Everything the fleet checkers need, borrowed from a
/// [`FleetOutcome`](crate::fleet::FleetOutcome) and its config.
/// Attached to a [`CheckContext`](crate::validate::CheckContext) via
/// `with_fleet`; single-device contexts leave it `None` and every
/// fleet checker passes vacuously (fired zero probes).
#[derive(Debug, Clone, Copy)]
pub struct FleetCheckInfo<'a> {
    /// The placement policy that routed the jobs.
    pub placement: PlacementKind,
    /// The per-tenant admission quota (`None` = unlimited).
    pub quota: Option<usize>,
    /// The aggregate roll-up under test.
    pub stats: &'a FleetStats,
    /// Recorded placement decisions (empty when decision recording was
    /// disabled — the residency checker then has nothing to replay).
    pub decisions: &'a [PlacementDecision],
    /// Recorded admission events, in submission order.
    pub admissions: &'a [AdmissionEvent],
    /// RU count of each pooled device (residency-model capacities).
    pub device_rus: &'a [usize],
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant_row(tenant: u32, sub: u64, adm: u64, comp: u64, exec: u64) -> TenantStats {
        TenantStats {
            tenant,
            submitted: sub,
            admitted: adm,
            rejected: sub - adm,
            completed: comp,
            executed: exec,
        }
    }

    fn device_stats(executed: u64, reuses: u64, completed: usize, makespan_ms: u64) -> RunStats {
        RunStats {
            policy: "test".into(),
            makespan: SimDuration::from_ms(makespan_ms),
            executed,
            reuses,
            loads: executed - reuses,
            skips: 0,
            stalls: 0,
            traffic: Default::default(),
            prefetch: Default::default(),
            port_busy_time: SimDuration::ZERO,
            graph_arrivals: vec![rtr_sim::SimTime::ZERO; completed],
            graph_completions: vec![rtr_sim::SimTime::ZERO; completed],
            ideal_makespan: SimDuration::ZERO,
            reconfig_latency: SimDuration::from_ms(4),
            qos: Default::default(),
            faults: Default::default(),
        }
    }

    fn fleet_stats() -> FleetStats {
        FleetStats {
            devices: 2,
            placement: "round-robin".into(),
            submitted: 12,
            admitted: 10,
            rejected: 2,
            completed: 10,
            executed: 30,
            reuses: 12,
            loads: 18,
            makespan: SimDuration::from_ms(90),
            per_tenant: vec![tenant_row(0, 8, 6, 6, 20), tenant_row(3, 4, 4, 4, 10)],
            per_device: vec![device_stats(20, 8, 6, 90), device_stats(10, 4, 4, 70)],
        }
    }

    #[test]
    fn roll_up_balances() {
        let s = fleet_stats();
        assert!(s.balanced());
        assert!((s.cross_device_reuse_rate_pct() - 40.0).abs() < 1e-12);
        assert_eq!(s.tenant(TenantId(3)).unwrap().admitted, 4);
        assert!(s.tenant(TenantId(1)).is_none());
    }

    #[test]
    fn imbalances_are_caught() {
        let mut s = fleet_stats();
        s.executed += 1; // totals drift from the device sum
        assert!(!s.balanced());

        let mut s = fleet_stats();
        s.per_tenant[0].rejected += 1; // tenant row no longer balanced
        assert!(!s.balanced());

        let mut s = fleet_stats();
        s.makespan = SimDuration::from_ms(80); // not the device max
        assert!(!s.balanced());

        let mut s = fleet_stats();
        s.per_tenant[0].executed += 1; // tenant sum above the device total
        assert!(!s.balanced());

        let mut s = fleet_stats();
        s.per_tenant[0].executed -= 1; // replays: device total may exceed
        assert!(s.balanced()); // the dispatch-time tenant attribution

        let mut s = fleet_stats();
        s.per_tenant.swap(0, 1); // tenant order violated
        assert!(!s.balanced());
    }

    #[test]
    fn fairness_index_is_jain() {
        let mut s = fleet_stats();
        // Two tenants, 6 and 4 completions: (10)^2 / (2 * 52) ≈ 0.9615.
        assert!((s.fairness_index() - 100.0 / 104.0).abs() < 1e-12);
        s.per_tenant[1].completed = 6;
        assert!((s.fairness_index() - 1.0).abs() < 1e-12);
        s.per_tenant.clear();
        assert_eq!(s.fairness_index(), 1.0); // vacuously fair, not NaN
    }

    #[test]
    fn tenant_ledger_identities() {
        let mut t = TenantStats::new(TenantId(5));
        assert_eq!(t.tenant, 5);
        assert!(t.balanced());
        t.submitted = 3;
        t.admitted = 2;
        t.rejected = 1;
        t.completed = 2;
        assert!(t.balanced());
        t.completed = 3; // completed more than admitted
        assert!(!t.balanced());
    }
}
