//! The fleet layer: N pooled [`Engine`]s behind one deterministic
//! job-submission API.
//!
//! The paper keeps the configurations with the nearest reuse resident
//! *inside one device*. This module lifts that insight to cluster
//! scope: a pool of heterogeneous devices (each with its own
//! [`ManagerConfig`] — RU count, reconfiguration latency, fault plan)
//! sits behind a single ingress queue with per-tenant admission
//! control, and a pluggable [`PlacementPolicy`] routes each admitted
//! job to a device. The headline [`ReuseAffinity`] router scores
//! devices by the overlap between their residency model and the
//! arriving job's configuration sequence — cross-device reuse
//! affinity.
//!
//! Everything is deterministic and replayable: the ingress is FIFO,
//! admission is a pure function of the per-tenant pending counts, and
//! placement sees only dispatch-plane bookkeeping. A fleet of one
//! device with no quotas performs exactly the call sequence of
//! [`simulate`](crate::simulate), so its device outcome is
//! byte-identical to the plain engine path (asserted in CI).
//!
//! ```
//! use rtr_manager::fleet::{Fleet, FleetConfig, PlacementKind};
//! use rtr_manager::policy::FirstCandidatePolicy;
//! use rtr_manager::{JobSpec, ManagerConfig, TenantId};
//! use rtr_taskgraph::benchmarks;
//! use std::sync::Arc;
//!
//! let cfg = FleetConfig::new(
//!     vec![ManagerConfig::paper_default(), ManagerConfig::paper_default().with_rus(6)],
//!     PlacementKind::ReuseAffinity,
//! );
//! let mut fleet = Fleet::new(cfg);
//! let g = Arc::new(benchmarks::jpeg());
//! for i in 0..4 {
//!     fleet
//!         .submit(JobSpec::new(Arc::clone(&g)).with_tenant(TenantId(i % 2)))
//!         .unwrap();
//! }
//! let mut policies = fleet.fresh_policies(|| Box::new(FirstCandidatePolicy));
//! fleet.run(&mut policies);
//! let outcome = fleet.outcome().unwrap();
//! assert_eq!(outcome.stats.completed, 4);
//! assert!(outcome.stats.balanced());
//! ```

mod placement;
mod stats;

pub use placement::{
    job_cfg_seq, DeviceView, LeastLoaded, PlacementDecision, PlacementKind, PlacementPolicy,
    ResidencyModel, ReuseAffinity, RoundRobin,
};
pub use stats::{AdmissionEvent, FleetCheckInfo, FleetStats, TenantStats};

use crate::config::ManagerConfig;
use crate::job::{JobSpec, TenantId};
use crate::manager::{Engine, SimError, SimulationOutcome};
use crate::policy::ReplacementPolicy;
use rtr_sim::SimDuration;
use rtr_taskgraph::{ConfigId, TemplateSet};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Typed submission failures of the fleet ingress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetError {
    /// The tenant already has `pending` jobs in the ingress queue and
    /// its quota admits no more until the next [`Fleet::drain`].
    QuotaExceeded {
        /// The rejected tenant.
        tenant: TenantId,
        /// The per-tenant quota in force.
        quota: usize,
        /// The tenant's pending ingress jobs at rejection time.
        pending: usize,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::QuotaExceeded {
                tenant,
                quota,
                pending,
            } => write!(
                f,
                "tenant {tenant} over quota: {pending} jobs pending, quota {quota}"
            ),
        }
    }
}

impl std::error::Error for FleetError {}

/// Declarative fleet description for `Scenario` JSON files: device RU
/// counts, placement policy, quota, and the tenant mix the workload
/// layer stamps onto jobs. [`to_config`](FleetSpec::to_config)
/// expands it against a base [`ManagerConfig`] (everything but the RU
/// count is inherited per device).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    /// RU count of each pooled device (one entry per device).
    pub devices: Vec<usize>,
    /// The placement policy routing admitted jobs.
    pub placement: PlacementKind,
    /// Per-tenant ingress quota (`None` = unlimited).
    pub quota: Option<usize>,
    /// Tenants the workload layer spreads jobs across (round-robin by
    /// submission index). 1 keeps every job on the default tenant.
    pub tenants: usize,
    /// Seed recorded for reproducibility of workload-layer tenant /
    /// arrival derivations; the fleet dispatch plane itself is
    /// deterministic and does not consume it.
    pub seed: u64,
}

impl FleetSpec {
    /// Expands the spec against `base`: one device per RU-count entry,
    /// all other knobs inherited from `base`.
    pub fn to_config(&self, base: &ManagerConfig) -> FleetConfig {
        let devices = self
            .devices
            .iter()
            .map(|&rus| base.clone().with_rus(rus))
            .collect();
        FleetConfig {
            devices,
            placement: self.placement,
            quota: self.quota,
            seed: self.seed,
            record_decisions: true,
        }
    }
}

impl serde::Serialize for FleetSpec {
    fn serialize(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert(
            "devices".to_string(),
            serde::Serialize::serialize(&self.devices),
        );
        m.insert(
            "placement".to_string(),
            serde::Serialize::serialize(&self.placement),
        );
        m.insert(
            "quota".to_string(),
            serde::Serialize::serialize(&self.quota),
        );
        m.insert(
            "tenants".to_string(),
            serde::Serialize::serialize(&self.tenants),
        );
        m.insert("seed".to_string(), serde::Serialize::serialize(&self.seed));
        serde::Value::Object(m)
    }
}

impl serde::Deserialize for FleetSpec {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = serde::as_object(v)?;
        let devices: Vec<usize> = serde::field(m, "devices")?;
        if devices.is_empty() {
            return Err(serde::Error::msg(
                "fleet.devices must name at least one device",
            ));
        }
        if devices.contains(&0) {
            return Err(serde::Error::msg("fleet device needs at least one RU"));
        }
        // Optional knobs fall back to their defaults so terse files
        // (`{"devices": [4, 4]}`) stay loadable.
        let placement: Option<PlacementKind> = serde::field(m, "placement")?;
        let tenants: Option<usize> = serde::field(m, "tenants")?;
        let seed: Option<u64> = serde::field(m, "seed")?;
        if tenants == Some(0) {
            return Err(serde::Error::msg("fleet.tenants must be at least 1"));
        }
        Ok(FleetSpec {
            devices,
            placement: placement.unwrap_or(PlacementKind::RoundRobin),
            quota: serde::field(m, "quota")?,
            tenants: tenants.unwrap_or(1),
            seed: seed.unwrap_or(0),
        })
    }
}

/// Full configuration of a fleet: the per-device [`ManagerConfig`]s
/// plus the dispatch-plane knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// One configuration per pooled device (heterogeneous RU counts,
    /// latencies, policies, fault plans all allowed).
    pub devices: Vec<ManagerConfig>,
    /// The placement policy routing admitted jobs to devices.
    pub placement: PlacementKind,
    /// Per-tenant ingress quota: at most this many pending jobs per
    /// tenant between [`Fleet::drain`]s (`None` = unlimited).
    pub quota: Option<usize>,
    /// Seed recorded for reproducibility (see [`FleetSpec::seed`]).
    pub seed: u64,
    /// Record per-decision placement score vectors. Cheap for
    /// experiments and required by the `placement-residency` checker;
    /// disable for million-job soaks.
    pub record_decisions: bool,
}

impl FleetConfig {
    /// A fleet of `devices` with `placement` routing, no quota, seed 0
    /// and decision recording on.
    pub fn new(devices: Vec<ManagerConfig>, placement: PlacementKind) -> Self {
        FleetConfig {
            devices,
            placement,
            quota: None,
            seed: 0,
            record_decisions: true,
        }
    }

    /// The degenerate single-device fleet: no quota, round-robin over
    /// one device — byte-identical to the plain engine path.
    pub fn single(cfg: ManagerConfig) -> Self {
        FleetConfig::new(vec![cfg], PlacementKind::RoundRobin)
    }

    /// Builder-style quota override.
    pub fn with_quota(mut self, quota: usize) -> Self {
        self.quota = Some(quota);
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style decision-recording override.
    pub fn with_decisions(mut self, record: bool) -> Self {
        self.record_decisions = record;
        self
    }
}

/// An ingress job awaiting dispatch.
struct Pending {
    job: JobSpec,
    submit_index: usize,
}

/// The virtualized device pool: one deterministic submission front-end
/// over N pooled [`Engine`]s.
///
/// Lifecycle: [`submit`](Fleet::submit) jobs (admission control
/// applies per tenant), [`drain`](Fleet::drain) to route pending jobs
/// to devices (resetting the per-tenant ingress windows),
/// [`run`](Fleet::run) to execute every device, and
/// [`outcome`](Fleet::outcome) to collect the per-device outcomes and
/// the aggregate [`FleetStats`]. `run` drains implicitly, so callers
/// only invoke `drain` when they want quota windows narrower than a
/// full run (e.g. wave-based soaks).
pub struct Fleet {
    cfg: FleetConfig,
    engines: Vec<Engine>,
    policy: Box<dyn PlacementPolicy>,
    residency: Vec<ResidencyModel>,
    queued_jobs: Vec<usize>,
    queued_work: Vec<SimDuration>,
    ingress: Vec<Pending>,
    pending_by_tenant: BTreeMap<u32, usize>,
    /// Cache of per-template configuration sequences, keyed by the
    /// `Arc<TaskGraph>` pointer (templates are shared across jobs).
    cfg_seqs: BTreeMap<usize, Arc<Vec<ConfigId>>>,
    tenants: BTreeMap<u32, TenantStats>,
    decisions: Vec<PlacementDecision>,
    admissions: Vec<AdmissionEvent>,
    submitted: usize,
    started: bool,
}

impl Fleet {
    /// Builds an idle fleet: one engine per device configuration, all
    /// drawing design-time artifacts from one shared template set.
    ///
    /// # Panics
    /// Panics if the device list is empty or any device has zero RUs.
    pub fn new(cfg: FleetConfig) -> Self {
        assert!(!cfg.devices.is_empty(), "a fleet needs at least one device");
        let templates = Arc::new(TemplateSet::new());
        let engines: Vec<Engine> = cfg
            .devices
            .iter()
            .map(|c| Engine::with_templates(c, Arc::clone(&templates)))
            .collect();
        let residency = cfg
            .devices
            .iter()
            .map(|c| ResidencyModel::new(c.rus))
            .collect();
        let n = cfg.devices.len();
        Fleet {
            policy: cfg.placement.build(),
            residency,
            queued_jobs: vec![0; n],
            queued_work: vec![SimDuration::ZERO; n],
            ingress: Vec::new(),
            pending_by_tenant: BTreeMap::new(),
            cfg_seqs: BTreeMap::new(),
            tenants: BTreeMap::new(),
            decisions: Vec::new(),
            admissions: Vec::new(),
            submitted: 0,
            started: false,
            engines,
            cfg,
        }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Number of pooled devices.
    pub fn devices(&self) -> usize {
        self.engines.len()
    }

    /// One freshly built policy per device — the convenience most
    /// callers want before [`run`](Fleet::run).
    pub fn fresh_policies(
        &self,
        mut build: impl FnMut() -> Box<dyn ReplacementPolicy>,
    ) -> Vec<Box<dyn ReplacementPolicy>> {
        (0..self.devices()).map(|_| build()).collect()
    }

    /// Submits one job to the ingress queue.
    ///
    /// Admission control: with a quota of `q`, a tenant may have at
    /// most `q` jobs pending between drains; the `q+1`-th submission
    /// is rejected with [`FleetError::QuotaExceeded`] and does not
    /// enter the queue. Rejections never affect other tenants.
    /// Returns the fleet-wide submission index on admission.
    pub fn submit(&mut self, job: JobSpec) -> Result<usize, FleetError> {
        let tenant = job.tenant;
        let submit_index = self.submitted;
        self.submitted += 1;
        let pending = *self.pending_by_tenant.get(&tenant.0).unwrap_or(&0);
        let ledger = self
            .tenants
            .entry(tenant.0)
            .or_insert_with(|| TenantStats::new(tenant));
        ledger.submitted += 1;
        let admitted = self.cfg.quota.is_none_or(|q| pending < q);
        self.admissions.push(AdmissionEvent {
            submit_index,
            tenant,
            pending_before: pending as u64,
            admitted,
        });
        if !admitted {
            ledger.rejected += 1;
            return Err(FleetError::QuotaExceeded {
                tenant,
                quota: self.cfg.quota.expect("rejection implies a quota"),
                pending,
            });
        }
        ledger.admitted += 1;
        *self.pending_by_tenant.entry(tenant.0).or_insert(0) += 1;
        self.ingress.push(Pending { job, submit_index });
        Ok(submit_index)
    }

    /// Routes every pending ingress job to a device (FIFO order) and
    /// resets the per-tenant admission windows. Called implicitly by
    /// [`run`](Fleet::run); call it directly between submission waves
    /// to make quotas bind per wave.
    pub fn drain(&mut self) {
        let ingress = std::mem::take(&mut self.ingress);
        for pending in ingress {
            self.dispatch(pending);
        }
        self.pending_by_tenant.clear();
    }

    /// Places one admitted job on a device and updates the dispatch
    /// plane's bookkeeping.
    fn dispatch(&mut self, pending: Pending) {
        let Pending { job, submit_index } = pending;
        let seq = self.cfg_seq(&job);
        let views: Vec<DeviceView> = (0..self.engines.len())
            .map(|i| DeviceView {
                index: i,
                rus: self.cfg.devices[i].rus,
                queued_jobs: self.queued_jobs[i],
                queued_work: self.queued_work[i],
                overlap: self.residency[i].overlap(&seq),
            })
            .collect();
        let device = self.policy.place(&job, &views);
        assert!(device < self.engines.len(), "placement out of range");
        if self.cfg.record_decisions {
            self.decisions.push(PlacementDecision {
                submit_index,
                tenant: job.tenant,
                device,
                cfg_seq: Arc::clone(&seq),
                overlaps: views.iter().map(|v| v.overlap).collect(),
                queued_work: views.iter().map(|v| v.queued_work).collect(),
            });
        }
        self.residency[device].admit(&seq);
        self.queued_jobs[device] += 1;
        self.queued_work[device] += job.graph.total_exec_time();
        let ledger = self
            .tenants
            .get_mut(&job.tenant.0)
            .expect("admitted job has a ledger");
        ledger.executed += job.graph.len() as u64;
        self.engines[device].submit(job);
    }

    /// The cached distinct-configuration sequence of the job's
    /// template.
    fn cfg_seq(&mut self, job: &JobSpec) -> Arc<Vec<ConfigId>> {
        let key = Arc::as_ptr(&job.graph) as usize;
        Arc::clone(
            self.cfg_seqs
                .entry(key)
                .or_insert_with(|| Arc::new(job_cfg_seq(job))),
        )
    }

    /// Drains the ingress and runs every device to completion of its
    /// currently scheduled events, one policy per device.
    ///
    /// On the first call each policy's `reset` is invoked before its
    /// device runs — the exact call sequence of
    /// [`simulate`](crate::simulate), which is what makes the
    /// single-device fleet byte-identical to the plain path. Later
    /// calls continue incrementally, mirroring [`Engine::run`].
    ///
    /// # Panics
    /// Panics unless exactly one policy per device is supplied.
    pub fn run(&mut self, policies: &mut [Box<dyn ReplacementPolicy>]) {
        assert_eq!(
            policies.len(),
            self.engines.len(),
            "need exactly one replacement policy per device"
        );
        self.drain();
        let first = !self.started;
        self.started = true;
        for (engine, policy) in self.engines.iter_mut().zip(policies) {
            if first {
                policy.reset();
            }
            engine.run(policy.as_mut());
        }
    }

    /// Collects every device's outcome and rolls them up into
    /// [`FleetStats`]. Fails with the first device's [`SimError`] if
    /// any device stalled or lost its whole RU pool.
    pub fn outcome(&mut self) -> Result<FleetOutcome, SimError> {
        let mut devices = Vec::with_capacity(self.engines.len());
        for engine in &mut self.engines {
            devices.push(engine.outcome()?);
        }
        // Every admitted job completed (a device outcome errors
        // otherwise), so the per-tenant completion ledger is the
        // admission ledger.
        let mut per_tenant: Vec<TenantStats> = self.tenants.values().cloned().collect();
        for t in &mut per_tenant {
            t.completed = t.admitted;
        }
        let stats = FleetStats {
            devices: devices.len(),
            placement: self.cfg.placement.label().to_string(),
            submitted: per_tenant.iter().map(|t| t.submitted).sum(),
            admitted: per_tenant.iter().map(|t| t.admitted).sum(),
            rejected: per_tenant.iter().map(|t| t.rejected).sum(),
            completed: per_tenant.iter().map(|t| t.completed).sum(),
            executed: devices.iter().map(|d| d.stats.executed).sum(),
            reuses: devices.iter().map(|d| d.stats.reuses).sum(),
            loads: devices.iter().map(|d| d.stats.loads).sum(),
            makespan: devices
                .iter()
                .map(|d| d.stats.makespan)
                .max()
                .unwrap_or(SimDuration::ZERO),
            per_tenant,
            per_device: devices.iter().map(|d| d.stats.clone()).collect(),
        };
        Ok(FleetOutcome {
            stats,
            devices,
            decisions: std::mem::take(&mut self.decisions),
            admissions: std::mem::take(&mut self.admissions),
        })
    }
}

/// Everything one fleet run produced.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The aggregate roll-up (tenant ledgers included).
    pub stats: FleetStats,
    /// Per-device outcomes, in device order (traces included when the
    /// device config records them).
    pub devices: Vec<SimulationOutcome>,
    /// Recorded placement decisions (empty when recording was off).
    pub decisions: Vec<PlacementDecision>,
    /// Admission events, in submission order.
    pub admissions: Vec<AdmissionEvent>,
}

impl FleetOutcome {
    /// Borrows the outcome as checker input.
    pub fn check_info<'a>(
        &'a self,
        cfg: &'a FleetConfig,
        device_rus: &'a [usize],
    ) -> FleetCheckInfo<'a> {
        FleetCheckInfo {
            placement: cfg.placement,
            quota: cfg.quota,
            stats: &self.stats,
            decisions: &self.decisions,
            admissions: &self.admissions,
            device_rus,
        }
    }
}

/// Batch wrapper, the fleet analogue of [`simulate`](crate::simulate):
/// builds the fleet, submits every job (quota rejections are recorded
/// in the ledger, not errors), runs one policy instance per device and
/// collects the outcome.
pub fn simulate_fleet(
    cfg: &FleetConfig,
    jobs: &[JobSpec],
    mut build_policy: impl FnMut() -> Box<dyn ReplacementPolicy>,
) -> Result<FleetOutcome, SimError> {
    let mut fleet = Fleet::new(cfg.clone());
    for job in jobs {
        let _ = fleet.submit(job.clone());
    }
    let mut policies = fleet.fresh_policies(&mut build_policy);
    fleet.run(&mut policies);
    fleet.outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FirstCandidatePolicy;
    use crate::simulate;
    use rtr_taskgraph::benchmarks;

    fn jobs(n: usize) -> Vec<JobSpec> {
        let templates = [Arc::new(benchmarks::jpeg()), Arc::new(benchmarks::mpeg1())];
        (0..n)
            .map(|i| {
                JobSpec::new(Arc::clone(&templates[i % 2])).with_tenant(TenantId((i % 3) as u32))
            })
            .collect()
    }

    #[test]
    fn single_device_fleet_matches_simulate() {
        let base = ManagerConfig::paper_default().with_trace(true);
        let jobs = jobs(12);
        let mut lru = FirstCandidatePolicy;
        let reference = simulate(&base, &jobs, &mut lru).unwrap();
        let outcome = simulate_fleet(&FleetConfig::single(base), &jobs, || {
            Box::new(FirstCandidatePolicy)
        })
        .unwrap();
        assert_eq!(outcome.devices.len(), 1);
        assert_eq!(
            serde_json::to_string(&outcome.devices[0].stats).unwrap(),
            serde_json::to_string(&reference.stats).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&outcome.devices[0].trace).unwrap(),
            serde_json::to_string(&reference.trace).unwrap()
        );
        assert!(outcome.stats.balanced());
    }

    #[test]
    fn quota_rejects_only_the_over_quota_tenant() {
        let cfg = FleetConfig::single(ManagerConfig::paper_default()).with_quota(2);
        let mut fleet = Fleet::new(cfg);
        let g = Arc::new(benchmarks::jpeg());
        let job = |t: u32| JobSpec::new(Arc::clone(&g)).with_tenant(TenantId(t));
        assert!(fleet.submit(job(0)).is_ok());
        assert!(fleet.submit(job(0)).is_ok());
        let err = fleet.submit(job(0)).unwrap_err();
        assert_eq!(
            err,
            FleetError::QuotaExceeded {
                tenant: TenantId(0),
                quota: 2,
                pending: 2
            }
        );
        // A different tenant is unaffected by tenant 0's rejection.
        assert!(fleet.submit(job(1)).is_ok());
        // Draining opens a fresh admission window.
        fleet.drain();
        assert!(fleet.submit(job(0)).is_ok());
        let mut policies = fleet.fresh_policies(|| Box::new(FirstCandidatePolicy));
        fleet.run(&mut policies);
        let outcome = fleet.outcome().unwrap();
        assert_eq!(outcome.stats.submitted, 5);
        assert_eq!(outcome.stats.rejected, 1);
        assert_eq!(outcome.stats.completed, 4);
        assert_eq!(outcome.stats.tenant(TenantId(0)).unwrap().rejected, 1);
        assert_eq!(outcome.stats.tenant(TenantId(1)).unwrap().rejected, 0);
        assert!(outcome.stats.balanced());
        assert_eq!(
            err.to_string(),
            "tenant t0 over quota: 2 jobs pending, quota 2"
        );
    }

    #[test]
    fn round_robin_partitions_like_independent_engines() {
        let base = ManagerConfig::paper_default();
        let cfg = FleetConfig::new(
            vec![base.clone(), base.clone().with_rus(6)],
            PlacementKind::RoundRobin,
        );
        let all = jobs(10);
        let outcome = simulate_fleet(&cfg, &all, || Box::new(FirstCandidatePolicy)).unwrap();
        for (d, device_cfg) in cfg.devices.iter().enumerate() {
            let part: Vec<JobSpec> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == d)
                .map(|(_, j)| j.clone())
                .collect();
            let mut lru = FirstCandidatePolicy;
            let reference = simulate(device_cfg, &part, &mut lru).unwrap();
            assert_eq!(
                serde_json::to_string(&outcome.devices[d].stats).unwrap(),
                serde_json::to_string(&reference.stats).unwrap()
            );
        }
        assert!(outcome.stats.balanced());
    }

    #[test]
    fn reuse_affinity_records_replayable_decisions() {
        let base = ManagerConfig::paper_default();
        let cfg = FleetConfig::new(
            vec![base.clone(), base.clone(), base],
            PlacementKind::ReuseAffinity,
        );
        let outcome = simulate_fleet(&cfg, &jobs(18), || Box::new(FirstCandidatePolicy)).unwrap();
        assert_eq!(outcome.decisions.len(), 18);
        // Replay the residency models independently and confirm every
        // recorded overlap existed at decision time.
        let mut models: Vec<ResidencyModel> = cfg
            .devices
            .iter()
            .map(|c| ResidencyModel::new(c.rus))
            .collect();
        for d in &outcome.decisions {
            for (i, model) in models.iter().enumerate() {
                assert_eq!(
                    model.overlap(&d.cfg_seq),
                    d.overlaps[i],
                    "decision {}",
                    d.submit_index
                );
            }
            let best = d.overlaps.iter().copied().max().unwrap();
            assert_eq!(d.overlaps[d.device], best, "routed below best overlap");
            models[d.device].admit(&d.cfg_seq);
        }
        assert!(outcome.stats.balanced());
    }

    #[test]
    fn fleet_spec_round_trips_and_defaults() {
        let spec = FleetSpec {
            devices: vec![2, 4, 6],
            placement: PlacementKind::ReuseAffinity,
            quota: Some(16),
            tenants: 4,
            seed: 9,
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: FleetSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        // Terse form: only the device list, everything else defaulted.
        let terse: FleetSpec = serde_json::from_str(r#"{"devices": [4]}"#).unwrap();
        assert_eq!(terse.placement, PlacementKind::RoundRobin);
        assert_eq!(terse.quota, None);
        assert_eq!(terse.tenants, 1);
        assert_eq!(terse.seed, 0);
        // Invalid forms are loud.
        assert!(serde_json::from_str::<FleetSpec>(r#"{"devices": []}"#).is_err());
        assert!(serde_json::from_str::<FleetSpec>(r#"{"devices": [0]}"#).is_err());
        assert!(serde_json::from_str::<FleetSpec>(r#"{"devices": [4], "tenants": 0}"#).is_err());
        assert!(serde_json::from_str::<FleetSpec>(
            r#"{"devices": [4], "placement": "alphabetical"}"#
        )
        .is_err());
        // Expansion inherits everything but the RU count.
        let cfg = spec.to_config(&ManagerConfig::paper_default());
        assert_eq!(cfg.devices.len(), 3);
        assert_eq!(cfg.devices[1].rus, 4);
        assert_eq!(cfg.quota, Some(16));
    }

    #[test]
    #[should_panic(expected = "one replacement policy per device")]
    fn policy_count_mismatch_panics() {
        let mut fleet = Fleet::new(FleetConfig::single(ManagerConfig::paper_default()));
        fleet.run(&mut []);
    }
}
