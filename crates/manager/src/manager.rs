//! The event-triggered execution manager (the paper's Fig. 4) with the
//! replacement-module protocol (Fig. 8), generalised into a streaming
//! [`Engine`] that consumes jobs from an online arrival queue.
//!
//! This file is the thin orchestrator: the public [`Engine`] /
//! [`simulate`] surface, submission, the event-drain loop and run
//! finalisation. The event semantics live in the focused submodules of
//! `crate::engine`:
//!
//! * `engine/events.rs` — the event alphabet and dispatch (Fig. 4
//!   lines 1–19);
//! * `engine/residency.rs` — reuse claims, load/execution starts, and
//!   incremental [`ReuseIndex`] maintenance;
//! * `engine/decision.rs` — the replacement module (Fig. 8): victim
//!   selection over the index and Skip Events.
//!
//! When the current graph completes and no arrived job is waiting, the
//! manager goes *idle*: resident configurations stay in place (so reuse
//! survives idle gaps) and the next `JobArrival` event resumes
//! activation.

use crate::config::{Lookahead, ManagerConfig};
use crate::engine::faults::FaultRuntime;
use crate::engine::warm::{
    deliver_callback, recordable_cfg, same_spec, SealedRun, WarmPlan, WarmRecorder, WarmStats,
};
use crate::engine::{Event, JobScratch, ManagerState, ReconfigKind};
use crate::engine::{
    PRIO_END_OF_EXECUTION, PRIO_END_OF_RECONFIGURATION, PRIO_JOB_ARRIVAL, PRIO_NEW_TASK_GRAPH,
    PRIO_RU_HEAL,
};
use crate::ideal::ideal_graph_makespan;
use crate::job::JobSpec;
use crate::policy::{ReplacementPolicy, NO_DEADLINE};
use crate::reuse_index::ReuseIndex;
use crate::stats::RunStats;
use crate::trace::Trace;
use crate::trace::TraceEvent;
use rtr_hw::{EnergyModel, ReconfigController, RuPool};
use rtr_sim::{EventQueue, FxHashMap, SimDuration, SimTime};
use rtr_taskgraph::{TaskGraph, TemplateSet};
use std::collections::VecDeque;
use std::fmt;
use std::mem;
use std::sync::Arc;

/// Simulation failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained before all jobs completed. With correct
    /// inputs this can only happen when a skip (run-time or forced
    /// mobility probe) waited for a "following event" that does not
    /// exist; the design-time mobility calculation treats it as an
    /// infeasible delay.
    StalledAwaitingEvent {
        /// Jobs fully completed before the stall.
        completed_jobs: usize,
        /// Time of the last processed event.
        at: SimTime,
    },
    /// Every RU was quarantined by hardware faults with no repair
    /// pending, so the remaining jobs can never be placed. Only
    /// reachable with an active [`FaultPlan`](crate::FaultPlan) whose
    /// `repair_latency` is `None`.
    PoolExhausted {
        /// Jobs fully completed before the pool died.
        completed_jobs: usize,
        /// Time of the last processed event.
        at: SimTime,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::StalledAwaitingEvent { completed_jobs, at } => write!(
                f,
                "simulation stalled at {at} after {completed_jobs} jobs: a delayed \
                 reconfiguration waited for an event that never comes"
            ),
            SimError::PoolExhausted { completed_jobs, at } => write!(
                f,
                "simulation halted at {at} after {completed_jobs} jobs: every RU is \
                 quarantined and the fault plan repairs none"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of [`simulate`].
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// Aggregate statistics.
    pub stats: RunStats,
    /// Full schedule trace (empty when `record_trace` is off).
    pub trace: Trace,
}

/// The streaming execution engine: an online generalisation of the
/// paper's batch simulator.
///
/// Jobs are [`submit`](Engine::submit)ted with explicit arrival times
/// and consumed as they arrive; [`run`](Engine::run) drains every
/// currently scheduled event (arrivals included), after which more jobs
/// may be submitted and `run` called again — an open-loop driver can
/// interleave submission and simulation indefinitely. The manager
/// idles (RU residency intact) whenever the online queue is empty while
/// later arrivals are still pending, and resumes on the next arrival.
///
/// **Batch equivalence:** submitting every job with `arrival == t0 = 0`
/// and draining the queue reproduces the paper's fixed-sequence
/// semantics event for event — [`simulate`] is exactly that wrapper,
/// and the golden Fig. 2/3/7 numbers are regression-tested through it.
///
/// **Pooled lifecycle:** an engine is reusable. [`Engine::reset`] (or
/// [`Engine::reset_with_config`]) returns it to the power-on state
/// while keeping every workload-sized allocation — the event heap, the
/// per-job scratch vectors, the reuse-index occurrence lists, the
/// trace buffer — and [`Engine::outcome`] finalises a run without
/// consuming the engine. Design-time artifacts come from a
/// [`TemplateSet`] that can be shared across engines and threads
/// ([`Engine::with_templates`]); per-template ideal makespans are
/// memoised per RU count. A pooled run is bit-exact with a fresh-engine
/// run — pooling is invisible, determinism is the contract.
pub struct Engine {
    m: ManagerState,
    jobs: Vec<JobSpec>,
    /// Shared design-time artifact table, keyed by template identity.
    templates: Arc<TemplateSet>,
    /// Pending arrivals `(time, job idx)` kept out of the event heap:
    /// arrivals are known at submission, so they live in this sorted
    /// lane and merge with the heap under the queue's total order. This
    /// keeps the heap depth at the count of *in-flight* events (a
    /// handful) instead of the whole submitted backlog (thousands in a
    /// batch run).
    arrival_lane: Vec<(SimTime, usize)>,
    /// First unconsumed `arrival_lane` entry.
    lane_cursor: usize,
    /// An out-of-order submission happened since the last sort.
    lane_dirty: bool,
    /// Per-template ideal (zero-latency) makespans for the current RU
    /// count; entries pin their graph so pointer keys stay unambiguous.
    ideal_cache: FxHashMap<usize, (Arc<TaskGraph>, SimDuration)>,
    /// Whole-sequence ideal makespan of the *currently submitted*
    /// batch: replications replay identical jobs, so `outcome` computes
    /// it once per batch, not once per run.
    ideal_sequence_cache: Option<SimDuration>,
    /// Set once [`Engine::outcome`] has moved the run's output buffers
    /// out. Further `submit`/`run` calls are rejected until a reset:
    /// they would produce stats whose per-graph instants cover only
    /// the jobs after the finalisation while the counters cover all —
    /// silently inconsistent. (The pre-pooling `finish(self)` made
    /// this impossible by consuming the engine.)
    finalised: bool,
    /// Name of the policy last passed to [`Engine::run`] (for stats).
    policy_name: String,
    /// Sealed decision log of this engine's previous completed run —
    /// the warm-start reference (see `crate::engine::warm`).
    warm_reference: Option<SealedRun>,
    /// Set by the first reset: the engine is pooled, so warm-start
    /// recording can pay off. One-shot engines (every [`simulate`]
    /// call) never record and skip the warm machinery entirely.
    warm_pooled: bool,
    /// Warm-start observability (cumulative hits + last-run shape).
    warm_stats: WarmStats,
    /// Scratch for batched same-instant `EndOfExecution` dispatch,
    /// pooled across runs.
    exec_batch: Vec<Event>,
}

impl Engine {
    /// Creates an idle engine with no jobs and a private template set.
    ///
    /// # Panics
    /// Panics if `cfg.rus == 0`.
    pub fn new(cfg: &ManagerConfig) -> Self {
        Engine::with_templates(cfg, Arc::new(TemplateSet::new()))
    }

    /// Creates an idle engine drawing design-time artifacts from a
    /// shared [`TemplateSet`] — pass the same set to every engine of a
    /// sweep so each distinct template is analysed once per process.
    ///
    /// # Panics
    /// Panics if `cfg.rus == 0`.
    pub fn with_templates(cfg: &ManagerConfig, templates: Arc<TemplateSet>) -> Self {
        assert!(cfg.rus > 0, "need at least one RU");
        Engine {
            m: ManagerState {
                pool: RuPool::new(cfg.rus),
                controller: ReconfigController::new(cfg.device.reconfig_latency),
                energy: EnergyModel::new(cfg.device.clone()),
                // The queue only ever holds in-flight events (arrivals
                // live in the lane), so pre-sizing to the RU count plus
                // slack makes it allocation-free for the engine's whole
                // lifetime.
                queue: EventQueue::with_capacity(cfg.rus + 4),
                job_templates: Vec::new(),
                current: None,
                scratch: JobScratch::default(),
                exec_ready: Vec::new(),
                candidates: Vec::new(),
                arrived: VecDeque::new(),
                reuse_index: ReuseIndex::new(),
                pending_activation: None,
                pending_reconfig: None,
                completed_jobs: 0,
                trace: Trace::default(),
                executed: 0,
                reuses: 0,
                loads: 0,
                skips: 0,
                stalls: 0,
                prefetch_issued: 0,
                prefetch_completed: 0,
                prefetch_cancelled: 0,
                prefetch_hits: 0,
                prefetch_wasted: 0,
                prefetched: vec![false; cfg.rus],
                prefetch_scratch: Vec::new(),
                graph_arrivals: Vec::new(),
                graph_completions: Vec::new(),
                makespan_end: SimTime::ZERO,
                suspended: Vec::new(),
                exec_token: vec![0; cfg.rus],
                pending_preempt: false,
                index_fifo: true,
                segment_jobs: VecDeque::new(),
                job_slack: Vec::new(),
                qos_deadlines: false,
                qos_lanes: false,
                slack_scratch: Vec::new(),
                qos_preemptions: 0,
                qos_checkpoints: 0,
                qos_replayed: 0,
                qos_lost_work: SimDuration::ZERO,
                qos_deadline_misses: 0,
                qos_tardiness: SimDuration::ZERO,
                qos_records: Vec::new(),
                warm: WarmRecorder::default(),
                faults: FaultRuntime::seeded(cfg.faults.seed),
                cfg: cfg.clone(),
            },
            jobs: Vec::new(),
            templates,
            arrival_lane: Vec::new(),
            lane_cursor: 0,
            lane_dirty: false,
            ideal_cache: FxHashMap::default(),
            ideal_sequence_cache: None,
            finalised: false,
            policy_name: String::new(),
            warm_reference: None,
            warm_pooled: false,
            warm_stats: WarmStats::default(),
            exec_batch: Vec::new(),
        }
    }

    /// The engine's shared design-time artifact table.
    pub fn template_set(&self) -> &Arc<TemplateSet> {
        &self.templates
    }

    /// Submits a job; its arrival event fires at `job.arrival`. Returns
    /// the job's index (activation order may differ — jobs activate in
    /// arrival order).
    ///
    /// The design-time phase (reconfiguration sequence, configuration
    /// projection, predecessor counts) runs here via the shared
    /// template set, once per distinct graph template per process.
    ///
    /// # Panics
    /// Panics if the arrival lies in the simulated past (before the
    /// time of the last processed event).
    pub fn submit(&mut self, job: JobSpec) -> usize {
        assert!(
            !self.finalised,
            "engine outcome already taken: reset before submitting more jobs"
        );
        assert!(
            job.arrival >= self.m.queue.now(),
            "job arrival {} is in the simulated past (now = {})",
            job.arrival,
            self.m.queue.now()
        );
        let tpl = self.templates.get_or_compute(&job.graph);
        let idx = self.jobs.len();
        self.m.job_templates.push(tpl);
        // Static slack (deadline − ideal makespan, time-invariant) is
        // precomputed here so decisions only subtract `now`. Deadline-
        // free jobs carry the sentinel and cost nothing.
        let slack = match job.qos.deadline {
            None => NO_DEADLINE,
            Some(d) => {
                let key = Arc::as_ptr(&job.graph) as usize;
                let ideal = match self.ideal_cache.get(&key) {
                    Some(&(_, dur)) => dur,
                    None => {
                        let dur = ideal_graph_makespan(&job.graph, self.m.cfg.rus);
                        self.ideal_cache.insert(key, (Arc::clone(&job.graph), dur));
                        dur
                    }
                };
                d.as_us() as i64 - ideal.as_us() as i64
            }
        };
        self.m.job_slack.push(slack);
        self.m.qos_deadlines |= job.qos.deadline.is_some();
        self.m.qos_lanes |= job.qos.priority != 0;
        if self
            .arrival_lane
            .last()
            .is_some_and(|&(last, _)| job.arrival < last)
        {
            self.lane_dirty = true;
        }
        self.arrival_lane.push((job.arrival, idx));
        self.ideal_sequence_cache = None;
        self.jobs.push(job);
        idx
    }

    /// Processes events until both the heap and the arrival lane drain:
    /// every submitted job has arrived and either completed or stalled.
    /// More jobs may be submitted afterwards and `run` called again.
    ///
    /// The policy is passed per call (not stored) so the same engine
    /// can be driven by external schedulers; pass the same policy on
    /// every call for meaningful history-based decisions. `reset` is
    /// *not* invoked — callers owning the full run (like [`simulate`])
    /// reset the policy themselves.
    pub fn run(&mut self, policy: &mut dyn ReplacementPolicy) {
        self.run_with(policy);
    }

    /// [`Engine::run`] with a statically known policy type: the whole
    /// event loop — dispatch, callbacks, victim selection — is
    /// monomorphised for `P`, letting small policy bodies (an LRU touch
    /// is one array store) inline into the loop instead of paying a
    /// vtable call each. Decisions are identical to the dyn path.
    pub fn run_with<P: ReplacementPolicy + ?Sized>(&mut self, policy: &mut P) {
        assert!(
            !self.finalised,
            "engine outcome already taken: reset before running again"
        );
        self.policy_name.clear();
        self.policy_name.push_str(policy.name());
        if self.lane_dirty {
            // Stable sort by time keeps submission order among ties —
            // the same total order the heap's sequence numbers gave.
            self.arrival_lane[self.lane_cursor..].sort_by_key(|&(t, _)| t);
            self.lane_dirty = false;
        }
        // Warm start: a freshly reset pooled engine may replay its
        // previous run's recorded decision log instead of re-simulating
        // (see `crate::engine::warm`). On a full hit the merge loop
        // below finds nothing left to do; on a prefix hit it resumes
        // from the restored checkpoint. Either way this call also arms
        // shadow recording for the rest of the run when eligible.
        if self.warm_pooled
            && !self.m.warm.active
            && self.lane_cursor == 0
            && !self.arrival_lane.is_empty()
            && self.m.queue.is_empty()
            && self.m.pending_reconfig.is_none()
            && self.m.pending_activation.is_none()
            && self.m.current.is_none()
            && self.m.completed_jobs == 0
        {
            self.try_warm_start(policy);
        } else if self.m.warm.active
            && policy.warm_key().as_deref() != Some(self.m.warm.key.as_str())
        {
            // A different policy took over mid-lifecycle: the log no
            // longer describes one policy's run — abandon it.
            self.m.warm.active = false;
            self.m.warm.events.clear();
            self.m.warm.checkpoints.clear();
        }
        // Batch fast path: on a fresh engine, the leading run of
        // same-instant arrivals is processed back to back — nothing can
        // be scheduled between them (the queue and both slots are
        // empty, and an arrival with an idle manager only records,
        // indexes and arms the activation slot). Handling the burst
        // inline skips the per-event merge and dispatch, which in the
        // paper's batch setting is the entire submitted sequence.
        if self.lane_cursor == 0
            && !self.arrival_lane.is_empty()
            && self.m.queue.is_empty()
            && self.m.pending_reconfig.is_none()
            && self.m.pending_activation.is_none()
            && self.m.current.is_none()
            && self.m.completed_jobs == 0
        {
            let t0 = self.arrival_lane[0].0;
            while let Some(&(at, idx)) = self.arrival_lane.get(self.lane_cursor) {
                if at != t0 {
                    break;
                }
                self.m.admit_arrival(idx, at);
                self.lane_cursor += 1;
            }
            self.m.queue.advance_to(t0);
            self.m.makespan_end = t0;
            self.m.pending_activation = Some(t0);
        }
        loop {
            // Merge the four event sources under the simulation's total
            // order `(time, priority class)`: the queue (EndOfExecution
            // only), the single reconfiguration slot, the sorted
            // arrival lane, and the single activation slot. Priority
            // classes are disjoint per source, so the pair is a total
            // order; ties within a class exist only among executions
            // (ordered by the queue's sequence numbers) and arrivals
            // (ordered by the lane's stable sort).
            let mut pick: Option<(SimTime, u8)> = None;
            if let Some((qt, qp, _)) = self.m.queue.peek_key() {
                debug_assert!(
                    qp == PRIO_END_OF_EXECUTION || qp == PRIO_RU_HEAL,
                    "queue holds only executions and RU heals"
                );
                pick = Some((qt, qp));
            }
            if let Some((rt, _, _)) = self.m.pending_reconfig {
                let key = (rt, PRIO_END_OF_RECONFIGURATION);
                if pick.is_none_or(|best| key < best) {
                    pick = Some(key);
                }
            }
            if let Some(&(at, _)) = self.arrival_lane.get(self.lane_cursor) {
                let key = (at, PRIO_JOB_ARRIVAL);
                if pick.is_none_or(|best| key < best) {
                    pick = Some(key);
                }
            }
            if let Some(nt) = self.m.pending_activation {
                let key = (nt, PRIO_NEW_TASK_GRAPH);
                if pick.is_none_or(|best| key < best) {
                    pick = Some(key);
                }
            }
            let Some((now, prio)) = pick else { break };
            if prio != PRIO_RU_HEAL {
                // Heals are maintenance, not workload: one firing after
                // the last graph completed must not stretch the
                // makespan (which is defined by the final `GraphEnd`).
                self.m.makespan_end = now;
            }
            match prio {
                PRIO_END_OF_EXECUTION => {
                    // Simultaneous completions (parallel tasks on many
                    // RUs finishing together) drain as one batch
                    // instead of re-running the merge per event. Events
                    // a handler pushes at this same key carry later
                    // sequence numbers — they would pop after every
                    // pre-drained one anyway — so dispatching the batch
                    // in drained order equals the one-at-a-time order.
                    let mut batch = mem::take(&mut self.exec_batch);
                    self.m.queue.pop_same_instant_into(&mut batch);
                    for ev in batch.drain(..) {
                        self.m.handle(ev, now, &self.jobs, policy);
                    }
                    self.exec_batch = batch;
                }
                PRIO_END_OF_RECONFIGURATION => {
                    let (_, ru, kind) = self.m.pending_reconfig.take().expect("picked");
                    self.m.queue.advance_to(now);
                    let ev = match kind {
                        ReconfigKind::Demand(node) => Event::EndOfReconfiguration { ru, node },
                        ReconfigKind::Speculative(config) => Event::EndOfPrefetch { ru, config },
                    };
                    self.m.handle(ev, now, &self.jobs, policy);
                }
                PRIO_JOB_ARRIVAL => {
                    let (_, idx) = self.arrival_lane[self.lane_cursor];
                    self.lane_cursor += 1;
                    self.m.queue.advance_to(now);
                    self.m
                        .handle(Event::JobArrival { idx }, now, &self.jobs, policy);
                    // Same-instant arrival storms batch while the
                    // manager is idle: with no current graph an arrival
                    // only records, indexes and arms the activation
                    // slot (fired at `PRIO_NEW_TASK_GRAPH`, after every
                    // same-instant arrival), so the rest of the burst
                    // is exactly the next picks of the merge. With a
                    // graph current an arrival can start a zero-length
                    // execution whose completion outranks the next
                    // arrival — fall back to the per-event merge.
                    while self.m.current.is_none() {
                        match self.arrival_lane.get(self.lane_cursor) {
                            Some(&(at, next)) if at == now => {
                                self.lane_cursor += 1;
                                self.m.handle(
                                    Event::JobArrival { idx: next },
                                    now,
                                    &self.jobs,
                                    policy,
                                );
                            }
                            _ => break,
                        }
                    }
                }
                PRIO_RU_HEAL => {
                    let ev = self.m.queue.pop().expect("picked from the queue").payload;
                    self.m.handle(ev, now, &self.jobs, policy);
                }
                _ => {
                    self.m.pending_activation = None;
                    self.m.queue.advance_to(now);
                    self.m.handle(Event::NewTaskGraph, now, &self.jobs, policy);
                }
            }
        }
    }

    /// The simulation clock: time of the last processed event.
    pub fn now(&self) -> SimTime {
        self.m.queue.now()
    }

    /// Number of jobs submitted so far.
    pub fn submitted_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Number of jobs that ran to completion so far.
    pub fn completed_jobs(&self) -> usize {
        self.m.completed_jobs
    }

    /// True when no graph is active and no events (arrivals included)
    /// are pending.
    pub fn is_idle(&self) -> bool {
        self.m.current.is_none()
            && self.m.suspended.is_empty()
            && self.m.queue.is_empty()
            && self.m.pending_reconfig.is_none()
            && self.m.pending_activation.is_none()
            && self.lane_cursor == self.arrival_lane.len()
    }

    /// The engine's shared next-occurrence index over `[current job] +
    /// arrived backlog` — exposed read-only for diagnostics and
    /// benches.
    pub fn reuse_index(&self) -> &ReuseIndex {
        &self.m.reuse_index
    }

    /// Returns the engine to the power-on state with a fresh job batch,
    /// keeping every pooled allocation and the shared template set.
    /// Equivalent to building a new engine with the same configuration
    /// and submitting `jobs` — bit-exactly, see the pooled-equivalence
    /// property test — but with no per-run allocation beyond the
    /// outputs.
    pub fn reset(&mut self, jobs: &[JobSpec]) {
        let cfg = self.m.cfg.clone();
        self.reset_with_config(&cfg, jobs);
    }

    /// Re-arms the engine to replay the *currently submitted* job batch
    /// from scratch: run state is cleared (pooled allocations kept, as
    /// in [`Engine::reset`]) but the jobs, their arrival lane and their
    /// template bindings are retained, so a replication loop pays no
    /// per-job submission cost at all. Bit-exact with re-submitting the
    /// same jobs.
    pub fn reset_replay(&mut self) {
        let cfg = self.m.cfg.clone();
        self.clear_run_state(&cfg, self.jobs.len());
        // Jobs, template bindings and the sorted lane stay; rewinding
        // the cursor re-arms every submitted arrival.
        self.lane_cursor = 0;
    }

    /// [`Engine::reset`], additionally retargeting the system
    /// configuration — lets one pooled engine serve a whole grid of
    /// (policy × RU × device) cells.
    ///
    /// # Panics
    /// Panics if `cfg.rus == 0`.
    pub fn reset_with_config(&mut self, cfg: &ManagerConfig, jobs: &[JobSpec]) {
        self.clear_run_state(cfg, jobs.len());
        self.m.job_templates.clear();
        // Submission-scoped QoS state follows the job list (reset_replay
        // keeps both; re-submission below rebuilds them).
        self.m.job_slack.clear();
        self.m.qos_deadlines = false;
        self.m.qos_lanes = false;
        self.jobs.clear();
        self.arrival_lane.clear();
        self.lane_cursor = 0;
        self.lane_dirty = false;
        // The sequence memo belongs to the outgoing batch; `submit`
        // invalidates it per job, but an empty `jobs` never calls
        // `submit` and would otherwise leak the previous batch's ideal.
        self.ideal_sequence_cache = None;
        for job in jobs {
            self.submit(job.clone());
        }
    }

    /// Clears every piece of per-run state (counters, queue, index,
    /// trace, hardware) while keeping pooled allocations and the
    /// submitted-jobs bookkeeping callers may want to retain.
    fn clear_run_state(&mut self, cfg: &ManagerConfig, expected_jobs: usize) {
        assert!(cfg.rus > 0, "need at least one RU");
        // Before anything is torn down, seal (or discard) the warm
        // recording of the run that just ended — the end-of-run pool
        // residency and counters are still live here. Any reset also
        // marks the engine pooled, enabling recording from now on.
        self.seal_warm_recording();
        self.warm_pooled = true;
        // A stalled previous run can leave a job active: reclaim its
        // scratch vectors before starting over. A preempted run may
        // additionally hold suspended jobs (their vectors are simply
        // dropped — suspension is off the pooled hot path).
        if let Some(job) = self.m.current.take() {
            self.m.scratch.reclaim(job);
        }
        self.m.suspended.clear();
        if cfg.rus != self.m.cfg.rus {
            // Ideal makespans are memoised per RU count.
            self.ideal_cache.clear();
            self.ideal_sequence_cache = None;
        }
        self.m.pool.reset_to(cfg.rus);
        self.m.controller.reset(cfg.device.reconfig_latency);
        self.m.energy.reset(cfg.device.clone());
        self.m.cfg = cfg.clone();
        self.m.queue.clear();
        self.m.arrived.clear();
        self.m.reuse_index.clear();
        self.m.pending_activation = None;
        self.m.pending_reconfig = None;
        self.m.completed_jobs = 0;
        self.m.trace.clear();
        self.m.executed = 0;
        self.m.reuses = 0;
        self.m.loads = 0;
        self.m.skips = 0;
        self.m.stalls = 0;
        self.m.prefetch_issued = 0;
        self.m.prefetch_completed = 0;
        self.m.prefetch_cancelled = 0;
        self.m.prefetch_hits = 0;
        self.m.prefetch_wasted = 0;
        self.m.prefetched.clear();
        self.m.prefetched.resize(cfg.rus, false);
        self.m.prefetch_scratch.clear();
        self.m.graph_arrivals.clear();
        self.m.graph_completions.clear();
        self.m.graph_arrivals.reserve(expected_jobs);
        self.m.graph_completions.reserve(expected_jobs);
        self.m.makespan_end = SimTime::ZERO;
        self.m.exec_token.clear();
        self.m.exec_token.resize(cfg.rus, 0);
        self.m.pending_preempt = false;
        self.m.index_fifo = true;
        self.m.segment_jobs.clear();
        self.m.slack_scratch.clear();
        self.m.qos_preemptions = 0;
        self.m.qos_checkpoints = 0;
        self.m.qos_replayed = 0;
        self.m.qos_lost_work = SimDuration::ZERO;
        self.m.qos_deadline_misses = 0;
        self.m.qos_tardiness = SimDuration::ZERO;
        self.m.qos_records.clear();
        // Reseeding makes pooled, replayed and retargeted runs draw the
        // identical fault schedule a fresh engine would.
        self.m.faults.reseed(cfg.faults.seed);
        self.finalised = false;
        self.policy_name.clear();
    }

    /// Warm-start statistics: cumulative hit counters plus the shape of
    /// the most recent run. Cells of a sweep read this right after the
    /// run to report `warm_hit` / `divergence_depth` / `replayed_events`.
    pub fn warm_stats(&self) -> &WarmStats {
        &self.warm_stats
    }

    /// Seals the shadow recording of a completed run as the engine's
    /// warm-start reference, or discards an incomplete one. Called at
    /// the top of every reset, while the end-of-run pool residency and
    /// counters are still live.
    fn seal_warm_recording(&mut self) {
        if !self.m.warm.active {
            // Nothing recorded this lifecycle (ineligible run, or a
            // full-hit replay): any existing reference stays valid.
            return;
        }
        self.m.warm.active = false;
        let complete = !self.jobs.is_empty() && self.m.completed_jobs == self.jobs.len();
        let mut residency = Vec::new();
        if complete && self.m.pool.capture_unclaimed(&mut residency) {
            self.warm_reference = Some(SealedRun {
                cfg: self.m.cfg.clone(),
                jobs: self.jobs.clone(),
                key: mem::take(&mut self.m.warm.key),
                events: mem::take(&mut self.m.warm.events),
                checkpoints: mem::take(&mut self.m.warm.checkpoints),
                final_counters: self.m.warm_counters(),
                final_residency: residency,
                makespan_end: self.m.makespan_end,
            });
        } else {
            self.m.warm.events.clear();
            self.m.warm.checkpoints.clear();
        }
    }

    /// Warm-start attempt at the top of a fresh pooled run: decides
    /// between a full-log replay, a checkpoint restore and a cold
    /// start, and arms shadow recording for whatever remains to be
    /// simulated. See `crate::engine::warm` for the eligibility rules.
    fn try_warm_start<P: ReplacementPolicy + ?Sized>(&mut self, policy: &mut P) {
        self.warm_stats.last_was_hit = false;
        self.warm_stats.last_divergence_depth = 0;
        self.warm_stats.last_replayed_events = 0;
        let key = policy.warm_key();
        let recordable = key.is_some() && recordable_cfg(&self.m.cfg);
        let mut plan = None;
        if let (Some(k), Some(r)) = (key.as_deref(), self.warm_reference.as_ref()) {
            if r.key == k && r.cfg == self.m.cfg {
                self.warm_stats.attempts += 1;
                if r.jobs.len() == self.jobs.len()
                    && r.jobs.iter().zip(&self.jobs).all(|(a, b)| same_spec(a, b))
                {
                    plan = Some(WarmPlan::Full);
                } else {
                    let w = match self.m.cfg.lookahead {
                        Lookahead::None => Some(0),
                        Lookahead::Graphs(n) => Some(n),
                        Lookahead::All => None,
                    };
                    plan = w
                        .and_then(|w| r.pick_prefix_checkpoint(&self.jobs, w))
                        .map(WarmPlan::Prefix);
                }
            }
        }
        if let Some(WarmPlan::Full) = plan {
            self.warm_full_replay(policy);
            return;
        }
        if recordable {
            // Arm recording: a prefix replay below pre-fills the log
            // with the shared prefix; a cold run records from scratch.
            self.m.warm.events.clear();
            self.m.warm.checkpoints.clear();
            self.m.warm.key = key.expect("recordable implies a key");
            self.m.warm.active = true;
        }
        if let Some(WarmPlan::Prefix(cp_idx)) = plan {
            self.warm_prefix_replay(policy, cp_idx);
        }
    }

    /// Replays the entire sealed reference onto an identical batch: the
    /// run completes without simulating a single event. The reference
    /// stays sealed (no re-recording), so every further replication
    /// hits it again.
    fn warm_full_replay<P: ReplacementPolicy + ?Sized>(&mut self, policy: &mut P) {
        let r = self.warm_reference.as_ref().expect("planned a full replay");
        let record_trace = self.m.cfg.record_trace;
        for &e in &r.events {
            if record_trace {
                self.m.trace.push(e);
            }
            deliver_callback(policy, e);
            if let TraceEvent::GraphEnd { job, at } = e {
                self.m.warm_graph_ledger(&self.jobs, job, at);
            }
        }
        self.m.warm_restore_final(r);
        self.lane_cursor = self.arrival_lane.len();
        self.warm_stats.full_hits += 1;
        self.warm_stats.last_was_hit = true;
        self.warm_stats.last_divergence_depth = self.jobs.len();
        self.warm_stats.last_replayed_events = r.events.len();
    }

    /// Restores checkpoint `cp_idx` of the sealed reference: the batch
    /// arrival burst and the shared decision prefix replay from the
    /// log, then the merge loop re-simulates only the divergent tail.
    fn warm_prefix_replay<P: ReplacementPolicy + ?Sized>(&mut self, policy: &mut P, cp_idx: usize) {
        let r = self
            .warm_reference
            .as_ref()
            .expect("planned a prefix replay");
        let n_prev = r.jobs.len();
        let n_now = self.jobs.len();
        let cp_event_pos = r.checkpoints[cp_idx].event_pos;
        let cp_jobs_done = r.checkpoints[cp_idx].jobs_done;
        let cp_now = r.checkpoints[cp_idx].now;
        let record_trace = self.m.cfg.record_trace;
        let record_new = self.m.warm.active;
        let t0 = self.jobs[0].arrival;
        debug_assert!(
            r.events[..n_prev]
                .iter()
                .all(|e| matches!(e, TraceEvent::JobArrival { .. })),
            "a batch reference log leads with its arrival burst"
        );
        // The new batch's arrival burst (exactly what the fast path
        // would have recorded), then the shared prefix of the log.
        for idx in 0..n_now {
            let e = TraceEvent::JobArrival {
                job: idx as u32,
                at: t0,
            };
            if record_trace {
                self.m.trace.push(e);
            }
            if record_new {
                self.m.warm.events.push(e);
            }
        }
        for &e in &r.events[n_prev..cp_event_pos] {
            if record_trace {
                self.m.trace.push(e);
            }
            if record_new {
                self.m.warm.events.push(e);
            }
            deliver_callback(policy, e);
            if let TraceEvent::GraphEnd { job, at } = e {
                self.m.warm_graph_ledger(&self.jobs, job, at);
            }
        }
        if record_new {
            // Checkpoints inside the shared prefix stay valid for the
            // new log; only their event positions shift with the
            // difference in burst size.
            for cp in &r.checkpoints[..=cp_idx] {
                let mut c = cp.clone();
                c.event_pos = c.event_pos - n_prev + n_now;
                self.m.warm.checkpoints.push(c);
            }
        }
        self.m.warm_restore_checkpoint(&r.checkpoints[cp_idx]);
        // Rebuild the live backlog exactly as admit + retire would have
        // left it: jobs `cp_jobs_done..n_now` arrived at t0 and await
        // activation, which the restored slot fires at the checkpoint
        // instant.
        for idx in cp_jobs_done..n_now {
            self.m.arrived.push_back(idx);
            let seq = Arc::clone(&self.m.job_templates[idx].cfg_seq);
            self.m.reuse_index.push_job(seq);
            self.m.segment_jobs.push_back(idx as u32);
        }
        self.lane_cursor = n_now;
        self.m.pending_activation = Some(cp_now);
        self.warm_stats.prefix_hits += 1;
        self.warm_stats.last_was_hit = true;
        self.warm_stats.last_divergence_depth = cp_jobs_done;
        self.warm_stats.last_replayed_events = n_now + (cp_event_pos - n_prev);
    }

    /// Finalises the current run into stats + trace without consuming
    /// the engine: the output buffers (trace, per-graph instants) are
    /// moved out, everything pooled stays. A successful `outcome`
    /// finalises the engine — call [`Engine::reset`] (or a sibling)
    /// before submitting or running again; doing so without a reset
    /// panics, because the already-taken per-graph instants would make
    /// any further stats internally inconsistent.
    ///
    /// Returns [`SimError::StalledAwaitingEvent`] when some submitted
    /// job did not complete (a delayed reconfiguration waited for an
    /// event that never came).
    pub fn outcome(&mut self) -> Result<SimulationOutcome, SimError> {
        if self.m.completed_jobs != self.jobs.len() {
            // Distinguish "the whole pool died with no repair coming"
            // (a fault-plan outcome the caller may expect and handle)
            // from a genuine scheduling stall.
            if self.m.pool.usable_len() == 0 {
                return Err(SimError::PoolExhausted {
                    completed_jobs: self.m.completed_jobs,
                    at: self.m.makespan_end,
                });
            }
            return Err(SimError::StalledAwaitingEvent {
                completed_jobs: self.m.completed_jobs,
                at: self.m.makespan_end,
            });
        }
        let ideal_makespan = self.ideal_makespan_cached();
        self.finalised = true;
        let qos = self.fold_qos_stats();
        let stats = RunStats {
            policy: self.policy_name.clone(),
            makespan: self.m.makespan_end.since(SimTime::ZERO),
            executed: self.m.executed,
            reuses: self.m.reuses,
            loads: self.m.loads,
            skips: self.m.skips,
            stalls: self.m.stalls,
            traffic: self.m.energy.stats(),
            prefetch: crate::stats::PrefetchStats {
                issued: self.m.prefetch_issued,
                completed: self.m.prefetch_completed,
                cancelled: self.m.prefetch_cancelled,
                hits: self.m.prefetch_hits,
                wasted: self.m.prefetch_wasted,
            },
            port_busy_time: self.m.controller.busy_time(),
            graph_arrivals: mem::take(&mut self.m.graph_arrivals),
            graph_completions: mem::take(&mut self.m.graph_completions),
            ideal_makespan,
            reconfig_latency: self.m.cfg.device.reconfig_latency,
            qos,
            faults: crate::stats::FaultStats {
                injected: self.m.faults.injected,
                retries: self.m.faults.retries,
                repairs: self.m.faults.repairs,
                quarantines: self.m.faults.quarantines,
                heals: self.m.faults.heals,
                degraded_time: self.m.fault_degraded_time(self.m.makespan_end),
                lost_work_cycles: self.m.faults.lost_work,
            },
        };
        Ok(SimulationOutcome {
            stats,
            trace: mem::take(&mut self.m.trace),
        })
    }

    /// Finalises the run, consuming the engine (the one-shot form of
    /// [`Engine::outcome`]).
    pub fn finish(mut self) -> Result<SimulationOutcome, SimError> {
        self.outcome()
    }

    /// Folds the run's per-completion QoS records into [`QosStats`]:
    /// counters copied, sojourn/miss/tardiness grouped per priority
    /// class (ascending).
    fn fold_qos_stats(&mut self) -> crate::stats::QosStats {
        let records = mem::take(&mut self.m.qos_records);
        let mut prios: Vec<u8> = records.iter().map(|r| r.0).collect();
        prios.sort_unstable();
        prios.dedup();
        let mut samples: Vec<SimDuration> = Vec::new();
        let mut class_sojourns = Vec::with_capacity(prios.len());
        for p in prios {
            samples.clear();
            let mut misses = 0u64;
            let mut tardiness = SimDuration::ZERO;
            for &(rp, sojourn, lateness) in &records {
                if rp != p {
                    continue;
                }
                samples.push(sojourn);
                if !lateness.is_zero() {
                    misses += 1;
                    tardiness += lateness;
                }
            }
            class_sojourns.push(crate::stats::ClassSojournStats::from_samples(
                p,
                &mut samples,
                misses,
                tardiness,
            ));
        }
        crate::stats::QosStats {
            deadline_misses: self.m.qos_deadline_misses,
            tardiness_total: self.m.qos_tardiness,
            preemptions: self.m.qos_preemptions,
            checkpoints: self.m.qos_checkpoints,
            replayed_nodes: self.m.qos_replayed,
            lost_work_cycles: self.m.qos_lost_work,
            class_sojourns,
        }
    }

    /// [`ideal_sequence_makespan`](crate::ideal::ideal_sequence_makespan)
    /// over the submitted jobs, with the per-graph ideal memoised per
    /// template — the pre-pooling implementation re-derived the
    /// reconfiguration sequence and re-ran list scheduling for every
    /// *job instance*, which dominated run finalisation on long streams.
    fn ideal_makespan_cached(&mut self) -> SimDuration {
        if let Some(d) = self.ideal_sequence_cache {
            return d;
        }
        // The arrival lane is exactly the required order — (arrival,
        // submission index), stably sorted — and `outcome` only runs
        // once every submitted arrival has been consumed, so it is
        // fully sorted here; no per-run order buffer needed.
        debug_assert_eq!(self.arrival_lane.len(), self.jobs.len());
        let rus = self.m.cfg.rus;
        let ideal_cache = &mut self.ideal_cache;
        let d = crate::ideal::ideal_sequence_makespan_with(
            &self.jobs,
            self.arrival_lane.iter().map(|&(_, i)| i),
            |g| {
                let key = Arc::as_ptr(g) as usize;
                match ideal_cache.get(&key) {
                    Some(&(_, d)) => d,
                    None => {
                        let d = ideal_graph_makespan(g, rus);
                        ideal_cache.insert(key, (Arc::clone(g), d));
                        d
                    }
                }
            },
        );
        self.ideal_sequence_cache = Some(d);
        d
    }
}

/// Runs the manager over `jobs` with the given replacement `policy`.
///
/// This is the batch entry point: every job is submitted up front to a
/// streaming [`Engine`] and the event queue is drained once. Jobs
/// carrying the default `arrival == 0` reproduce the paper's
/// fixed-sequence semantics exactly; arrival-annotated jobs stream in
/// at their own instants.
///
/// The policy's `reset` is invoked first, so policies can be reused
/// across runs. Returns an error only when a delayed reconfiguration
/// waits forever (see [`SimError`]).
pub fn simulate(
    cfg: &ManagerConfig,
    jobs: &[JobSpec],
    policy: &mut dyn ReplacementPolicy,
) -> Result<SimulationOutcome, SimError> {
    policy.reset();
    let mut engine = Engine::new(cfg);
    for job in jobs {
        engine.submit(job.clone());
    }
    engine.run(policy);
    engine.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FirstCandidatePolicy;
    use crate::trace::TraceEvent;
    use rtr_sim::SimDuration;
    use rtr_taskgraph::{benchmarks, ConfigId};

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_ms(x)
    }

    fn run(cfg: &ManagerConfig, jobs: &[JobSpec]) -> SimulationOutcome {
        simulate(cfg, jobs, &mut FirstCandidatePolicy).expect("simulation completes")
    }

    #[test]
    fn empty_sequence_completes_immediately() {
        let out = run(&ManagerConfig::paper_default(), &[]);
        assert_eq!(out.stats.makespan, SimDuration::ZERO);
        assert_eq!(out.stats.executed, 0);
        // Derived metrics of the zero-job run are finite zeros, not NaN.
        assert_eq!(out.stats.reuse_rate_pct(), 0.0);
        assert_eq!(out.stats.remaining_overhead_pct(), 0.0);
        assert_eq!(out.stats.mean_sojourn_ms(), 0.0);
    }

    #[test]
    fn single_chain_graph_schedule() {
        // JPEG on 4 RUs: loads pipeline behind the 21 ms VLD execution;
        // only the initial 4 ms load is exposed. Makespan = 79 + 4.
        let jobs = vec![JobSpec::new(Arc::new(benchmarks::jpeg()))];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        assert_eq!(out.stats.makespan, ms(83));
        assert_eq!(out.stats.executed, 4);
        assert_eq!(out.stats.loads, 4);
        assert_eq!(out.stats.reuses, 0);
        assert_eq!(out.stats.total_overhead(), ms(4));
    }

    #[test]
    fn repeated_graph_reuses_everything_with_enough_rus() {
        let g = Arc::new(benchmarks::jpeg());
        let jobs = vec![JobSpec::new(Arc::clone(&g)), JobSpec::new(g)];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        // Second instance reuses all 4 configurations.
        assert_eq!(out.stats.reuses, 4);
        assert_eq!(out.stats.loads, 4);
        assert_eq!(out.stats.makespan, ms(83 + 79));
        assert!((out.stats.reuse_rate_pct() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn reuse_disabled_reloads_everything() {
        let g = Arc::new(benchmarks::jpeg());
        let jobs = vec![JobSpec::new(Arc::clone(&g)), JobSpec::new(g)];
        let cfg = ManagerConfig::paper_default().with_reuse(false);
        let out = run(&cfg, &jobs);
        assert_eq!(out.stats.reuses, 0);
        assert_eq!(out.stats.loads, 8);
        // Both instances pay the initial exposed load.
        assert_eq!(out.stats.makespan, ms(83 + 83));
    }

    #[test]
    fn graphs_execute_sequentially() {
        let jobs = vec![
            JobSpec::new(Arc::new(benchmarks::jpeg())),
            JobSpec::new(Arc::new(benchmarks::mpeg1())),
        ];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        // First exec of job 1 must not precede last exec end of job 0.
        let mut first_exec_job1 = None;
        let mut last_end_job0 = None;
        for ev in out.trace.iter() {
            match *ev {
                TraceEvent::ExecStart { job: 1, at, .. } => {
                    first_exec_job1.get_or_insert(at);
                }
                TraceEvent::ExecEnd { job: 0, at, .. } => last_end_job0 = Some(at),
                _ => {}
            }
        }
        assert!(first_exec_job1.unwrap() >= last_end_job0.unwrap());
    }

    #[test]
    fn single_ru_serialises_with_replacement() {
        // MPEG-1 on one RU: every task must evict its predecessor.
        let jobs = vec![JobSpec::new(Arc::new(benchmarks::mpeg1()))];
        let cfg = ManagerConfig::paper_default().with_rus(1);
        let out = run(&cfg, &jobs);
        assert_eq!(out.stats.executed, 5);
        assert_eq!(out.stats.loads, 5);
        // Fully serial: each task pays its load latency then runs.
        assert_eq!(
            out.stats.makespan,
            ms(5 * 4) + benchmarks::mpeg1().total_exec_time()
        );
    }

    #[test]
    fn stall_retries_until_candidate_appears() {
        // Two RUs, a graph with three parallel sources and one sink:
        // the third source cannot load until a source finishes.
        let mut b = rtr_taskgraph::TaskGraphBuilder::new("wide");
        let a = b.node("a", ConfigId(1), ms(10));
        let c = b.node("b", ConfigId(2), ms(10));
        let d = b.node("c", ConfigId(3), ms(10));
        let e = b.node("d", ConfigId(4), ms(5));
        b.edge(a, e).edge(c, e).edge(d, e);
        let g = Arc::new(b.build().unwrap());
        let cfg = ManagerConfig::paper_default().with_rus(2);
        let out = run(&cfg, &[JobSpec::new(g)]);
        assert_eq!(out.stats.executed, 4);
        assert!(out.stats.stalls > 0, "expected stalled load attempts");
    }

    #[test]
    fn forced_delay_shifts_schedule() {
        // Fig. 7b: delaying T5 of Fig3-TG2 by one event gives 36 ms.
        let g = Arc::new(benchmarks::fig3_tg2());
        let job = JobSpec::new(Arc::clone(&g)).with_forced_delays(Arc::new(vec![0, 1, 0, 0]));
        let out = run(&ManagerConfig::paper_default(), &[job]);
        assert_eq!(out.stats.makespan, ms(36));
        assert_eq!(out.stats.skips, 1);
    }

    #[test]
    fn infeasible_forced_delay_errors() {
        // Delaying the only task of a single-node graph: there is never
        // a "following event".
        let mut b = rtr_taskgraph::TaskGraphBuilder::new("solo");
        b.node("t", ConfigId(1), ms(5));
        let g = Arc::new(b.build().unwrap());
        let job = JobSpec::new(g).with_forced_delays(Arc::new(vec![1]));
        let err = simulate(
            &ManagerConfig::paper_default(),
            &[job],
            &mut FirstCandidatePolicy,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::StalledAwaitingEvent { .. }));
    }

    #[test]
    fn energy_accounting_tracks_loads_and_reuses() {
        let g = Arc::new(benchmarks::jpeg());
        let jobs = vec![JobSpec::new(Arc::clone(&g)), JobSpec::new(g)];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        assert_eq!(out.stats.traffic.loads, 4);
        assert_eq!(out.stats.traffic.reuses, 4);
        assert_eq!(
            out.stats.traffic.bytes_moved,
            4 * ManagerConfig::paper_default().device.bitstream_bytes
        );
    }

    #[test]
    fn trace_recording_can_be_disabled() {
        let jobs = vec![JobSpec::new(Arc::new(benchmarks::jpeg()))];
        let cfg = ManagerConfig::paper_default().with_trace(false);
        let out = run(&cfg, &jobs);
        assert!(out.trace.is_empty());
        assert_eq!(out.stats.executed, 4);
    }

    #[test]
    fn late_arrival_idles_then_resumes() {
        // One JPEG at t = 0 (makespan 83 ms solo), a second arriving at
        // 200 ms: the manager idles in between, and residency survives
        // the gap, so the second instance reuses all 4 configurations
        // and finishes at 200 + 79 ms.
        let g = Arc::new(benchmarks::jpeg());
        let jobs = vec![
            JobSpec::new(Arc::clone(&g)),
            JobSpec::new(g).with_arrival(SimTime::from_ms(200)),
        ];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        assert_eq!(out.stats.reuses, 4, "residency survives the idle gap");
        assert_eq!(out.stats.makespan, ms(200 + 79));
        // The idle gap absorbs job 0's exposed initial load (it ends at
        // 83 ms, well before job 1 arrives), so no overhead is visible.
        assert_eq!(out.stats.total_overhead(), ms(0));
        assert_eq!(
            out.stats.graph_arrivals,
            vec![SimTime::ZERO, SimTime::from_ms(200)]
        );
    }

    #[test]
    fn activation_follows_arrival_order_not_submission_order() {
        // Job 1 arrives before job 0: it must run first.
        let jobs = vec![
            JobSpec::new(Arc::new(benchmarks::jpeg())).with_arrival(SimTime::from_ms(50)),
            JobSpec::new(Arc::new(benchmarks::mpeg1())).with_arrival(SimTime::from_ms(10)),
        ];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        let starts: Vec<u32> = out
            .trace
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::GraphStart { job, .. } => Some(job),
                _ => None,
            })
            .collect();
        assert_eq!(starts, vec![1, 0]);
    }

    #[test]
    fn engine_interleaves_submission_and_running() {
        // Drive the engine open-loop: run to idle, then submit more.
        let g = Arc::new(benchmarks::jpeg());
        let mut policy = FirstCandidatePolicy;
        let mut engine = Engine::new(&ManagerConfig::paper_default());
        engine.submit(JobSpec::new(Arc::clone(&g)));
        engine.run(&mut policy);
        assert!(engine.is_idle());
        assert_eq!(engine.completed_jobs(), 1);
        let t = engine.now();
        assert_eq!(t, SimTime::from_ms(83));
        // Submit a job arriving strictly later than "now".
        engine.submit(JobSpec::new(g).with_arrival(t + ms(17)));
        engine.run(&mut policy);
        assert_eq!(engine.completed_jobs(), 2);
        let out = engine.finish().expect("both jobs completed");
        assert_eq!(out.stats.reuses, 4);
        assert_eq!(out.stats.makespan, ms(100 + 79));
    }

    #[test]
    #[should_panic(expected = "simulated past")]
    fn submitting_into_the_past_panics() {
        let g = Arc::new(benchmarks::jpeg());
        let mut engine = Engine::new(&ManagerConfig::paper_default());
        engine.submit(JobSpec::new(Arc::clone(&g)));
        engine.run(&mut FirstCandidatePolicy);
        // now == 83 ms; an arrival at 5 ms is in the past.
        engine.submit(JobSpec::new(g).with_arrival(SimTime::from_ms(5)));
    }

    #[test]
    fn simultaneous_arrivals_activate_in_submission_order() {
        let jobs = vec![
            JobSpec::new(Arc::new(benchmarks::jpeg())).with_arrival(SimTime::from_ms(30)),
            JobSpec::new(Arc::new(benchmarks::mpeg1())).with_arrival(SimTime::from_ms(30)),
        ];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        let starts: Vec<u32> = out
            .trace
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::GraphStart { job, .. } => Some(job),
                _ => None,
            })
            .collect();
        assert_eq!(starts, vec![0, 1]);
        // Nothing can run before the shared arrival instant.
        assert!(out.stats.makespan >= ms(30 + 83));
    }

    #[test]
    fn streaming_trace_records_arrivals() {
        let jobs =
            vec![JobSpec::new(Arc::new(benchmarks::jpeg())).with_arrival(SimTime::from_ms(7))];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        let arrivals: Vec<(u32, SimTime)> = out
            .trace
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::JobArrival { job, at } => Some((job, at)),
                _ => None,
            })
            .collect();
        assert_eq!(arrivals, vec![(0, SimTime::from_ms(7))]);
    }

    #[test]
    fn pooled_reset_reproduces_fresh_runs() {
        // One engine, three different batches, each bit-exact with a
        // fresh simulate (stats + trace).
        let jpeg = Arc::new(benchmarks::jpeg());
        let mpeg = Arc::new(benchmarks::mpeg1());
        let batches: Vec<Vec<JobSpec>> = vec![
            vec![JobSpec::new(Arc::clone(&jpeg)); 3],
            vec![JobSpec::new(Arc::clone(&mpeg)), JobSpec::new(jpeg)],
            vec![JobSpec::new(mpeg)],
        ];
        let cfg = ManagerConfig::paper_default();
        let mut engine = Engine::new(&cfg);
        for jobs in &batches {
            engine.reset(jobs);
            engine.run(&mut FirstCandidatePolicy);
            let pooled = engine.outcome().expect("batch completes");
            let fresh = simulate(&cfg, jobs, &mut FirstCandidatePolicy).unwrap();
            assert_eq!(pooled.stats, fresh.stats);
            assert_eq!(pooled.trace, fresh.trace);
        }
    }

    #[test]
    fn reset_with_config_retargets_system() {
        let jobs = vec![JobSpec::new(Arc::new(benchmarks::mpeg1()))];
        let mut engine = Engine::new(&ManagerConfig::paper_default());
        // 1 RU: fully serial (see single_ru_serialises_with_replacement).
        let one_ru = ManagerConfig::paper_default().with_rus(1);
        engine.reset_with_config(&one_ru, &jobs);
        engine.run(&mut FirstCandidatePolicy);
        let serial = engine.outcome().unwrap();
        assert_eq!(
            serial.stats.makespan,
            ms(5 * 4) + benchmarks::mpeg1().total_exec_time()
        );
        // Back to 4 RUs on the same engine.
        engine.reset_with_config(&ManagerConfig::paper_default(), &jobs);
        engine.run(&mut FirstCandidatePolicy);
        let wide = engine.outcome().unwrap();
        let fresh = simulate(
            &ManagerConfig::paper_default(),
            &jobs,
            &mut FirstCandidatePolicy,
        )
        .unwrap();
        assert_eq!(wide.stats, fresh.stats);
    }

    #[test]
    fn reset_replay_rearms_the_same_batch() {
        let g = Arc::new(benchmarks::jpeg());
        let jobs = vec![JobSpec::new(Arc::clone(&g)), JobSpec::new(g)];
        let cfg = ManagerConfig::paper_default();
        let mut engine = Engine::new(&cfg);
        engine.reset(&jobs);
        engine.run(&mut FirstCandidatePolicy);
        let first = engine.outcome().unwrap();
        // Replay without re-submitting: identical outcome, jobs intact.
        for _ in 0..3 {
            engine.reset_replay();
            engine.run(&mut FirstCandidatePolicy);
            let again = engine.outcome().unwrap();
            assert_eq!(again.stats, first.stats);
            assert_eq!(again.trace, first.trace);
        }
        assert_eq!(engine.submitted_jobs(), 2);
    }

    #[test]
    #[should_panic(expected = "outcome already taken")]
    fn running_after_outcome_without_reset_panics() {
        // Pre-pooling, `finish(self)` consumed the engine, so a
        // finalised engine could never run again; the pooled form keeps
        // that protocol explicit.
        let mut engine = Engine::new(&ManagerConfig::paper_default());
        engine.submit(JobSpec::new(Arc::new(benchmarks::jpeg())));
        engine.run(&mut FirstCandidatePolicy);
        let _ = engine.outcome().unwrap();
        engine.run(&mut FirstCandidatePolicy);
    }

    #[test]
    fn shared_template_set_interns_across_engines() {
        let set = Arc::new(rtr_taskgraph::TemplateSet::new());
        let g = Arc::new(benchmarks::jpeg());
        let cfg = ManagerConfig::paper_default();
        for _ in 0..3 {
            let mut engine = Engine::with_templates(&cfg, Arc::clone(&set));
            engine.submit(JobSpec::new(Arc::clone(&g)));
            engine.run(&mut FirstCandidatePolicy);
            assert_eq!(engine.completed_jobs(), 1);
        }
        assert_eq!(set.len(), 1, "one template analysed once, shared");
    }

    #[test]
    fn reuse_index_tracks_backlog_and_drains() {
        // Two jobs at t = 0: while job 0 runs, the index holds job 0 +
        // the backlog job 1; after the run everything retired.
        let g = Arc::new(benchmarks::jpeg());
        let mut engine = Engine::new(&ManagerConfig::paper_default());
        engine.submit(JobSpec::new(Arc::clone(&g)));
        engine.submit(JobSpec::new(g));
        assert!(engine.reuse_index().is_empty(), "indexed on arrival");
        engine.run(&mut FirstCandidatePolicy);
        assert!(engine.reuse_index().is_empty(), "retired on completion");
        assert_eq!(engine.completed_jobs(), 2);
    }
}
