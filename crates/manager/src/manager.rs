//! The event-triggered execution manager (the paper's Fig. 4) with the
//! replacement-module protocol (Fig. 8), generalised into a streaming
//! [`Engine`] that consumes jobs from an online arrival queue.
//!
//! See the crate docs and `DESIGN.md` §2 for the semantics; every branch
//! here maps onto a line of the paper's pseudo-code:
//!
//! * `JobArrival` → the job enters the manager's online queue. In the
//!   paper's batch setting every job arrives at t = 0, which reproduces
//!   the fixed FIFO sequence of Fig. 4 exactly.
//! * `NewTaskGraph` → Fig. 4 lines 1–4 (activate, invoke replacement
//!   module if the circuitry is idle — it always is at activation
//!   because graphs execute sequentially).
//! * `EndOfReconfiguration` / reuse claims → Fig. 4 lines 5–9 (start the
//!   task if ready, then invoke the replacement module again).
//! * `EndOfExecution` → Fig. 4 lines 10–19 (replacement module if the
//!   circuitry is idle, then dependency update, then start any loaded
//!   ready tasks).
//! * the replacement-module loop (`try_advance`) → Fig. 8 (reuse claim / victim
//!   selection / skip decision / load).
//!
//! When the current graph completes and no arrived job is waiting, the
//! manager goes *idle*: resident configurations stay in place (so reuse
//! survives idle gaps) and the next `JobArrival` event resumes
//! activation.

use crate::config::ManagerConfig;
use crate::ideal::ideal_sequence_makespan;
use crate::job::JobSpec;
use crate::policy::{FutureView, ReplacementContext, ReplacementPolicy, VictimCandidate};
use crate::stats::RunStats;
use crate::trace::{Trace, TraceEvent};
use rtr_hw::{EnergyModel, ReconfigController, RuId, RuPool};
use rtr_sim::{EventQueue, SimTime};
use rtr_taskgraph::{reconfiguration_sequence, ConfigId, NodeId, TaskGraph};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Same-time event ordering (lower fires first): task completions are
/// observed before reconfiguration completions, then arrivals enter the
/// online queue, and graph activations happen after all same-instant
/// completions and arrivals.
const PRIO_END_OF_EXECUTION: u8 = 0;
const PRIO_END_OF_RECONFIGURATION: u8 = 1;
const PRIO_JOB_ARRIVAL: u8 = 2;
const PRIO_NEW_TASK_GRAPH: u8 = 3;

/// Events driving the manager.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Job `idx` enters the online queue.
    JobArrival { idx: usize },
    /// The longest-waiting arrived job becomes current.
    NewTaskGraph,
    /// The in-flight reconfiguration finished.
    EndOfReconfiguration { ru: RuId, node: NodeId },
    /// A task finished executing.
    EndOfExecution { ru: RuId, node: NodeId },
}

/// Simulation failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained before all jobs completed. With correct
    /// inputs this can only happen when a skip (run-time or forced
    /// mobility probe) waited for a "following event" that does not
    /// exist; the design-time mobility calculation treats it as an
    /// infeasible delay.
    StalledAwaitingEvent {
        /// Jobs fully completed before the stall.
        completed_jobs: usize,
        /// Time of the last processed event.
        at: SimTime,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::StalledAwaitingEvent { completed_jobs, at } => write!(
                f,
                "simulation stalled at {at} after {completed_jobs} jobs: a delayed \
                 reconfiguration waited for an event that never comes"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of [`simulate`].
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// Aggregate statistics.
    pub stats: RunStats,
    /// Full schedule trace (empty when `record_trace` is off).
    pub trace: Trace,
}

/// Design-time artifacts computed once per distinct graph template: the
/// reconfiguration sequence and its configuration projection. This is
/// the "bulk of the computations at design time" the hybrid approach
/// banks on — at run time the manager only walks precomputed arrays.
#[derive(Debug, Clone)]
struct TemplateInfo {
    rec_seq: Arc<Vec<NodeId>>,
    cfg_seq: Arc<Vec<ConfigId>>,
}

/// Run-time state of the current task graph.
#[derive(Debug)]
struct ActiveJob {
    idx: u32,
    graph: Arc<TaskGraph>,
    rec_seq: Arc<Vec<NodeId>>,
    cfg_seq: Arc<Vec<ConfigId>>,
    /// Cursor into `rec_seq`: next task to load.
    seq_pos: usize,
    pending_preds: Vec<u32>,
    node_ru: Vec<Option<RuId>>,
    loaded: Vec<bool>,
    exec_started: Vec<bool>,
    done_count: usize,
    /// Run-time Skip Events counter — "initialized externally to this
    /// function each time a new task graph starts its execution"
    /// (Fig. 8).
    skipped_events: u32,
    /// Per-node forced delays already honoured (mobility probes).
    forced_skips_done: Vec<u32>,
    mobility: Option<Arc<Vec<u32>>>,
    forced_delays: Option<Arc<Vec<u32>>>,
}

impl ActiveJob {
    fn new(idx: u32, spec: &JobSpec, tpl: &TemplateInfo) -> Self {
        let n = spec.graph.len();
        let pending_preds = spec
            .graph
            .node_ids()
            .map(|id| spec.graph.preds(id).len() as u32)
            .collect();
        ActiveJob {
            idx,
            graph: Arc::clone(&spec.graph),
            rec_seq: Arc::clone(&tpl.rec_seq),
            cfg_seq: Arc::clone(&tpl.cfg_seq),
            seq_pos: 0,
            pending_preds,
            node_ru: vec![None; n],
            loaded: vec![false; n],
            exec_started: vec![false; n],
            done_count: 0,
            skipped_events: 0,
            forced_skips_done: vec![0; n],
            mobility: spec.mobility.clone(),
            forced_delays: spec.forced_delays.clone(),
        }
    }

    fn ready(&self, node: NodeId) -> bool {
        self.loaded[node.idx()]
            && !self.exec_started[node.idx()]
            && self.pending_preds[node.idx()] == 0
    }
}

struct ManagerState {
    cfg: ManagerConfig,
    pool: RuPool,
    controller: ReconfigController,
    energy: EnergyModel,
    queue: EventQueue<Event>,
    /// Per-job design-time info, indexed like `jobs`.
    job_templates: Vec<TemplateInfo>,
    current: Option<ActiveJob>,
    /// Online queue: jobs that have arrived but not yet been activated,
    /// in arrival order (ties broken by submission order). This is what
    /// the replacement module's Dynamic List is built from.
    arrived: VecDeque<usize>,
    /// A `NewTaskGraph` event is already enqueued (prevents
    /// double-activation when several jobs arrive at the same instant).
    activation_pending: bool,
    completed_jobs: usize,
    trace: Trace,
    executed: u64,
    reuses: u64,
    loads: u64,
    skips: u64,
    stalls: u64,
    /// Arrival instant of each graph, in activation order.
    graph_arrivals: Vec<SimTime>,
    graph_completions: Vec<SimTime>,
    makespan_end: SimTime,
}

/// The streaming execution engine: an online generalisation of the
/// paper's batch simulator.
///
/// Jobs are [`submit`](Engine::submit)ted with explicit arrival times
/// and consumed as they arrive; [`run`](Engine::run) drains every
/// currently scheduled event (arrivals included), after which more jobs
/// may be submitted and `run` called again — an open-loop driver can
/// interleave submission and simulation indefinitely. The manager
/// idles (RU residency intact) whenever the online queue is empty while
/// later arrivals are still pending, and resumes on the next arrival.
///
/// **Batch equivalence:** submitting every job with `arrival == t0 = 0`
/// and draining the queue reproduces the paper's fixed-sequence
/// semantics event for event — [`simulate`] is exactly that wrapper,
/// and the golden Fig. 2/3/7 numbers are regression-tested through it.
pub struct Engine {
    m: ManagerState,
    jobs: Vec<JobSpec>,
    /// Design-time artifact cache, keyed by template identity.
    by_template: HashMap<*const TaskGraph, TemplateInfo>,
    /// Name of the policy last passed to [`Engine::run`] (for stats).
    policy_name: String,
}

impl Engine {
    /// Creates an idle engine with no jobs.
    ///
    /// # Panics
    /// Panics if `cfg.rus == 0`.
    pub fn new(cfg: &ManagerConfig) -> Self {
        assert!(cfg.rus > 0, "need at least one RU");
        Engine {
            m: ManagerState {
                pool: RuPool::new(cfg.rus),
                controller: ReconfigController::new(cfg.device.reconfig_latency),
                energy: EnergyModel::new(cfg.device.clone()),
                queue: EventQueue::new(),
                job_templates: Vec::new(),
                current: None,
                arrived: VecDeque::new(),
                activation_pending: false,
                completed_jobs: 0,
                trace: Trace::default(),
                executed: 0,
                reuses: 0,
                loads: 0,
                skips: 0,
                stalls: 0,
                graph_arrivals: Vec::new(),
                graph_completions: Vec::new(),
                makespan_end: SimTime::ZERO,
                cfg: cfg.clone(),
            },
            jobs: Vec::new(),
            by_template: HashMap::new(),
            policy_name: String::new(),
        }
    }

    /// Submits a job; its arrival event fires at `job.arrival`. Returns
    /// the job's index (activation order may differ — jobs activate in
    /// arrival order).
    ///
    /// The design-time phase (reconfiguration sequence, configuration
    /// projection) runs here, once per distinct graph template.
    ///
    /// # Panics
    /// Panics if the arrival lies in the simulated past (before the
    /// time of the last processed event).
    pub fn submit(&mut self, job: JobSpec) -> usize {
        assert!(
            job.arrival >= self.m.queue.now(),
            "job arrival {} is in the simulated past (now = {})",
            job.arrival,
            self.m.queue.now()
        );
        let tpl = self
            .by_template
            .entry(Arc::as_ptr(&job.graph))
            .or_insert_with(|| {
                let rec_seq = reconfiguration_sequence(&job.graph);
                let cfg_seq = rec_seq.iter().map(|&n| job.graph.config_of(n)).collect();
                TemplateInfo {
                    rec_seq: Arc::new(rec_seq),
                    cfg_seq: Arc::new(cfg_seq),
                }
            })
            .clone();
        let idx = self.jobs.len();
        self.m.job_templates.push(tpl);
        self.m
            .queue
            .push(job.arrival, PRIO_JOB_ARRIVAL, Event::JobArrival { idx });
        self.jobs.push(job);
        idx
    }

    /// Processes events until the queue drains: every submitted job has
    /// arrived and either completed or stalled. More jobs may be
    /// submitted afterwards and `run` called again.
    ///
    /// The policy is passed per call (not stored) so the same engine
    /// can be driven by external schedulers; pass the same policy on
    /// every call for meaningful history-based decisions. `reset` is
    /// *not* invoked — callers owning the full run (like [`simulate`])
    /// reset the policy themselves.
    pub fn run(&mut self, policy: &mut dyn ReplacementPolicy) {
        self.policy_name = policy.name();
        while let Some(ev) = self.m.queue.pop() {
            self.m.makespan_end = ev.time;
            self.m.handle(ev.payload, ev.time, &self.jobs, policy);
        }
    }

    /// The simulation clock: time of the last processed event.
    pub fn now(&self) -> SimTime {
        self.m.queue.now()
    }

    /// Number of jobs submitted so far.
    pub fn submitted_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Number of jobs that ran to completion so far.
    pub fn completed_jobs(&self) -> usize {
        self.m.completed_jobs
    }

    /// True when no graph is active and no events (arrivals included)
    /// are pending.
    pub fn is_idle(&self) -> bool {
        self.m.current.is_none() && self.m.queue.is_empty()
    }

    /// Finalises the run into stats + trace.
    ///
    /// Returns [`SimError::StalledAwaitingEvent`] when some submitted
    /// job did not complete (a delayed reconfiguration waited for an
    /// event that never came).
    pub fn finish(self) -> Result<SimulationOutcome, SimError> {
        if self.m.completed_jobs != self.jobs.len() {
            return Err(SimError::StalledAwaitingEvent {
                completed_jobs: self.m.completed_jobs,
                at: self.m.makespan_end,
            });
        }
        let stats = RunStats {
            policy: self.policy_name,
            makespan: self.m.makespan_end.since(SimTime::ZERO),
            executed: self.m.executed,
            reuses: self.m.reuses,
            loads: self.m.loads,
            skips: self.m.skips,
            stalls: self.m.stalls,
            traffic: self.m.energy.stats(),
            graph_arrivals: self.m.graph_arrivals,
            graph_completions: self.m.graph_completions,
            ideal_makespan: ideal_sequence_makespan(&self.jobs, self.m.cfg.rus),
            reconfig_latency: self.m.cfg.device.reconfig_latency,
        };
        Ok(SimulationOutcome {
            stats,
            trace: self.m.trace,
        })
    }
}

/// Runs the manager over `jobs` with the given replacement `policy`.
///
/// This is the batch entry point: every job is submitted up front to a
/// streaming [`Engine`] and the event queue is drained once. Jobs
/// carrying the default `arrival == 0` reproduce the paper's
/// fixed-sequence semantics exactly; arrival-annotated jobs stream in
/// at their own instants.
///
/// The policy's `reset` is invoked first, so policies can be reused
/// across runs. Returns an error only when a delayed reconfiguration
/// waits forever (see [`SimError`]).
pub fn simulate(
    cfg: &ManagerConfig,
    jobs: &[JobSpec],
    policy: &mut dyn ReplacementPolicy,
) -> Result<SimulationOutcome, SimError> {
    policy.reset();
    let mut engine = Engine::new(cfg);
    for job in jobs {
        engine.submit(job.clone());
    }
    engine.run(policy);
    engine.finish()
}

impl ManagerState {
    fn record(&mut self, ev: TraceEvent) {
        if self.cfg.record_trace {
            self.trace.push(ev);
        }
    }

    fn handle(
        &mut self,
        ev: Event,
        now: SimTime,
        jobs: &[JobSpec],
        policy: &mut dyn ReplacementPolicy,
    ) {
        match ev {
            Event::JobArrival { idx } => {
                self.record(TraceEvent::JobArrival {
                    job: idx as u32,
                    at: now,
                });
                self.arrived.push_back(idx);
                if self.current.is_none() {
                    // Idle manager: resume by activating at this instant
                    // (unless a same-instant activation is already queued).
                    if !self.activation_pending {
                        self.queue
                            .push(now, PRIO_NEW_TASK_GRAPH, Event::NewTaskGraph);
                        self.activation_pending = true;
                    }
                } else {
                    // The Dynamic List just grew: a stalled or skipped
                    // reconfiguration of the current graph may retry at
                    // this event.
                    self.try_advance(now, policy);
                }
            }
            Event::NewTaskGraph => {
                debug_assert!(self.current.is_none(), "graphs execute sequentially");
                debug_assert!(
                    self.controller.is_idle(),
                    "no cross-graph reconfigurations can be in flight"
                );
                self.activation_pending = false;
                let idx = self
                    .arrived
                    .pop_front()
                    .expect("activation follows an arrival");
                let job = ActiveJob::new(idx as u32, &jobs[idx], &self.job_templates[idx]);
                self.record(TraceEvent::GraphStart {
                    job: idx as u32,
                    at: now,
                });
                self.graph_arrivals.push(jobs[idx].arrival);
                self.current = Some(job);
                policy.on_graph_start(idx as u32, now);
                self.try_advance(now, policy);
            }
            Event::EndOfReconfiguration { ru, node } => {
                let op = self.controller.complete(now);
                debug_assert_eq!(op.ru, ru);
                let config = self
                    .pool
                    .finish_load(ru)
                    .expect("manager drives RU transitions correctly");
                let job_idx = {
                    let job = self
                        .current
                        .as_mut()
                        .expect("loads only happen for the current graph");
                    job.loaded[node.idx()] = true;
                    job.node_ru[node.idx()] = Some(ru);
                    job.idx
                };
                self.record(TraceEvent::LoadEnd {
                    job: job_idx,
                    node,
                    config,
                    ru,
                    at: now,
                });
                policy.on_load_complete(config, ru, now);
                // Fig. 4 lines 6–8: start the task if it is ready.
                if self.current.as_ref().is_some_and(|j| j.ready(node)) {
                    self.start_execution(node, now, policy);
                }
                // Fig. 4 line 9: invoke the replacement module again.
                self.try_advance(now, policy);
            }
            Event::EndOfExecution { ru, node } => {
                let config = self
                    .pool
                    .finish_execution(ru)
                    .expect("manager drives RU transitions correctly");
                let (job_idx, graph, done) = {
                    let job = self
                        .current
                        .as_mut()
                        .expect("executions only happen for the current graph");
                    job.done_count += 1;
                    (job.idx, Arc::clone(&job.graph), job.done_count)
                };
                self.executed += 1;
                self.record(TraceEvent::ExecEnd {
                    job: job_idx,
                    node,
                    config,
                    ru,
                    at: now,
                });
                policy.on_exec_end(config, now);
                // Fig. 4 lines 11–13: replacement module first, if the
                // reconfiguration circuitry is idle.
                if self.controller.is_idle() {
                    self.try_advance(now, policy);
                }
                // Fig. 4 line 14: update task dependencies.
                let mut to_start: Vec<NodeId> = Vec::new();
                if let Some(job) = self.current.as_mut() {
                    for &s in graph.succs(node) {
                        job.pending_preds[s.idx()] -= 1;
                    }
                    // Fig. 4 lines 15–19: start loaded ready tasks.
                    for &s in graph.succs(node) {
                        if job.ready(s) {
                            to_start.push(s);
                        }
                    }
                }
                for s in to_start {
                    self.start_execution(s, now, policy);
                }
                // Graph completion → activate the longest-waiting
                // arrived job, or go idle until the next arrival.
                if done == graph.len() {
                    self.record(TraceEvent::GraphEnd {
                        job: job_idx,
                        at: now,
                    });
                    policy.on_graph_end(job_idx, now);
                    self.current = None;
                    self.completed_jobs += 1;
                    self.graph_completions.push(now);
                    if !self.arrived.is_empty() {
                        self.queue
                            .push(now, PRIO_NEW_TASK_GRAPH, Event::NewTaskGraph);
                        self.activation_pending = true;
                    }
                }
            }
        }
    }

    fn start_execution(&mut self, node: NodeId, now: SimTime, policy: &mut dyn ReplacementPolicy) {
        let (ru, idx, end) = {
            let job = self.current.as_mut().expect("start_execution needs a job");
            let ru = job.node_ru[node.idx()].expect("ready tasks have an RU");
            job.exec_started[node.idx()] = true;
            (ru, job.idx, now + job.graph.exec_time(node))
        };
        let config = self
            .pool
            .begin_execution(ru)
            .expect("ready tasks hold a claimed RU");
        self.queue.push(
            end,
            PRIO_END_OF_EXECUTION,
            Event::EndOfExecution { ru, node },
        );
        self.record(TraceEvent::ExecStart {
            job: idx,
            node,
            config,
            ru,
            at: now,
        });
        policy.on_exec_start(config, now);
    }

    /// The replacement module (Fig. 8): processes the head of the
    /// reconfiguration sequence while the circuitry is idle. Reuse
    /// claims cascade (they occupy no circuitry); at most one load can
    /// start (it occupies the circuitry).
    fn try_advance(&mut self, now: SimTime, policy: &mut dyn ReplacementPolicy) {
        loop {
            if !self.controller.is_idle() {
                return;
            }
            let (node, config, job_idx, forced_delay_pending) = {
                let Some(job) = self.current.as_ref() else {
                    return;
                };
                if job.seq_pos >= job.rec_seq.len() {
                    return;
                }
                let node = job.rec_seq[job.seq_pos];
                let forced = job
                    .forced_delays
                    .as_ref()
                    .is_some_and(|req| job.forced_skips_done[node.idx()] < req[node.idx()]);
                (node, job.cfg_seq[job.seq_pos], job.idx, forced)
            };

            // Forced delay probes (design-time mobility calculation,
            // Fig. 6): delay this load by one event, unconditionally.
            if forced_delay_pending {
                let job = self.current.as_mut().expect("checked above");
                job.forced_skips_done[node.idx()] += 1;
                self.skips += 1;
                self.record(TraceEvent::Skip {
                    job: job_idx,
                    node,
                    forced: true,
                    at: now,
                });
                return;
            }

            // Reuse: "the RU has identified that a task can be reused
            // since it was already loaded in a previous execution".
            if self.cfg.reuse_enabled {
                if let Some(ru) = self.pool.find_reusable(config) {
                    self.pool
                        .claim_for_reuse(ru, config)
                        .expect("find_reusable returned a claimable RU");
                    {
                        let job = self.current.as_mut().expect("checked above");
                        job.loaded[node.idx()] = true;
                        job.node_ru[node.idx()] = Some(ru);
                        job.seq_pos += 1;
                    }
                    self.reuses += 1;
                    self.energy.record_reuse();
                    self.record(TraceEvent::Reuse {
                        job: job_idx,
                        node,
                        config,
                        ru,
                        at: now,
                    });
                    policy.on_reuse(config, ru, now);
                    if self.current.as_ref().is_some_and(|j| j.ready(node)) {
                        self.start_execution(node, now, policy);
                    }
                    continue;
                }
            }

            // Pick the destination RU: a free one if it exists,
            // otherwise ask the policy for a victim (Fig. 8 step 2).
            let target = if let Some(ru) = self.pool.first_empty() {
                ru
            } else {
                let candidates: Vec<VictimCandidate> = self
                    .pool
                    .eviction_candidates()
                    .into_iter()
                    .map(|ru| VictimCandidate {
                        ru,
                        config: self
                            .pool
                            .state(ru)
                            .resident_config()
                            .expect("candidates are resident"),
                    })
                    .collect();
                if candidates.is_empty() {
                    // Fig. 8 step 3: no victim — retry at the next event.
                    self.stalls += 1;
                    self.record(TraceEvent::Stall {
                        job: job_idx,
                        node,
                        at: now,
                    });
                    return;
                }
                let (victim, do_skip) = {
                    let job = self.current.as_ref().expect("checked above");
                    let future = self.build_future_view(job);
                    let ctx = ReplacementContext {
                        now,
                        new_config: config,
                        candidates: &candidates,
                        future: &future,
                    };
                    let victim = policy.select_victim(&ctx);
                    let victim_cfg = candidates
                        .iter()
                        .find(|c| c.ru == victim)
                        .unwrap_or_else(|| {
                            panic!(
                                "policy {} returned a non-candidate victim {victim}",
                                policy.name()
                            )
                        })
                        .config;
                    // Fig. 8 steps 4–5: Skip Events. If the victim's
                    // configuration will be requested within the visible
                    // window and the new task still has mobility budget,
                    // delay the reconfiguration to the next event.
                    let do_skip = self.cfg.skip_events
                        && job.mobility.as_ref().is_some_and(|mob| {
                            mob[node.idx()] > job.skipped_events && future.contains(victim_cfg)
                        });
                    (victim, do_skip)
                };
                if do_skip {
                    let job = self.current.as_mut().expect("checked above");
                    job.skipped_events += 1;
                    self.skips += 1;
                    self.record(TraceEvent::Skip {
                        job: job_idx,
                        node,
                        forced: false,
                        at: now,
                    });
                    return;
                }
                victim
            };

            // Fig. 8 steps 6–7: trigger the reconfiguration and remove
            // the task from the sequence.
            self.pool
                .begin_load(target, config)
                .expect("target RU is empty or an unclaimed candidate");
            let completes = self.controller.start(target, config, now);
            {
                let job = self.current.as_mut().expect("checked above");
                job.seq_pos += 1;
            }
            self.loads += 1;
            self.energy.record_load();
            self.record(TraceEvent::LoadStart {
                job: job_idx,
                node,
                config,
                ru: target,
                at: now,
            });
            self.queue.push(
                completes,
                PRIO_END_OF_RECONFIGURATION,
                Event::EndOfReconfiguration { ru: target, node },
            );
            // Controller now busy: the loop exits on the next check.
        }
    }

    /// Builds the visible future request stream: remaining loads of the
    /// current graph, then the reconfiguration sequences of the next
    /// `lookahead` jobs in the online queue.
    ///
    /// Only *arrived* jobs are visible — an online manager cannot look
    /// into arrivals that have not happened yet, so even
    /// `Lookahead::All` is clairvoyant only about the enqueued backlog.
    /// In the batch setting every job arrives at t = 0 and this is
    /// exactly the paper's Dynamic List over the remaining sequence.
    fn build_future_view<'a>(&'a self, job: &'a ActiveJob) -> FutureView<'a> {
        let mut segments: Vec<&'a [ConfigId]> = Vec::new();
        // Remaining loads of the current graph, *after* the entry being
        // placed now.
        let rest = &job.cfg_seq[(job.seq_pos + 1).min(job.cfg_seq.len())..];
        if !rest.is_empty() {
            segments.push(rest);
        }
        let visible = self.cfg.lookahead.visible_graphs(self.arrived.len());
        for &idx in self.arrived.iter().take(visible) {
            segments.push(self.job_templates[idx].cfg_seq.as_slice());
        }
        FutureView::new(segments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FirstCandidatePolicy;
    use rtr_sim::SimDuration;
    use rtr_taskgraph::benchmarks;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_ms(x)
    }

    fn run(cfg: &ManagerConfig, jobs: &[JobSpec]) -> SimulationOutcome {
        simulate(cfg, jobs, &mut FirstCandidatePolicy).expect("simulation completes")
    }

    #[test]
    fn empty_sequence_completes_immediately() {
        let out = run(&ManagerConfig::paper_default(), &[]);
        assert_eq!(out.stats.makespan, SimDuration::ZERO);
        assert_eq!(out.stats.executed, 0);
    }

    #[test]
    fn single_chain_graph_schedule() {
        // JPEG on 4 RUs: loads pipeline behind the 21 ms VLD execution;
        // only the initial 4 ms load is exposed. Makespan = 79 + 4.
        let jobs = vec![JobSpec::new(Arc::new(benchmarks::jpeg()))];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        assert_eq!(out.stats.makespan, ms(83));
        assert_eq!(out.stats.executed, 4);
        assert_eq!(out.stats.loads, 4);
        assert_eq!(out.stats.reuses, 0);
        assert_eq!(out.stats.total_overhead(), ms(4));
    }

    #[test]
    fn repeated_graph_reuses_everything_with_enough_rus() {
        let g = Arc::new(benchmarks::jpeg());
        let jobs = vec![JobSpec::new(Arc::clone(&g)), JobSpec::new(g)];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        // Second instance reuses all 4 configurations.
        assert_eq!(out.stats.reuses, 4);
        assert_eq!(out.stats.loads, 4);
        assert_eq!(out.stats.makespan, ms(83 + 79));
        assert!((out.stats.reuse_rate_pct() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn reuse_disabled_reloads_everything() {
        let g = Arc::new(benchmarks::jpeg());
        let jobs = vec![JobSpec::new(Arc::clone(&g)), JobSpec::new(g)];
        let cfg = ManagerConfig::paper_default().with_reuse(false);
        let out = run(&cfg, &jobs);
        assert_eq!(out.stats.reuses, 0);
        assert_eq!(out.stats.loads, 8);
        // Both instances pay the initial exposed load.
        assert_eq!(out.stats.makespan, ms(83 + 83));
    }

    #[test]
    fn graphs_execute_sequentially() {
        let jobs = vec![
            JobSpec::new(Arc::new(benchmarks::jpeg())),
            JobSpec::new(Arc::new(benchmarks::mpeg1())),
        ];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        // First exec of job 1 must not precede last exec end of job 0.
        let mut first_exec_job1 = None;
        let mut last_end_job0 = None;
        for ev in out.trace.iter() {
            match *ev {
                TraceEvent::ExecStart { job: 1, at, .. } => {
                    first_exec_job1.get_or_insert(at);
                }
                TraceEvent::ExecEnd { job: 0, at, .. } => last_end_job0 = Some(at),
                _ => {}
            }
        }
        assert!(first_exec_job1.unwrap() >= last_end_job0.unwrap());
    }

    #[test]
    fn single_ru_serialises_with_replacement() {
        // MPEG-1 on one RU: every task must evict its predecessor.
        let jobs = vec![JobSpec::new(Arc::new(benchmarks::mpeg1()))];
        let cfg = ManagerConfig::paper_default().with_rus(1);
        let out = run(&cfg, &jobs);
        assert_eq!(out.stats.executed, 5);
        assert_eq!(out.stats.loads, 5);
        // Fully serial: each task pays its load latency then runs.
        assert_eq!(
            out.stats.makespan,
            ms(5 * 4) + benchmarks::mpeg1().total_exec_time()
        );
    }

    #[test]
    fn stall_retries_until_candidate_appears() {
        // Two RUs, a graph with three parallel sources and one sink:
        // the third source cannot load until a source finishes.
        let mut b = rtr_taskgraph::TaskGraphBuilder::new("wide");
        let a = b.node("a", ConfigId(1), ms(10));
        let c = b.node("b", ConfigId(2), ms(10));
        let d = b.node("c", ConfigId(3), ms(10));
        let e = b.node("d", ConfigId(4), ms(5));
        b.edge(a, e).edge(c, e).edge(d, e);
        let g = Arc::new(b.build().unwrap());
        let cfg = ManagerConfig::paper_default().with_rus(2);
        let out = run(&cfg, &[JobSpec::new(g)]);
        assert_eq!(out.stats.executed, 4);
        assert!(out.stats.stalls > 0, "expected stalled load attempts");
    }

    #[test]
    fn forced_delay_shifts_schedule() {
        // Fig. 7b: delaying T5 of Fig3-TG2 by one event gives 36 ms.
        let g = Arc::new(benchmarks::fig3_tg2());
        let job = JobSpec::new(Arc::clone(&g)).with_forced_delays(Arc::new(vec![0, 1, 0, 0]));
        let out = run(&ManagerConfig::paper_default(), &[job]);
        assert_eq!(out.stats.makespan, ms(36));
        assert_eq!(out.stats.skips, 1);
    }

    #[test]
    fn infeasible_forced_delay_errors() {
        // Delaying the only task of a single-node graph: there is never
        // a "following event".
        let mut b = rtr_taskgraph::TaskGraphBuilder::new("solo");
        b.node("t", ConfigId(1), ms(5));
        let g = Arc::new(b.build().unwrap());
        let job = JobSpec::new(g).with_forced_delays(Arc::new(vec![1]));
        let err = simulate(
            &ManagerConfig::paper_default(),
            &[job],
            &mut FirstCandidatePolicy,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::StalledAwaitingEvent { .. }));
    }

    #[test]
    fn energy_accounting_tracks_loads_and_reuses() {
        let g = Arc::new(benchmarks::jpeg());
        let jobs = vec![JobSpec::new(Arc::clone(&g)), JobSpec::new(g)];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        assert_eq!(out.stats.traffic.loads, 4);
        assert_eq!(out.stats.traffic.reuses, 4);
        assert_eq!(
            out.stats.traffic.bytes_moved,
            4 * ManagerConfig::paper_default().device.bitstream_bytes
        );
    }

    #[test]
    fn trace_recording_can_be_disabled() {
        let jobs = vec![JobSpec::new(Arc::new(benchmarks::jpeg()))];
        let cfg = ManagerConfig::paper_default().with_trace(false);
        let out = run(&cfg, &jobs);
        assert!(out.trace.is_empty());
        assert_eq!(out.stats.executed, 4);
    }

    #[test]
    fn late_arrival_idles_then_resumes() {
        // One JPEG at t = 0 (makespan 83 ms solo), a second arriving at
        // 200 ms: the manager idles in between, and residency survives
        // the gap, so the second instance reuses all 4 configurations
        // and finishes at 200 + 79 ms.
        let g = Arc::new(benchmarks::jpeg());
        let jobs = vec![
            JobSpec::new(Arc::clone(&g)),
            JobSpec::new(g).with_arrival(SimTime::from_ms(200)),
        ];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        assert_eq!(out.stats.reuses, 4, "residency survives the idle gap");
        assert_eq!(out.stats.makespan, ms(200 + 79));
        // The idle gap absorbs job 0's exposed initial load (it ends at
        // 83 ms, well before job 1 arrives), so no overhead is visible.
        assert_eq!(out.stats.total_overhead(), ms(0));
        assert_eq!(
            out.stats.graph_arrivals,
            vec![SimTime::ZERO, SimTime::from_ms(200)]
        );
    }

    #[test]
    fn activation_follows_arrival_order_not_submission_order() {
        // Job 1 arrives before job 0: it must run first.
        let jobs = vec![
            JobSpec::new(Arc::new(benchmarks::jpeg())).with_arrival(SimTime::from_ms(50)),
            JobSpec::new(Arc::new(benchmarks::mpeg1())).with_arrival(SimTime::from_ms(10)),
        ];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        let starts: Vec<u32> = out
            .trace
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::GraphStart { job, .. } => Some(job),
                _ => None,
            })
            .collect();
        assert_eq!(starts, vec![1, 0]);
    }

    #[test]
    fn engine_interleaves_submission_and_running() {
        // Drive the engine open-loop: run to idle, then submit more.
        let g = Arc::new(benchmarks::jpeg());
        let mut policy = FirstCandidatePolicy;
        let mut engine = Engine::new(&ManagerConfig::paper_default());
        engine.submit(JobSpec::new(Arc::clone(&g)));
        engine.run(&mut policy);
        assert!(engine.is_idle());
        assert_eq!(engine.completed_jobs(), 1);
        let t = engine.now();
        assert_eq!(t, SimTime::from_ms(83));
        // Submit a job arriving strictly later than "now".
        engine.submit(JobSpec::new(g).with_arrival(t + ms(17)));
        engine.run(&mut policy);
        assert_eq!(engine.completed_jobs(), 2);
        let out = engine.finish().expect("both jobs completed");
        assert_eq!(out.stats.reuses, 4);
        assert_eq!(out.stats.makespan, ms(100 + 79));
    }

    #[test]
    #[should_panic(expected = "simulated past")]
    fn submitting_into_the_past_panics() {
        let g = Arc::new(benchmarks::jpeg());
        let mut engine = Engine::new(&ManagerConfig::paper_default());
        engine.submit(JobSpec::new(Arc::clone(&g)));
        engine.run(&mut FirstCandidatePolicy);
        // now == 83 ms; an arrival at 5 ms is in the past.
        engine.submit(JobSpec::new(g).with_arrival(SimTime::from_ms(5)));
    }

    #[test]
    fn simultaneous_arrivals_activate_in_submission_order() {
        let jobs = vec![
            JobSpec::new(Arc::new(benchmarks::jpeg())).with_arrival(SimTime::from_ms(30)),
            JobSpec::new(Arc::new(benchmarks::mpeg1())).with_arrival(SimTime::from_ms(30)),
        ];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        let starts: Vec<u32> = out
            .trace
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::GraphStart { job, .. } => Some(job),
                _ => None,
            })
            .collect();
        assert_eq!(starts, vec![0, 1]);
        // Nothing can run before the shared arrival instant.
        assert!(out.stats.makespan >= ms(30 + 83));
    }

    #[test]
    fn streaming_trace_records_arrivals() {
        let jobs =
            vec![JobSpec::new(Arc::new(benchmarks::jpeg())).with_arrival(SimTime::from_ms(7))];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        let arrivals: Vec<(u32, SimTime)> = out
            .trace
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::JobArrival { job, at } => Some((job, at)),
                _ => None,
            })
            .collect();
        assert_eq!(arrivals, vec![(0, SimTime::from_ms(7))]);
    }
}
