//! The event-triggered execution manager (the paper's Fig. 4) with the
//! replacement-module protocol (Fig. 8), generalised into a streaming
//! [`Engine`] that consumes jobs from an online arrival queue.
//!
//! This file is the thin orchestrator: the public [`Engine`] /
//! [`simulate`] surface, submission, the event-drain loop and run
//! finalisation. The event semantics live in the focused submodules of
//! `crate::engine`:
//!
//! * `engine/events.rs` — the event alphabet and dispatch (Fig. 4
//!   lines 1–19);
//! * `engine/residency.rs` — reuse claims, load/execution starts, and
//!   incremental [`ReuseIndex`] maintenance;
//! * `engine/decision.rs` — the replacement module (Fig. 8): victim
//!   selection over the index and Skip Events.
//!
//! When the current graph completes and no arrived job is waiting, the
//! manager goes *idle*: resident configurations stay in place (so reuse
//! survives idle gaps) and the next `JobArrival` event resumes
//! activation.

use crate::config::ManagerConfig;
use crate::engine::{Event, ManagerState, TemplateInfo, PRIO_JOB_ARRIVAL};
use crate::ideal::ideal_sequence_makespan;
use crate::job::JobSpec;
use crate::policy::ReplacementPolicy;
use crate::reuse_index::ReuseIndex;
use crate::stats::RunStats;
use crate::trace::Trace;
use rtr_hw::{EnergyModel, ReconfigController, RuPool};
use rtr_sim::{EventQueue, SimTime};
use rtr_taskgraph::{reconfiguration_sequence, TaskGraph};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Simulation failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained before all jobs completed. With correct
    /// inputs this can only happen when a skip (run-time or forced
    /// mobility probe) waited for a "following event" that does not
    /// exist; the design-time mobility calculation treats it as an
    /// infeasible delay.
    StalledAwaitingEvent {
        /// Jobs fully completed before the stall.
        completed_jobs: usize,
        /// Time of the last processed event.
        at: SimTime,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::StalledAwaitingEvent { completed_jobs, at } => write!(
                f,
                "simulation stalled at {at} after {completed_jobs} jobs: a delayed \
                 reconfiguration waited for an event that never comes"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of [`simulate`].
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// Aggregate statistics.
    pub stats: RunStats,
    /// Full schedule trace (empty when `record_trace` is off).
    pub trace: Trace,
}

/// The streaming execution engine: an online generalisation of the
/// paper's batch simulator.
///
/// Jobs are [`submit`](Engine::submit)ted with explicit arrival times
/// and consumed as they arrive; [`run`](Engine::run) drains every
/// currently scheduled event (arrivals included), after which more jobs
/// may be submitted and `run` called again — an open-loop driver can
/// interleave submission and simulation indefinitely. The manager
/// idles (RU residency intact) whenever the online queue is empty while
/// later arrivals are still pending, and resumes on the next arrival.
///
/// **Batch equivalence:** submitting every job with `arrival == t0 = 0`
/// and draining the queue reproduces the paper's fixed-sequence
/// semantics event for event — [`simulate`] is exactly that wrapper,
/// and the golden Fig. 2/3/7 numbers are regression-tested through it.
pub struct Engine {
    m: ManagerState,
    jobs: Vec<JobSpec>,
    /// Design-time artifact cache, keyed by template identity.
    by_template: HashMap<*const TaskGraph, TemplateInfo>,
    /// Name of the policy last passed to [`Engine::run`] (for stats).
    policy_name: String,
}

impl Engine {
    /// Creates an idle engine with no jobs.
    ///
    /// # Panics
    /// Panics if `cfg.rus == 0`.
    pub fn new(cfg: &ManagerConfig) -> Self {
        assert!(cfg.rus > 0, "need at least one RU");
        Engine {
            m: ManagerState {
                pool: RuPool::new(cfg.rus),
                controller: ReconfigController::new(cfg.device.reconfig_latency),
                energy: EnergyModel::new(cfg.device.clone()),
                queue: EventQueue::new(),
                job_templates: Vec::new(),
                current: None,
                arrived: VecDeque::new(),
                reuse_index: ReuseIndex::new(),
                activation_pending: false,
                completed_jobs: 0,
                trace: Trace::default(),
                executed: 0,
                reuses: 0,
                loads: 0,
                skips: 0,
                stalls: 0,
                graph_arrivals: Vec::new(),
                graph_completions: Vec::new(),
                makespan_end: SimTime::ZERO,
                cfg: cfg.clone(),
            },
            jobs: Vec::new(),
            by_template: HashMap::new(),
            policy_name: String::new(),
        }
    }

    /// Submits a job; its arrival event fires at `job.arrival`. Returns
    /// the job's index (activation order may differ — jobs activate in
    /// arrival order).
    ///
    /// The design-time phase (reconfiguration sequence, configuration
    /// projection) runs here, once per distinct graph template.
    ///
    /// # Panics
    /// Panics if the arrival lies in the simulated past (before the
    /// time of the last processed event).
    pub fn submit(&mut self, job: JobSpec) -> usize {
        assert!(
            job.arrival >= self.m.queue.now(),
            "job arrival {} is in the simulated past (now = {})",
            job.arrival,
            self.m.queue.now()
        );
        let tpl = self
            .by_template
            .entry(Arc::as_ptr(&job.graph))
            .or_insert_with(|| {
                let rec_seq = reconfiguration_sequence(&job.graph);
                let cfg_seq = rec_seq.iter().map(|&n| job.graph.config_of(n)).collect();
                TemplateInfo {
                    rec_seq: Arc::new(rec_seq),
                    cfg_seq: Arc::new(cfg_seq),
                }
            })
            .clone();
        let idx = self.jobs.len();
        self.m.job_templates.push(tpl);
        self.m
            .queue
            .push(job.arrival, PRIO_JOB_ARRIVAL, Event::JobArrival { idx });
        self.jobs.push(job);
        idx
    }

    /// Processes events until the queue drains: every submitted job has
    /// arrived and either completed or stalled. More jobs may be
    /// submitted afterwards and `run` called again.
    ///
    /// The policy is passed per call (not stored) so the same engine
    /// can be driven by external schedulers; pass the same policy on
    /// every call for meaningful history-based decisions. `reset` is
    /// *not* invoked — callers owning the full run (like [`simulate`])
    /// reset the policy themselves.
    pub fn run(&mut self, policy: &mut dyn ReplacementPolicy) {
        self.policy_name = policy.name();
        while let Some(ev) = self.m.queue.pop() {
            self.m.makespan_end = ev.time;
            self.m.handle(ev.payload, ev.time, &self.jobs, policy);
        }
    }

    /// The simulation clock: time of the last processed event.
    pub fn now(&self) -> SimTime {
        self.m.queue.now()
    }

    /// Number of jobs submitted so far.
    pub fn submitted_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Number of jobs that ran to completion so far.
    pub fn completed_jobs(&self) -> usize {
        self.m.completed_jobs
    }

    /// True when no graph is active and no events (arrivals included)
    /// are pending.
    pub fn is_idle(&self) -> bool {
        self.m.current.is_none() && self.m.queue.is_empty()
    }

    /// The engine's shared next-occurrence index over `[current job] +
    /// arrived backlog` — exposed read-only for diagnostics and
    /// benches.
    pub fn reuse_index(&self) -> &ReuseIndex {
        &self.m.reuse_index
    }

    /// Finalises the run into stats + trace.
    ///
    /// Returns [`SimError::StalledAwaitingEvent`] when some submitted
    /// job did not complete (a delayed reconfiguration waited for an
    /// event that never came).
    pub fn finish(self) -> Result<SimulationOutcome, SimError> {
        if self.m.completed_jobs != self.jobs.len() {
            return Err(SimError::StalledAwaitingEvent {
                completed_jobs: self.m.completed_jobs,
                at: self.m.makespan_end,
            });
        }
        let stats = RunStats {
            policy: self.policy_name,
            makespan: self.m.makespan_end.since(SimTime::ZERO),
            executed: self.m.executed,
            reuses: self.m.reuses,
            loads: self.m.loads,
            skips: self.m.skips,
            stalls: self.m.stalls,
            traffic: self.m.energy.stats(),
            graph_arrivals: self.m.graph_arrivals,
            graph_completions: self.m.graph_completions,
            ideal_makespan: ideal_sequence_makespan(&self.jobs, self.m.cfg.rus),
            reconfig_latency: self.m.cfg.device.reconfig_latency,
        };
        Ok(SimulationOutcome {
            stats,
            trace: self.m.trace,
        })
    }
}

/// Runs the manager over `jobs` with the given replacement `policy`.
///
/// This is the batch entry point: every job is submitted up front to a
/// streaming [`Engine`] and the event queue is drained once. Jobs
/// carrying the default `arrival == 0` reproduce the paper's
/// fixed-sequence semantics exactly; arrival-annotated jobs stream in
/// at their own instants.
///
/// The policy's `reset` is invoked first, so policies can be reused
/// across runs. Returns an error only when a delayed reconfiguration
/// waits forever (see [`SimError`]).
pub fn simulate(
    cfg: &ManagerConfig,
    jobs: &[JobSpec],
    policy: &mut dyn ReplacementPolicy,
) -> Result<SimulationOutcome, SimError> {
    policy.reset();
    let mut engine = Engine::new(cfg);
    for job in jobs {
        engine.submit(job.clone());
    }
    engine.run(policy);
    engine.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FirstCandidatePolicy;
    use crate::trace::TraceEvent;
    use rtr_sim::SimDuration;
    use rtr_taskgraph::{benchmarks, ConfigId};

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_ms(x)
    }

    fn run(cfg: &ManagerConfig, jobs: &[JobSpec]) -> SimulationOutcome {
        simulate(cfg, jobs, &mut FirstCandidatePolicy).expect("simulation completes")
    }

    #[test]
    fn empty_sequence_completes_immediately() {
        let out = run(&ManagerConfig::paper_default(), &[]);
        assert_eq!(out.stats.makespan, SimDuration::ZERO);
        assert_eq!(out.stats.executed, 0);
        // Derived metrics of the zero-job run are finite zeros, not NaN.
        assert_eq!(out.stats.reuse_rate_pct(), 0.0);
        assert_eq!(out.stats.remaining_overhead_pct(), 0.0);
        assert_eq!(out.stats.mean_sojourn_ms(), 0.0);
    }

    #[test]
    fn single_chain_graph_schedule() {
        // JPEG on 4 RUs: loads pipeline behind the 21 ms VLD execution;
        // only the initial 4 ms load is exposed. Makespan = 79 + 4.
        let jobs = vec![JobSpec::new(Arc::new(benchmarks::jpeg()))];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        assert_eq!(out.stats.makespan, ms(83));
        assert_eq!(out.stats.executed, 4);
        assert_eq!(out.stats.loads, 4);
        assert_eq!(out.stats.reuses, 0);
        assert_eq!(out.stats.total_overhead(), ms(4));
    }

    #[test]
    fn repeated_graph_reuses_everything_with_enough_rus() {
        let g = Arc::new(benchmarks::jpeg());
        let jobs = vec![JobSpec::new(Arc::clone(&g)), JobSpec::new(g)];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        // Second instance reuses all 4 configurations.
        assert_eq!(out.stats.reuses, 4);
        assert_eq!(out.stats.loads, 4);
        assert_eq!(out.stats.makespan, ms(83 + 79));
        assert!((out.stats.reuse_rate_pct() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn reuse_disabled_reloads_everything() {
        let g = Arc::new(benchmarks::jpeg());
        let jobs = vec![JobSpec::new(Arc::clone(&g)), JobSpec::new(g)];
        let cfg = ManagerConfig::paper_default().with_reuse(false);
        let out = run(&cfg, &jobs);
        assert_eq!(out.stats.reuses, 0);
        assert_eq!(out.stats.loads, 8);
        // Both instances pay the initial exposed load.
        assert_eq!(out.stats.makespan, ms(83 + 83));
    }

    #[test]
    fn graphs_execute_sequentially() {
        let jobs = vec![
            JobSpec::new(Arc::new(benchmarks::jpeg())),
            JobSpec::new(Arc::new(benchmarks::mpeg1())),
        ];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        // First exec of job 1 must not precede last exec end of job 0.
        let mut first_exec_job1 = None;
        let mut last_end_job0 = None;
        for ev in out.trace.iter() {
            match *ev {
                TraceEvent::ExecStart { job: 1, at, .. } => {
                    first_exec_job1.get_or_insert(at);
                }
                TraceEvent::ExecEnd { job: 0, at, .. } => last_end_job0 = Some(at),
                _ => {}
            }
        }
        assert!(first_exec_job1.unwrap() >= last_end_job0.unwrap());
    }

    #[test]
    fn single_ru_serialises_with_replacement() {
        // MPEG-1 on one RU: every task must evict its predecessor.
        let jobs = vec![JobSpec::new(Arc::new(benchmarks::mpeg1()))];
        let cfg = ManagerConfig::paper_default().with_rus(1);
        let out = run(&cfg, &jobs);
        assert_eq!(out.stats.executed, 5);
        assert_eq!(out.stats.loads, 5);
        // Fully serial: each task pays its load latency then runs.
        assert_eq!(
            out.stats.makespan,
            ms(5 * 4) + benchmarks::mpeg1().total_exec_time()
        );
    }

    #[test]
    fn stall_retries_until_candidate_appears() {
        // Two RUs, a graph with three parallel sources and one sink:
        // the third source cannot load until a source finishes.
        let mut b = rtr_taskgraph::TaskGraphBuilder::new("wide");
        let a = b.node("a", ConfigId(1), ms(10));
        let c = b.node("b", ConfigId(2), ms(10));
        let d = b.node("c", ConfigId(3), ms(10));
        let e = b.node("d", ConfigId(4), ms(5));
        b.edge(a, e).edge(c, e).edge(d, e);
        let g = Arc::new(b.build().unwrap());
        let cfg = ManagerConfig::paper_default().with_rus(2);
        let out = run(&cfg, &[JobSpec::new(g)]);
        assert_eq!(out.stats.executed, 4);
        assert!(out.stats.stalls > 0, "expected stalled load attempts");
    }

    #[test]
    fn forced_delay_shifts_schedule() {
        // Fig. 7b: delaying T5 of Fig3-TG2 by one event gives 36 ms.
        let g = Arc::new(benchmarks::fig3_tg2());
        let job = JobSpec::new(Arc::clone(&g)).with_forced_delays(Arc::new(vec![0, 1, 0, 0]));
        let out = run(&ManagerConfig::paper_default(), &[job]);
        assert_eq!(out.stats.makespan, ms(36));
        assert_eq!(out.stats.skips, 1);
    }

    #[test]
    fn infeasible_forced_delay_errors() {
        // Delaying the only task of a single-node graph: there is never
        // a "following event".
        let mut b = rtr_taskgraph::TaskGraphBuilder::new("solo");
        b.node("t", ConfigId(1), ms(5));
        let g = Arc::new(b.build().unwrap());
        let job = JobSpec::new(g).with_forced_delays(Arc::new(vec![1]));
        let err = simulate(
            &ManagerConfig::paper_default(),
            &[job],
            &mut FirstCandidatePolicy,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::StalledAwaitingEvent { .. }));
    }

    #[test]
    fn energy_accounting_tracks_loads_and_reuses() {
        let g = Arc::new(benchmarks::jpeg());
        let jobs = vec![JobSpec::new(Arc::clone(&g)), JobSpec::new(g)];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        assert_eq!(out.stats.traffic.loads, 4);
        assert_eq!(out.stats.traffic.reuses, 4);
        assert_eq!(
            out.stats.traffic.bytes_moved,
            4 * ManagerConfig::paper_default().device.bitstream_bytes
        );
    }

    #[test]
    fn trace_recording_can_be_disabled() {
        let jobs = vec![JobSpec::new(Arc::new(benchmarks::jpeg()))];
        let cfg = ManagerConfig::paper_default().with_trace(false);
        let out = run(&cfg, &jobs);
        assert!(out.trace.is_empty());
        assert_eq!(out.stats.executed, 4);
    }

    #[test]
    fn late_arrival_idles_then_resumes() {
        // One JPEG at t = 0 (makespan 83 ms solo), a second arriving at
        // 200 ms: the manager idles in between, and residency survives
        // the gap, so the second instance reuses all 4 configurations
        // and finishes at 200 + 79 ms.
        let g = Arc::new(benchmarks::jpeg());
        let jobs = vec![
            JobSpec::new(Arc::clone(&g)),
            JobSpec::new(g).with_arrival(SimTime::from_ms(200)),
        ];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        assert_eq!(out.stats.reuses, 4, "residency survives the idle gap");
        assert_eq!(out.stats.makespan, ms(200 + 79));
        // The idle gap absorbs job 0's exposed initial load (it ends at
        // 83 ms, well before job 1 arrives), so no overhead is visible.
        assert_eq!(out.stats.total_overhead(), ms(0));
        assert_eq!(
            out.stats.graph_arrivals,
            vec![SimTime::ZERO, SimTime::from_ms(200)]
        );
    }

    #[test]
    fn activation_follows_arrival_order_not_submission_order() {
        // Job 1 arrives before job 0: it must run first.
        let jobs = vec![
            JobSpec::new(Arc::new(benchmarks::jpeg())).with_arrival(SimTime::from_ms(50)),
            JobSpec::new(Arc::new(benchmarks::mpeg1())).with_arrival(SimTime::from_ms(10)),
        ];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        let starts: Vec<u32> = out
            .trace
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::GraphStart { job, .. } => Some(job),
                _ => None,
            })
            .collect();
        assert_eq!(starts, vec![1, 0]);
    }

    #[test]
    fn engine_interleaves_submission_and_running() {
        // Drive the engine open-loop: run to idle, then submit more.
        let g = Arc::new(benchmarks::jpeg());
        let mut policy = FirstCandidatePolicy;
        let mut engine = Engine::new(&ManagerConfig::paper_default());
        engine.submit(JobSpec::new(Arc::clone(&g)));
        engine.run(&mut policy);
        assert!(engine.is_idle());
        assert_eq!(engine.completed_jobs(), 1);
        let t = engine.now();
        assert_eq!(t, SimTime::from_ms(83));
        // Submit a job arriving strictly later than "now".
        engine.submit(JobSpec::new(g).with_arrival(t + ms(17)));
        engine.run(&mut policy);
        assert_eq!(engine.completed_jobs(), 2);
        let out = engine.finish().expect("both jobs completed");
        assert_eq!(out.stats.reuses, 4);
        assert_eq!(out.stats.makespan, ms(100 + 79));
    }

    #[test]
    #[should_panic(expected = "simulated past")]
    fn submitting_into_the_past_panics() {
        let g = Arc::new(benchmarks::jpeg());
        let mut engine = Engine::new(&ManagerConfig::paper_default());
        engine.submit(JobSpec::new(Arc::clone(&g)));
        engine.run(&mut FirstCandidatePolicy);
        // now == 83 ms; an arrival at 5 ms is in the past.
        engine.submit(JobSpec::new(g).with_arrival(SimTime::from_ms(5)));
    }

    #[test]
    fn simultaneous_arrivals_activate_in_submission_order() {
        let jobs = vec![
            JobSpec::new(Arc::new(benchmarks::jpeg())).with_arrival(SimTime::from_ms(30)),
            JobSpec::new(Arc::new(benchmarks::mpeg1())).with_arrival(SimTime::from_ms(30)),
        ];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        let starts: Vec<u32> = out
            .trace
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::GraphStart { job, .. } => Some(job),
                _ => None,
            })
            .collect();
        assert_eq!(starts, vec![0, 1]);
        // Nothing can run before the shared arrival instant.
        assert!(out.stats.makespan >= ms(30 + 83));
    }

    #[test]
    fn streaming_trace_records_arrivals() {
        let jobs =
            vec![JobSpec::new(Arc::new(benchmarks::jpeg())).with_arrival(SimTime::from_ms(7))];
        let out = run(&ManagerConfig::paper_default(), &jobs);
        let arrivals: Vec<(u32, SimTime)> = out
            .trace
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::JobArrival { job, at } => Some((job, at)),
                _ => None,
            })
            .collect();
        assert_eq!(arrivals, vec![(0, SimTime::from_ms(7))]);
    }

    #[test]
    fn reuse_index_tracks_backlog_and_drains() {
        // Two jobs at t = 0: while job 0 runs, the index holds job 0 +
        // the backlog job 1; after the run everything retired.
        let g = Arc::new(benchmarks::jpeg());
        let mut engine = Engine::new(&ManagerConfig::paper_default());
        engine.submit(JobSpec::new(Arc::clone(&g)));
        engine.submit(JobSpec::new(g));
        assert!(engine.reuse_index().is_empty(), "indexed on arrival");
        engine.run(&mut FirstCandidatePolicy);
        assert!(engine.reuse_index().is_empty(), "retired on completion");
        assert_eq!(engine.completed_jobs(), 2);
    }
}
