//! The external task-graph execution manager (the paper's ref.&nbsp;9) and
//! the run-time replacement-module protocol (the paper's Figs. 4 and 8).
//!
//! The manager executes task graphs on a pool of reconfigurable units,
//! consuming jobs from an online arrival queue through the streaming
//! [`manager::Engine`] ([`simulate`] is its batch wrapper: every job
//! arrives at t = 0, reproducing the paper's fixed FIFO sequence). It
//! is *event triggered*: all scheduling actions happen at
//! `job_arrival`, `new_task_graph`, `end_of_reconfiguration` /
//! `reused_task` or `end_of_execution` events. Semantics (validated
//! against the paper's Figs. 2, 3 and 7 — see `DESIGN.md` §2):
//!
//! * Graphs execute strictly sequentially in arrival order; a graph's
//!   reconfigurations start when it becomes current. When no arrived
//!   job is waiting the manager idles with RU residency intact and
//!   resumes on the next arrival.
//! * Within the current graph, tasks load ASAP through the single
//!   reconfiguration port in the design-time *reconfiguration sequence*
//!   order (prefetch).
//! * A task whose configuration is already resident and unclaimed is
//!   *reused* — claimed with zero latency and zero energy.
//! * When every RU is occupied, the replacement module picks a victim
//!   among the RUs whose tasks finished executing. With *Skip Events*
//!   enabled, a reconfiguration whose selected victim will be reused
//!   within the visible future is delayed to the next event while the
//!   task's design-time *mobility* budget allows.
//!
//! The crate also provides the [`policy::ReplacementPolicy`] trait the
//! actual policies (in `rtr-core`) implement, a full schedule
//! [`trace::Trace`] with an invariant [`validate`] pass,
//! per-run [`stats`](stats::RunStats), and the zero-latency
//! [`ideal`] baseline used to express overheads the way the paper
//! does.

pub mod config;
pub(crate) mod engine;
pub mod fleet;
pub mod ideal;
pub mod job;
pub mod manager;
pub mod policy;
pub mod qos;
pub mod reuse_index;
pub mod stats;
pub mod trace;
pub mod validate;

pub use config::{FaultPlan, Lookahead, ManagerConfig, PrefetchConfig};
pub use engine::warm::WarmStats;
pub use fleet::{
    simulate_fleet, Fleet, FleetConfig, FleetError, FleetOutcome, FleetSpec, FleetStats,
    PlacementKind, PlacementPolicy, TenantStats,
};
pub use job::{JobSpec, TenantId};
pub use manager::{simulate, Engine, SimError, SimulationOutcome};
pub use policy::{
    DecisionContext, FirstCandidatePolicy, FutureView, ReplacementPolicy, VictimCandidate,
    NO_DEADLINE,
};
pub use qos::{PreemptionMode, QosClass};
pub use reuse_index::{ReuseIndex, ReuseWindow};
pub use stats::{ClassSojournStats, FaultStats, PrefetchStats, QosStats, RunStats};
pub use trace::{FaultKind, Trace, TraceCounts, TraceEvent};
pub use validate::{
    CheckContext, CheckOutput, Checker, CheckerOutcome, CheckerRegistry, RegistryReport, Violation,
};
