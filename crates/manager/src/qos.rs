//! Quality-of-service classes and the preemption policy knob.
//!
//! A [`QosClass`] attaches a scheduling priority and an optional
//! absolute deadline to a job. Priorities order the backlog into lanes
//! (higher first; equal priorities keep strict arrival order, which is
//! exactly the pre-QoS FIFO), and deadlines feed the slack computation
//! of the deadline-aware replacement path
//! (`DecisionContext::candidate_slack`).
//!
//! [`PreemptionMode`] gates the engine's preemption machinery. `Off`
//! (the default) takes the exact pre-QoS code path and is asserted
//! bit-exact against the golden figure/table runs; `Kill` and
//! `Checkpoint` allow a strictly-higher-priority arrival to suspend the
//! running graph, differing only in what happens to its in-flight
//! tasks (replay from scratch vs. resume the remaining work plus a
//! restore penalty of one reconfiguration latency).
//!
//! Both types deserialize from JSON `null` (and therefore from an
//! *absent* field) as their defaults, so pre-QoS scenario files keep
//! loading unchanged.

use rtr_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Scheduling class of one job: lane priority plus an optional
/// absolute completion deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QosClass {
    /// Lane priority: higher values outrank lower ones. The default
    /// class is priority 0, so a workload that never mentions QoS
    /// degenerates to one FIFO lane.
    pub priority: u8,
    /// Absolute deadline for the job's completion, if any. Missing the
    /// deadline is recorded (`deadline_misses`, `tardiness_total`), not
    /// enforced — jobs always run to completion.
    pub deadline: Option<SimTime>,
}

impl QosClass {
    /// The default best-effort class: priority 0, no deadline.
    pub const BEST_EFFORT: QosClass = QosClass {
        priority: 0,
        deadline: None,
    };

    /// A class with the given priority and no deadline.
    pub fn priority(priority: u8) -> Self {
        QosClass {
            priority,
            deadline: None,
        }
    }

    /// Builder-style deadline attachment.
    pub fn with_deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// True when this is the default best-effort class.
    pub fn is_default(&self) -> bool {
        *self == QosClass::BEST_EFFORT
    }
}

impl Default for QosClass {
    fn default() -> Self {
        QosClass::BEST_EFFORT
    }
}

impl Serialize for QosClass {
    fn serialize(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("priority".to_string(), Serialize::serialize(&self.priority));
        m.insert("deadline".to_string(), Serialize::serialize(&self.deadline));
        serde::Value::Object(m)
    }
}

impl Deserialize for QosClass {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        // `null` (and an absent field, which the shim reads as `null`)
        // is the default class — pre-QoS files stay loadable.
        if matches!(v, serde::Value::Null) {
            return Ok(QosClass::default());
        }
        let m = serde::as_object(v)?;
        Ok(QosClass {
            priority: serde::field(m, "priority")?,
            deadline: serde::field(m, "deadline")?,
        })
    }
}

/// What the engine may do to the running graph when a
/// strictly-higher-priority job arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PreemptionMode {
    /// No preemption: arrivals wait for the running graph, exactly the
    /// pre-QoS engine (bit-exact, asserted by the golden paths).
    #[default]
    Off,
    /// In-flight tasks of the preempted graph are killed: the work done
    /// so far is lost (`lost_work_cycles`) and each killed node is
    /// replayed from scratch when its graph resumes.
    Kill,
    /// In-flight tasks are checkpointed: the remaining execution time
    /// is preserved, and resuming a checkpointed node pays a restore
    /// penalty of one reconfiguration latency on top of the remainder.
    Checkpoint,
}

impl PreemptionMode {
    /// All modes, in sweep order.
    pub const ALL: [PreemptionMode; 3] = [
        PreemptionMode::Off,
        PreemptionMode::Kill,
        PreemptionMode::Checkpoint,
    ];

    /// Stable lowercase label (CSV column / CLI value).
    pub fn label(&self) -> &'static str {
        match self {
            PreemptionMode::Off => "off",
            PreemptionMode::Kill => "kill",
            PreemptionMode::Checkpoint => "checkpoint",
        }
    }

    /// True when arrivals may suspend the running graph.
    pub fn enabled(&self) -> bool {
        !matches!(self, PreemptionMode::Off)
    }
}

impl Serialize for PreemptionMode {
    fn serialize(&self) -> serde::Value {
        serde::Value::String(self.label().to_string())
    }
}

impl Deserialize for PreemptionMode {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            // Absent fields arrive as `null`: default to `Off` so
            // pre-QoS configuration files keep loading.
            serde::Value::Null => Ok(PreemptionMode::Off),
            serde::Value::String(s) => match s.as_str() {
                "off" | "Off" => Ok(PreemptionMode::Off),
                "kill" | "Kill" => Ok(PreemptionMode::Kill),
                "checkpoint" | "Checkpoint" => Ok(PreemptionMode::Checkpoint),
                other => Err(serde::Error::msg(format!(
                    "unknown PreemptionMode `{other}`"
                ))),
            },
            other => Err(serde::Error::expected("preemption mode string", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_class_is_best_effort() {
        let q = QosClass::default();
        assert_eq!(q.priority, 0);
        assert_eq!(q.deadline, None);
        assert!(q.is_default());
        assert!(!QosClass::priority(3).is_default());
        assert!(!QosClass::BEST_EFFORT
            .with_deadline(SimTime::from_ms(5))
            .is_default());
    }

    #[test]
    fn qos_round_trips_and_defaults_from_null() {
        let q = QosClass::priority(2).with_deadline(SimTime::from_ms(120));
        let back = QosClass::deserialize(&q.serialize()).unwrap();
        assert_eq!(back, q);
        // Absent / null → default class (backward compatibility).
        let legacy = QosClass::deserialize(&serde::Value::Null).unwrap();
        assert_eq!(legacy, QosClass::default());
    }

    #[test]
    fn preemption_mode_round_trips_and_defaults_from_null() {
        for mode in PreemptionMode::ALL {
            let back = PreemptionMode::deserialize(&mode.serialize()).unwrap();
            assert_eq!(back, mode);
        }
        let legacy = PreemptionMode::deserialize(&serde::Value::Null).unwrap();
        assert_eq!(legacy, PreemptionMode::Off);
        assert!(PreemptionMode::deserialize(&serde::Value::String("frob".into())).is_err());
        assert!(!PreemptionMode::Off.enabled());
        assert!(PreemptionMode::Kill.enabled());
        assert!(PreemptionMode::Checkpoint.enabled());
    }
}
