//! Schedule traces.
//!
//! Every simulation can record the complete schedule as a sequence of
//! [`TraceEvent`]s. Traces serve three purposes: the golden tests
//! compare them against the paper's figures, the
//! [`validate`](crate::validate) pass checks system invariants on them
//! (used heavily by property tests), and they render as ASCII Gantt
//! charts in the example binaries.

use rtr_hw::RuId;
use rtr_sim::gantt::GanttChart;
use rtr_sim::SimTime;
use rtr_taskgraph::{ConfigId, NodeId};
use serde::{Deserialize, Serialize};

/// Which hardware fault class a [`TraceEvent::FaultInject`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A demand or speculative reconfiguration completed corrupt
    /// (checksum mismatch) and enters the retry/backoff path.
    TransientLoad,
    /// An SEU silently invalidated a resident, unclaimed bitstream; it
    /// stops counting as reusable until the RU is rewritten.
    Upset,
    /// A reconfigurable unit hard-faulted and is quarantined out of
    /// the pool.
    RuHard,
}

impl FaultKind {
    /// Stable label (checker reports, coverage CSV).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::TransientLoad => "transient-load",
            FaultKind::Upset => "upset",
            FaultKind::RuHard => "ru-hard",
        }
    }
}

/// One schedule event. `job` is the index of the application instance
/// in the submitted sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Task graph `job` entered the manager's online queue.
    JobArrival {
        /// Application index.
        job: u32,
        /// Event time.
        at: SimTime,
    },
    /// Task graph `job` became the current graph.
    GraphStart {
        /// Application index.
        job: u32,
        /// Event time.
        at: SimTime,
    },
    /// Task graph `job` finished all executions.
    GraphEnd {
        /// Application index.
        job: u32,
        /// Event time.
        at: SimTime,
    },
    /// A reconfiguration started (evicting whatever was resident).
    LoadStart {
        /// Application index.
        job: u32,
        /// Node within the graph.
        node: NodeId,
        /// Configuration being written.
        config: ConfigId,
        /// Destination RU.
        ru: RuId,
        /// Event time.
        at: SimTime,
    },
    /// A reconfiguration completed.
    LoadEnd {
        /// Application index.
        job: u32,
        /// Node within the graph.
        node: NodeId,
        /// Configuration written.
        config: ConfigId,
        /// Destination RU.
        ru: RuId,
        /// Event time.
        at: SimTime,
    },
    /// A resident configuration was claimed without reconfiguration.
    Reuse {
        /// Application index.
        job: u32,
        /// Node within the graph.
        node: NodeId,
        /// Reused configuration.
        config: ConfigId,
        /// RU holding it.
        ru: RuId,
        /// Event time.
        at: SimTime,
    },
    /// A task started executing.
    ExecStart {
        /// Application index.
        job: u32,
        /// Node within the graph.
        node: NodeId,
        /// Its configuration.
        config: ConfigId,
        /// RU executing it.
        ru: RuId,
        /// Event time.
        at: SimTime,
    },
    /// A task finished executing.
    ExecEnd {
        /// Application index.
        job: u32,
        /// Node within the graph.
        node: NodeId,
        /// Its configuration.
        config: ConfigId,
        /// RU that executed it.
        ru: RuId,
        /// Event time.
        at: SimTime,
    },
    /// The replacement module delayed a reconfiguration to the next
    /// event (`forced` marks design-time mobility probes rather than
    /// run-time Skip Events).
    Skip {
        /// Application index.
        job: u32,
        /// Node whose load was delayed.
        node: NodeId,
        /// Whether this was a forced (mobility-calculation) delay.
        forced: bool,
        /// Event time.
        at: SimTime,
    },
    /// A load attempt found no eviction candidate and will retry at the
    /// next event.
    Stall {
        /// Application index.
        job: u32,
        /// Node whose load is waiting.
        node: NodeId,
        /// Event time.
        at: SimTime,
    },
    /// A speculative (prefetch) reconfiguration started on the idle
    /// port. Speculative loads belong to a *configuration*, not a
    /// placed task — the demand path later claims the resident
    /// configuration through the ordinary reuse path.
    PrefetchStart {
        /// Configuration being written ahead of demand.
        config: ConfigId,
        /// Destination RU.
        ru: RuId,
        /// Event time.
        at: SimTime,
    },
    /// A speculative reconfiguration completed; the configuration is
    /// resident and unclaimed (a reuse / eviction candidate).
    PrefetchEnd {
        /// Configuration written.
        config: ConfigId,
        /// Destination RU.
        ru: RuId,
        /// Event time.
        at: SimTime,
    },
    /// An in-flight speculative reconfiguration was aborted because a
    /// demand load needed the port; the target RU is empty again.
    PrefetchCancel {
        /// Configuration whose write was aborted.
        config: ConfigId,
        /// The RU whose partial write was discarded.
        ru: RuId,
        /// Event time.
        at: SimTime,
    },
    /// A strictly-higher-priority arrival suspended the running graph
    /// (`PreemptionMode::{Kill, Checkpoint}`). Per-node consequences
    /// follow as [`TraceEvent::NodeKilled`] /
    /// [`TraceEvent::NodeCheckpointed`] events at the same instant.
    Preempt {
        /// The suspended (running) graph.
        victim: u32,
        /// The arriving graph that takes over.
        preemptor: u32,
        /// Event time.
        at: SimTime,
    },
    /// An in-flight task was killed by a preemption: the work done so
    /// far is lost and the node replays from scratch when its graph
    /// resumes.
    NodeKilled {
        /// Application index of the suspended graph.
        job: u32,
        /// The killed node.
        node: NodeId,
        /// The RU it was executing on.
        ru: RuId,
        /// Event time.
        at: SimTime,
    },
    /// An in-flight task was checkpointed by a preemption: its
    /// remaining execution time is preserved and resumed later (plus a
    /// restore penalty of one reconfiguration latency).
    NodeCheckpointed {
        /// Application index of the suspended graph.
        job: u32,
        /// The checkpointed node.
        node: NodeId,
        /// The RU it was executing on.
        ru: RuId,
        /// Event time.
        at: SimTime,
    },
    /// A previously suspended graph became the current graph again.
    GraphResume {
        /// Application index.
        job: u32,
        /// Event time.
        at: SimTime,
    },
    /// The fault plan injected a hardware fault.
    FaultInject {
        /// Fault class.
        kind: FaultKind,
        /// Affected RU.
        ru: RuId,
        /// Affected configuration, when one was involved (the corrupt
        /// load target, the upset resident, or the hard-faulted unit's
        /// resident; `None` for a hard fault on an empty unit).
        config: Option<ConfigId>,
        /// Event time.
        at: SimTime,
    },
    /// A corrupt reconfiguration is being retried after exponential
    /// backoff; the rewrite occupies the port over
    /// `[until - latency, until]`.
    FaultRetry {
        /// RU being rewritten.
        ru: RuId,
        /// Configuration being rewritten.
        config: ConfigId,
        /// Retry attempt number (1-based).
        attempt: u8,
        /// When the retried write completes.
        until: SimTime,
        /// Event time.
        at: SimTime,
    },
    /// A corrupt reconfiguration exhausted its retry budget; the load
    /// is abandoned and the unit condemned (a [`TraceEvent::RuQuarantine`]
    /// follows at the same instant).
    FaultGiveUp {
        /// RU whose load was abandoned.
        ru: RuId,
        /// Configuration that failed to load.
        config: ConfigId,
        /// Total attempts made (initial load + retries).
        attempts: u8,
        /// Event time.
        at: SimTime,
    },
    /// An RU left the pool (hard fault or retry exhaustion); no
    /// placement, claim, or prefetch may target it until it heals.
    RuQuarantine {
        /// Quarantined RU.
        ru: RuId,
        /// Event time.
        at: SimTime,
    },
    /// A quarantined RU finished its repair and rejoined the pool
    /// empty.
    RuHeal {
        /// Healed RU.
        ru: RuId,
        /// Event time.
        at: SimTime,
    },
}

impl TraceEvent {
    /// The event kind as a stable label (checker reports, fault
    /// descriptions).
    pub fn kind_name(&self) -> &'static str {
        match self {
            TraceEvent::JobArrival { .. } => "JobArrival",
            TraceEvent::GraphStart { .. } => "GraphStart",
            TraceEvent::GraphEnd { .. } => "GraphEnd",
            TraceEvent::LoadStart { .. } => "LoadStart",
            TraceEvent::LoadEnd { .. } => "LoadEnd",
            TraceEvent::Reuse { .. } => "Reuse",
            TraceEvent::ExecStart { .. } => "ExecStart",
            TraceEvent::ExecEnd { .. } => "ExecEnd",
            TraceEvent::Skip { .. } => "Skip",
            TraceEvent::Stall { .. } => "Stall",
            TraceEvent::PrefetchStart { .. } => "PrefetchStart",
            TraceEvent::PrefetchEnd { .. } => "PrefetchEnd",
            TraceEvent::PrefetchCancel { .. } => "PrefetchCancel",
            TraceEvent::Preempt { .. } => "Preempt",
            TraceEvent::NodeKilled { .. } => "NodeKilled",
            TraceEvent::NodeCheckpointed { .. } => "NodeCheckpointed",
            TraceEvent::GraphResume { .. } => "GraphResume",
            TraceEvent::FaultInject { .. } => "FaultInject",
            TraceEvent::FaultRetry { .. } => "FaultRetry",
            TraceEvent::FaultGiveUp { .. } => "FaultGiveUp",
            TraceEvent::RuQuarantine { .. } => "RuQuarantine",
            TraceEvent::RuHeal { .. } => "RuHeal",
        }
    }

    /// Event timestamp.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::JobArrival { at, .. }
            | TraceEvent::GraphStart { at, .. }
            | TraceEvent::GraphEnd { at, .. }
            | TraceEvent::LoadStart { at, .. }
            | TraceEvent::LoadEnd { at, .. }
            | TraceEvent::Reuse { at, .. }
            | TraceEvent::ExecStart { at, .. }
            | TraceEvent::ExecEnd { at, .. }
            | TraceEvent::Skip { at, .. }
            | TraceEvent::Stall { at, .. }
            | TraceEvent::PrefetchStart { at, .. }
            | TraceEvent::PrefetchEnd { at, .. }
            | TraceEvent::PrefetchCancel { at, .. }
            | TraceEvent::Preempt { at, .. }
            | TraceEvent::NodeKilled { at, .. }
            | TraceEvent::NodeCheckpointed { at, .. }
            | TraceEvent::GraphResume { at, .. }
            | TraceEvent::FaultInject { at, .. }
            | TraceEvent::FaultRetry { at, .. }
            | TraceEvent::FaultGiveUp { at, .. }
            | TraceEvent::RuQuarantine { at, .. }
            | TraceEvent::RuHeal { at, .. } => at,
        }
    }
}

/// Event-kind totals of one trace, including the hit/waste attribution
/// of speculative loads (a completed prefetch later claimed by the
/// demand path is a *hit*; one overwritten before any claim is
/// *wasted*). The single source of truth the `counter-equality` and
/// `prefetch-accounting` checkers compare [`RunStats`] counters
/// against.
///
/// [`RunStats`]: crate::stats::RunStats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounts {
    /// Demand reconfigurations started.
    pub loads: u64,
    /// Resident configurations claimed without reconfiguration.
    pub reuses: u64,
    /// Task executions completed.
    pub executed: u64,
    /// Reconfigurations delayed by Skip Events (forced or run-time).
    pub skips: u64,
    /// Load attempts that found no eviction candidate and retried.
    pub stalls: u64,
    /// Speculative loads started on the idle port.
    pub prefetch_issued: u64,
    /// Speculative loads that ran to completion.
    pub prefetch_completed: u64,
    /// Speculative loads aborted by a demand load.
    pub prefetch_cancelled: u64,
    /// Prefetched configurations later claimed by the demand path.
    pub prefetch_hits: u64,
    /// Prefetched configurations evicted before any use.
    pub prefetch_wasted: u64,
    /// Graph suspensions by a higher-priority arrival.
    pub preemptions: u64,
    /// In-flight tasks checkpointed at a preemption instant.
    pub checkpoints: u64,
    /// In-flight tasks killed at a preemption instant (each replays
    /// from scratch when its graph resumes).
    pub killed_nodes: u64,
    /// Suspended graphs that became current again.
    pub resumes: u64,
    /// Faults injected, all classes.
    pub fault_injected: u64,
    /// Transient load-corruption faults injected.
    pub fault_transients: u64,
    /// Resident-config upsets injected.
    pub fault_upsets: u64,
    /// RU hard faults injected.
    pub fault_ru: u64,
    /// Backoff retries of corrupt loads.
    pub fault_retries: u64,
    /// Corrupt loads abandoned after exhausting the retry budget.
    pub fault_giveups: u64,
    /// Upset residents repaired by a later rewrite of the same RU.
    pub fault_repairs: u64,
    /// RUs quarantined out of the pool.
    pub ru_quarantines: u64,
    /// Quarantined RUs that healed back into the pool.
    pub ru_heals: u64,
}

/// An ordered schedule trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Events in emission (and hence time) order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Appends an event (the manager guarantees time ordering).
    pub fn push(&mut self, ev: TraceEvent) {
        debug_assert!(
            self.events.last().is_none_or(|last| last.at() <= ev.at()),
            "trace events must be time-ordered"
        );
        self.events.push(ev);
    }

    /// Empties the trace, keeping the buffer allocation (pooled engine
    /// reset).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one kind, via a filter-map on the event slice.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Tallies event kinds in one walk, attributing prefetch hits and
    /// waste: a resident written by [`TraceEvent::PrefetchEnd`] stays
    /// "speculative" until it is claimed by a [`TraceEvent::Reuse`]
    /// (hit) or overwritten by any later load on the same RU (wasted).
    pub fn counts(&self) -> TraceCounts {
        let mut c = TraceCounts::default();
        let mut speculative: std::collections::HashSet<u16> = std::collections::HashSet::new();
        let mut corrupt: std::collections::HashSet<u16> = std::collections::HashSet::new();
        for ev in &self.events {
            match *ev {
                TraceEvent::LoadStart { ru, .. } => {
                    c.loads += 1;
                    if speculative.remove(&ru.0) {
                        c.prefetch_wasted += 1;
                    }
                    if corrupt.remove(&ru.0) {
                        c.fault_repairs += 1;
                    }
                }
                TraceEvent::Reuse { ru, .. } => {
                    c.reuses += 1;
                    if speculative.remove(&ru.0) {
                        c.prefetch_hits += 1;
                    }
                }
                TraceEvent::ExecEnd { .. } => c.executed += 1,
                TraceEvent::Skip { .. } => c.skips += 1,
                TraceEvent::Stall { .. } => c.stalls += 1,
                TraceEvent::PrefetchStart { ru, .. } => {
                    c.prefetch_issued += 1;
                    if speculative.remove(&ru.0) {
                        c.prefetch_wasted += 1;
                    }
                    if corrupt.remove(&ru.0) {
                        c.fault_repairs += 1;
                    }
                }
                TraceEvent::PrefetchEnd { ru, .. } => {
                    c.prefetch_completed += 1;
                    speculative.insert(ru.0);
                }
                TraceEvent::PrefetchCancel { .. } => c.prefetch_cancelled += 1,
                TraceEvent::Preempt { .. } => c.preemptions += 1,
                TraceEvent::NodeCheckpointed { .. } => c.checkpoints += 1,
                TraceEvent::NodeKilled { .. } => c.killed_nodes += 1,
                TraceEvent::GraphResume { .. } => c.resumes += 1,
                TraceEvent::FaultInject { kind, ru, .. } => {
                    c.fault_injected += 1;
                    match kind {
                        FaultKind::TransientLoad => c.fault_transients += 1,
                        FaultKind::Upset => {
                            c.fault_upsets += 1;
                            // An upset resident that was prefetched and
                            // never claimed can no longer become a hit;
                            // the engine writes it off as wasted at the
                            // upset instant.
                            if speculative.remove(&ru.0) {
                                c.prefetch_wasted += 1;
                            }
                            corrupt.insert(ru.0);
                        }
                        FaultKind::RuHard => c.fault_ru += 1,
                    }
                }
                TraceEvent::FaultRetry { .. } => c.fault_retries += 1,
                TraceEvent::FaultGiveUp { .. } => c.fault_giveups += 1,
                TraceEvent::RuQuarantine { ru, .. } => {
                    c.ru_quarantines += 1;
                    // Quarantine discards whatever was resident: an
                    // unclaimed prefetch is wasted, a pending upset is
                    // wiped without counting as repaired.
                    if speculative.remove(&ru.0) {
                        c.prefetch_wasted += 1;
                    }
                    corrupt.remove(&ru.0);
                }
                TraceEvent::RuHeal { .. } => c.ru_heals += 1,
                _ => {}
            }
        }
        c
    }

    /// Count of reuse events.
    pub fn reuse_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Reuse { .. }))
            .count()
    }

    /// Renders the per-RU schedule as an ASCII Gantt chart:
    /// `%` = demand reconfiguration, `s` = speculative reconfiguration
    /// (prefetch; cancelled writes paint up to the abort), `#` =
    /// execution (labelled with the node name's last char in future
    /// extensions), `.` = idle.
    pub fn to_gantt(&self, rus: usize) -> GanttChart {
        let mut chart = GanttChart::per_ms();
        for i in 0..rus {
            chart.add_row(format!("RU{}", i + 1));
        }
        // Pair up start/end events per RU.
        let mut load_start: Vec<Option<SimTime>> = vec![None; rus];
        let mut exec_start: Vec<Option<SimTime>> = vec![None; rus];
        let mut exec_cfg: Vec<u32> = vec![0; rus];
        for ev in &self.events {
            match *ev {
                TraceEvent::LoadStart { ru, at, .. } | TraceEvent::PrefetchStart { ru, at, .. } => {
                    load_start[ru.idx()] = Some(at)
                }
                TraceEvent::LoadEnd { ru, at, .. } => {
                    if let Some(s) = load_start[ru.idx()].take() {
                        chart.paint(ru.idx(), s, at, '%');
                    }
                }
                TraceEvent::PrefetchEnd { ru, at, .. }
                | TraceEvent::PrefetchCancel { ru, at, .. } => {
                    if let Some(s) = load_start[ru.idx()].take() {
                        chart.paint(ru.idx(), s, at, 's');
                    }
                }
                TraceEvent::ExecStart { ru, at, config, .. } => {
                    exec_start[ru.idx()] = Some(at);
                    exec_cfg[ru.idx()] = config.0;
                }
                TraceEvent::ExecEnd { ru, at, .. } => {
                    if let Some(s) = exec_start[ru.idx()].take() {
                        let glyph = char::from_digit(exec_cfg[ru.idx()] % 36, 36).unwrap_or('#');
                        chart.paint(ru.idx(), s, at, glyph);
                    }
                }
                // Revoked executions paint the partial run up to the
                // preemption instant.
                TraceEvent::NodeKilled { ru, at, .. }
                | TraceEvent::NodeCheckpointed { ru, at, .. } => {
                    if let Some(s) = exec_start[ru.idx()].take() {
                        let glyph = char::from_digit(exec_cfg[ru.idx()] % 36, 36).unwrap_or('#');
                        chart.paint(ru.idx(), s, at, glyph);
                    }
                }
                _ => {}
            }
        }
        chart
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_ms(ms)
    }

    #[test]
    fn push_keeps_order_and_counts() {
        let mut tr = Trace::default();
        tr.push(TraceEvent::GraphStart { job: 0, at: t(0) });
        tr.push(TraceEvent::Reuse {
            job: 0,
            node: NodeId(0),
            config: ConfigId(1),
            ru: RuId(0),
            at: t(0),
        });
        tr.push(TraceEvent::GraphEnd { job: 0, at: t(5) });
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.reuse_count(), 1);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn out_of_order_push_panics_in_debug() {
        let mut tr = Trace::default();
        tr.push(TraceEvent::GraphStart { job: 0, at: t(5) });
        tr.push(TraceEvent::GraphEnd { job: 0, at: t(1) });
    }

    #[test]
    fn gantt_paints_loads_and_execs() {
        let mut tr = Trace::default();
        let ru = RuId(0);
        tr.push(TraceEvent::LoadStart {
            job: 0,
            node: NodeId(0),
            config: ConfigId(1),
            ru,
            at: t(0),
        });
        tr.push(TraceEvent::LoadEnd {
            job: 0,
            node: NodeId(0),
            config: ConfigId(1),
            ru,
            at: t(4),
        });
        tr.push(TraceEvent::ExecStart {
            job: 0,
            node: NodeId(0),
            config: ConfigId(1),
            ru,
            at: t(4),
        });
        tr.push(TraceEvent::ExecEnd {
            job: 0,
            node: NodeId(0),
            config: ConfigId(1),
            ru,
            at: t(9),
        });
        let s = tr.to_gantt(1).render();
        assert!(s.contains("%%%%11111"), "{s}");
    }

    #[test]
    fn counts_attribute_prefetch_hits_and_waste() {
        let ru = RuId(0);
        let mut tr = Trace::default();
        // A completed prefetch claimed by the demand path: a hit.
        tr.push(TraceEvent::PrefetchStart {
            config: ConfigId(1),
            ru,
            at: t(0),
        });
        tr.push(TraceEvent::PrefetchEnd {
            config: ConfigId(1),
            ru,
            at: t(4),
        });
        tr.push(TraceEvent::Reuse {
            job: 0,
            node: NodeId(0),
            config: ConfigId(1),
            ru,
            at: t(4),
        });
        // A completed prefetch overwritten before any claim: wasted.
        tr.push(TraceEvent::PrefetchStart {
            config: ConfigId(2),
            ru,
            at: t(10),
        });
        tr.push(TraceEvent::PrefetchEnd {
            config: ConfigId(2),
            ru,
            at: t(14),
        });
        tr.push(TraceEvent::LoadStart {
            job: 0,
            node: NodeId(1),
            config: ConfigId(3),
            ru,
            at: t(14),
        });
        let c = tr.counts();
        assert_eq!(c.prefetch_issued, 2);
        assert_eq!(c.prefetch_completed, 2);
        assert_eq!(c.prefetch_hits, 1);
        assert_eq!(c.prefetch_wasted, 1);
        assert_eq!(c.loads, 1);
        assert_eq!(c.reuses, 1);
        assert_eq!(tr.events[0].kind_name(), "PrefetchStart");
    }

    #[test]
    fn serde_round_trip() {
        let mut tr = Trace::default();
        tr.push(TraceEvent::Skip {
            job: 2,
            node: NodeId(3),
            forced: true,
            at: t(7),
        });
        let json = serde_json::to_string(&tr).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tr);
    }
}
