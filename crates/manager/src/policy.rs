//! The replacement-policy interface.
//!
//! The manager separates *mechanism* from *policy*: it computes the set
//! of legal victims (unclaimed resident configurations) and the visible
//! future request stream, and asks a [`ReplacementPolicy`] to choose
//! through a [`DecisionContext`]. The policies themselves — LRU, LFD,
//! the paper's Local LFD — live in `rtr-core`; this crate only ships
//! the trivial [`FirstCandidatePolicy`] used by baselines and manager
//! unit tests.
//!
//! A [`DecisionContext`] answers the future-knowledge questions two
//! ways:
//!
//! * **Indexed** — backed by the engine's incremental
//!   [`ReuseIndex`]: next-use distances in O(log n) per candidate, the
//!   path every simulation takes.
//! * **View** — backed by a borrowed [`FutureView`] stream: the legacy
//!   linear scan, kept for tests, worst-case cost measurements
//!   (Table I) and ad-hoc contexts built outside an engine.
//!
//! Both yield bit-identical distances (the equivalence is
//! property-tested), so policies are written once against the context
//! and never know which backing they got.

use crate::reuse_index::{ReuseIndex, ReuseWindow};
use rtr_hw::RuId;
use rtr_sim::SimTime;
use rtr_taskgraph::ConfigId;

/// One legal eviction victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimCandidate {
    /// The RU that would be reconfigured.
    pub ru: RuId,
    /// The configuration currently resident there.
    pub config: ConfigId,
}

/// The future request stream as an explicit sequence of borrowed
/// segments: the legacy representation of the replacement module's
/// visible window.
///
/// The engine no longer builds one per decision (it queries the
/// [`ReuseIndex`] instead); `FutureView` remains the cheap way to
/// construct a [`DecisionContext`] from raw slices in tests, benches
/// and the Table I worst-case scenarios.
#[derive(Debug, Clone)]
pub struct FutureView<'a> {
    segments: Vec<&'a [ConfigId]>,
}

impl<'a> FutureView<'a> {
    /// Builds a view over the given segments (earlier segment = sooner).
    pub fn new(segments: Vec<&'a [ConfigId]>) -> Self {
        FutureView { segments }
    }

    /// An empty view (no future knowledge).
    pub fn empty() -> Self {
        FutureView {
            segments: Vec::new(),
        }
    }

    /// Iterates over the stream in request order.
    pub fn iter(&self) -> impl Iterator<Item = ConfigId> + '_ {
        self.segments.iter().flat_map(|s| s.iter().copied())
    }

    /// Forward distance of `config`: 1-based position of its next
    /// occurrence, or `None` if it does not occur in the visible window.
    /// This is the linear search whose cost the paper's Table I measures.
    pub fn distance_of(&self, config: ConfigId) -> Option<usize> {
        self.iter().position(|c| c == config).map(|p| p + 1)
    }

    /// True when `config` occurs in the visible window (the
    /// `reusable(victim)` predicate of the paper's Fig. 8).
    pub fn contains(&self, config: ConfigId) -> bool {
        self.iter().any(|c| c == config)
    }

    /// Total number of requests in the window.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum()
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(|s| s.is_empty())
    }
}

/// The two backings of a [`DecisionContext`]'s future knowledge.
#[derive(Debug)]
enum FutureSource<'a> {
    /// The engine's shared incremental index, restricted to the
    /// decision's visible window.
    Indexed {
        index: &'a ReuseIndex,
        window: ReuseWindow,
    },
    /// A borrowed explicit stream (legacy linear scan).
    View(&'a FutureView<'a>),
}

/// Everything a policy may consult when choosing a victim.
///
/// Constructed by the engine ([`DecisionContext::indexed`]) or by
/// tests/benches ([`DecisionContext::from_view`]).
#[derive(Debug)]
pub struct DecisionContext<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The configuration that needs an RU.
    pub new_config: ConfigId,
    /// Legal victims, in RU-index order. Never empty.
    pub candidates: &'a [VictimCandidate],
    future: FutureSource<'a>,
    /// Per-visible-segment *static* slack (`deadline − ideal makespan`,
    /// in signed microseconds; [`NO_DEADLINE`] when the owner carries
    /// none), aligned with the index's segment ordinals (0 = current
    /// job). Attached by the engine only when some live job has a
    /// deadline — absent on every pre-QoS run.
    owner_slack: Option<&'a [i64]>,
}

/// Sentinel static slack of a job without a deadline: sorts above every
/// real slack, so deadline-less owners are always the preferred victims
/// of slack-aware policies.
pub const NO_DEADLINE: i64 = i64::MAX;

impl<'a> DecisionContext<'a> {
    /// Context backed by the engine's [`ReuseIndex`], restricted to the
    /// decision's visible `window`.
    pub fn indexed(
        now: SimTime,
        new_config: ConfigId,
        candidates: &'a [VictimCandidate],
        index: &'a ReuseIndex,
        window: ReuseWindow,
    ) -> Self {
        DecisionContext {
            now,
            new_config,
            candidates,
            future: FutureSource::Indexed { index, window },
            owner_slack: None,
        }
    }

    /// Attaches the per-segment static-slack table (see
    /// [`Self::owner_slack_of`]). Only meaningful on an indexed context;
    /// the engine attaches it when at least one live job has a deadline.
    pub fn with_owner_slack(mut self, slack_by_segment: &'a [i64]) -> Self {
        self.owner_slack = Some(slack_by_segment);
        self
    }

    /// Context backed by an explicit [`FutureView`] (the legacy linear
    /// scan) — for tests, benches and worst-case measurements.
    pub fn from_view(
        now: SimTime,
        new_config: ConfigId,
        candidates: &'a [VictimCandidate],
        future: &'a FutureView<'a>,
    ) -> Self {
        DecisionContext {
            now,
            new_config,
            candidates,
            future: FutureSource::View(future),
            owner_slack: None,
        }
    }

    /// True when this context is backed by the O(log n) index.
    pub fn has_index(&self) -> bool {
        matches!(self.future, FutureSource::Indexed { .. })
    }

    /// Forward distance of `config` in the visible window: 1-based
    /// position of its next request, `None` when it is not requested.
    /// O(log n) when indexed, O(n) on a view.
    pub fn distance_of(&self, config: ConfigId) -> Option<usize> {
        match self.future {
            FutureSource::Indexed { index, window } => index.distance_of(config, window),
            FutureSource::View(view) => view.distance_of(config),
        }
    }

    /// Forward distances of every candidate's configuration, aligned
    /// with [`candidates`](Self::candidates). Indexed: one ordered
    /// lookup per candidate, O(candidates · log n). View: a single
    /// joint pass over the stream, O(stream × candidates) worst case —
    /// the legacy cost this refactor removes from the hot path.
    pub fn candidate_distances(&self) -> Vec<Option<usize>> {
        let mut dist = Vec::new();
        self.candidate_distances_into(&mut dist);
        dist
    }

    /// [`candidate_distances`](Self::candidate_distances) into a
    /// caller-owned buffer — the allocation-free form for policies that
    /// decide once per load: keep the buffer as policy state and reuse
    /// it across decisions.
    pub fn candidate_distances_into(&self, dist: &mut Vec<Option<usize>>) {
        dist.clear();
        match self.future {
            FutureSource::Indexed { index, window } => {
                dist.extend(
                    self.candidates
                        .iter()
                        .map(|cand| index.distance_of(cand.config, window)),
                );
            }
            FutureSource::View(view) => {
                dist.resize(self.candidates.len(), None);
                let mut unresolved = self.candidates.len();
                for (pos, config) in view.iter().enumerate() {
                    for (i, cand) in self.candidates.iter().enumerate() {
                        if dist[i].is_none() && cand.config == config {
                            dist[i] = Some(pos + 1);
                            unresolved -= 1;
                        }
                    }
                    if unresolved == 0 {
                        break;
                    }
                }
            }
        }
    }

    /// Remaining slack of the job owning `config`'s *next* request, in
    /// signed microseconds: `deadline − (now + ideal makespan)` of that
    /// owner. Returns `None` when the deadline-aware path is inactive —
    /// the context is view-backed, no slack table is attached (no live
    /// job has a deadline), `config` is not requested in the window, or
    /// its owner carries no deadline. A non-positive value marks a
    /// zero-slack owner: evicting its configuration directly endangers
    /// its deadline.
    pub fn owner_slack_of(&self, config: ConfigId) -> Option<i64> {
        let slack = self.owner_slack?;
        let FutureSource::Indexed { index, window } = self.future else {
            return None;
        };
        let pos = index.next_use(config, window)?;
        let seg = index.segment_of(pos)?;
        let s = *slack.get(seg)?;
        (s != NO_DEADLINE).then(|| s - self.now.as_us() as i64)
    }

    /// True when `config` is requested in the visible window (the
    /// `reusable(victim)` predicate of the paper's Fig. 8).
    pub fn future_contains(&self, config: ConfigId) -> bool {
        match self.future {
            FutureSource::Indexed { index, window } => index.contains(config, window),
            FutureSource::View(view) => view.contains(config),
        }
    }

    /// Number of requests in the visible window.
    pub fn future_len(&self) -> usize {
        match self.future {
            FutureSource::Indexed { window, .. } => window.len(),
            FutureSource::View(view) => view.len(),
        }
    }

    /// True when the visible window is empty.
    pub fn future_is_empty(&self) -> bool {
        self.future_len() == 0
    }

    /// Iterates the visible window in request order — the legacy
    /// iterator view, available on both backings for policies that
    /// genuinely need to walk the stream.
    pub fn future_iter(&self) -> Box<dyn Iterator<Item = ConfigId> + '_> {
        match self.future {
            FutureSource::Indexed { index, window } => Box::new(index.iter_window(window)),
            FutureSource::View(view) => Box::new(view.iter()),
        }
    }
}

/// A configuration-replacement policy.
///
/// `select_victim` must return the `ru` of one of the presented
/// candidates; the manager asserts this. The notification callbacks give
/// history-based policies (LRU, LFU, FIFO…) the usage signal they need;
/// all have empty default bodies.
pub trait ReplacementPolicy {
    /// Short display name, e.g. `"LRU"` or `"Local LFD (2)"`.
    ///
    /// Returns a borrow (typically `&'static str`, or a field for
    /// parameterised policies like Local LFD) so hot-path callers —
    /// the engine brands every run with the policy name, and error
    /// paths quote it — never allocate.
    fn name(&self) -> &str;

    /// Chooses the victim RU among `ctx.candidates`.
    fn select_victim(&mut self, ctx: &DecisionContext<'_>) -> RuId;

    /// A reconfiguration of `config` into `ru` completed.
    fn on_load_complete(&mut self, _config: ConfigId, _ru: RuId, _now: SimTime) {}

    /// A resident `config` on `ru` was claimed for reuse.
    fn on_reuse(&mut self, _config: ConfigId, _ru: RuId, _now: SimTime) {}

    /// A task using `config` started executing.
    fn on_exec_start(&mut self, _config: ConfigId, _now: SimTime) {}

    /// A task using `config` finished executing.
    fn on_exec_end(&mut self, _config: ConfigId, _now: SimTime) {}

    /// Task graph number `job` became current.
    fn on_graph_start(&mut self, _job: u32, _now: SimTime) {}

    /// Task graph number `job` completed.
    fn on_graph_end(&mut self, _job: u32, _now: SimTime) {}

    /// Clears any per-run state so the policy can be reused.
    fn reset(&mut self) {}

    /// Identity key for warm-start replay eligibility, or `None` to
    /// opt out.
    ///
    /// Returning `Some(key)` is a promise that the policy is a pure
    /// function of its notification history: `select_victim` mutates
    /// nothing observable (scratch buffers are fine), and every piece
    /// of decision-relevant state derives solely from the `on_*`
    /// callbacks above. Under that contract the engine may skip
    /// re-simulating a previously recorded run and instead replay the
    /// logged callbacks onto the policy — two policies with equal keys
    /// fed equal callback sequences must make equal future decisions.
    ///
    /// Policies whose decisions depend on hidden per-call state (e.g.
    /// an RNG advanced inside `select_victim`) must return `None`
    /// (the default), which disables warm-start for their runs.
    fn warm_key(&self) -> Option<String> {
        None
    }
}

/// Picks the first (lowest-index RU) candidate. This is both the
/// fallback tie-break the paper describes for Local LFD and a useful
/// "no intelligence" baseline; it is also the policy used for the
/// no-reuse original-overhead baseline where victim choice cannot
/// matter.
#[derive(Debug, Clone, Default)]
pub struct FirstCandidatePolicy;

impl ReplacementPolicy for FirstCandidatePolicy {
    fn name(&self) -> &str {
        "FirstCandidate"
    }

    fn select_victim(&mut self, ctx: &DecisionContext<'_>) -> RuId {
        ctx.candidates[0].ru
    }

    fn warm_key(&self) -> Option<String> {
        Some("FirstCandidate".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn c(id: u32) -> ConfigId {
        ConfigId(id)
    }

    #[test]
    fn future_view_distances() {
        let seg1 = [c(4), c(5)];
        let seg2 = [c(1), c(2), c(3)];
        let view = FutureView::new(vec![&seg1, &seg2]);
        assert_eq!(view.len(), 5);
        assert_eq!(view.distance_of(c(4)), Some(1));
        assert_eq!(view.distance_of(c(1)), Some(3));
        assert_eq!(view.distance_of(c(3)), Some(5));
        assert_eq!(view.distance_of(c(9)), None);
        assert!(view.contains(c(2)));
        assert!(!view.contains(c(9)));
    }

    #[test]
    fn empty_view() {
        let view = FutureView::empty();
        assert!(view.is_empty());
        assert_eq!(view.len(), 0);
        assert_eq!(view.distance_of(c(1)), None);
    }

    #[test]
    fn distance_uses_first_occurrence() {
        let seg = [c(7), c(8), c(7)];
        let view = FutureView::new(vec![&seg]);
        assert_eq!(view.distance_of(c(7)), Some(1));
    }

    #[test]
    fn first_candidate_picks_lowest_ru() {
        let mut p = FirstCandidatePolicy;
        let seg: [ConfigId; 0] = [];
        let future = FutureView::new(vec![&seg]);
        let candidates = [
            VictimCandidate {
                ru: RuId(1),
                config: c(10),
            },
            VictimCandidate {
                ru: RuId(3),
                config: c(11),
            },
        ];
        let ctx = DecisionContext::from_view(SimTime::ZERO, c(1), &candidates, &future);
        assert_eq!(p.select_victim(&ctx), RuId(1));
    }

    #[test]
    fn owner_slack_resolves_through_the_index() {
        let mut index = ReuseIndex::new();
        index.push_job(Arc::new(vec![c(1), c(2)])); // current → segment 0
        index.push_job(Arc::new(vec![c(3)])); // backlog → segment 1
        let window = index.window(0, 1);
        let candidates = [
            VictimCandidate {
                ru: RuId(0),
                config: c(2),
            },
            VictimCandidate {
                ru: RuId(1),
                config: c(3),
            },
        ];
        // Static slack (deadline − ideal): 10 ms for the current job,
        // no deadline on the backlog job.
        let slack = [10_000i64, NO_DEADLINE];
        let ctx =
            DecisionContext::indexed(SimTime::from_us(4_000), c(9), &candidates, &index, window)
                .with_owner_slack(&slack);
        assert_eq!(ctx.owner_slack_of(c(2)), Some(6_000));
        assert_eq!(ctx.owner_slack_of(c(3)), None, "owner has no deadline");
        assert_eq!(ctx.owner_slack_of(c(42)), None, "not requested in window");
        // Without the table (no live deadlines) the path is inert.
        let plain = DecisionContext::indexed(SimTime::ZERO, c(9), &candidates, &index, window);
        assert_eq!(plain.owner_slack_of(c(2)), None);
    }

    #[test]
    fn indexed_and_view_backings_agree() {
        let stream = [c(4), c(5), c(1), c(2), c(3), c(5)];
        let view = FutureView::new(vec![&stream]);
        let mut index = ReuseIndex::new();
        // Current job contributing one already-consumed head entry,
        // then the stream split across two backlog jobs.
        index.push_job(Arc::new(vec![c(99)]));
        index.push_job(Arc::new(vec![c(4), c(5), c(1)]));
        index.push_job(Arc::new(vec![c(2), c(3), c(5)]));
        let window = index.window(1, 2);
        let candidates = [
            VictimCandidate {
                ru: RuId(0),
                config: c(5),
            },
            VictimCandidate {
                ru: RuId(1),
                config: c(3),
            },
            VictimCandidate {
                ru: RuId(2),
                config: c(42),
            },
        ];
        let by_view = DecisionContext::from_view(SimTime::ZERO, c(7), &candidates, &view);
        let by_index = DecisionContext::indexed(SimTime::ZERO, c(7), &candidates, &index, window);
        assert!(by_index.has_index());
        assert!(!by_view.has_index());
        assert_eq!(
            by_view.candidate_distances(),
            by_index.candidate_distances()
        );
        for cand in &candidates {
            assert_eq!(
                by_view.distance_of(cand.config),
                by_index.distance_of(cand.config)
            );
            assert_eq!(
                by_view.future_contains(cand.config),
                by_index.future_contains(cand.config)
            );
        }
        assert_eq!(by_view.future_len(), by_index.future_len());
        let a: Vec<ConfigId> = by_view.future_iter().collect();
        let b: Vec<ConfigId> = by_index.future_iter().collect();
        assert_eq!(a, b);
    }
}
