//! The replacement-policy interface.
//!
//! The manager separates *mechanism* from *policy*: it computes the set
//! of legal victims (unclaimed resident configurations) and the visible
//! future request stream, and asks a [`ReplacementPolicy`] to choose.
//! The policies themselves — LRU, LFD, the paper's Local LFD — live in
//! `rtr-core`; this crate only ships the trivial
//! [`FirstCandidatePolicy`] used by baselines and manager unit tests.

use rtr_hw::RuId;
use rtr_sim::SimTime;
use rtr_taskgraph::ConfigId;

/// One legal eviction victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimCandidate {
    /// The RU that would be reconfigured.
    pub ru: RuId,
    /// The configuration currently resident there.
    pub config: ConfigId,
}

/// The future request stream visible to the replacement module: the
/// remaining loads of the current graph followed by the reconfiguration
/// sequences of the task graphs in the Dynamic List window.
///
/// Stored as borrowed segments so constructing a view costs a few
/// pointer copies even for a 500-application oracle stream.
#[derive(Debug, Clone)]
pub struct FutureView<'a> {
    segments: Vec<&'a [ConfigId]>,
}

impl<'a> FutureView<'a> {
    /// Builds a view over the given segments (earlier segment = sooner).
    pub fn new(segments: Vec<&'a [ConfigId]>) -> Self {
        FutureView { segments }
    }

    /// An empty view (no future knowledge).
    pub fn empty() -> Self {
        FutureView {
            segments: Vec::new(),
        }
    }

    /// Iterates over the stream in request order.
    pub fn iter(&self) -> impl Iterator<Item = ConfigId> + '_ {
        self.segments.iter().flat_map(|s| s.iter().copied())
    }

    /// Forward distance of `config`: 1-based position of its next
    /// occurrence, or `None` if it does not occur in the visible window.
    /// This is the linear search whose cost the paper's Table I measures.
    pub fn distance_of(&self, config: ConfigId) -> Option<usize> {
        self.iter().position(|c| c == config).map(|p| p + 1)
    }

    /// True when `config` occurs in the visible window (the
    /// `reusable(victim)` predicate of the paper's Fig. 8).
    pub fn contains(&self, config: ConfigId) -> bool {
        self.iter().any(|c| c == config)
    }

    /// Total number of requests in the window.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum()
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(|s| s.is_empty())
    }
}

/// Everything a policy may consult when choosing a victim.
#[derive(Debug)]
pub struct ReplacementContext<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The configuration that needs an RU.
    pub new_config: ConfigId,
    /// Legal victims, in RU-index order. Never empty.
    pub candidates: &'a [VictimCandidate],
    /// The visible future request stream.
    pub future: &'a FutureView<'a>,
}

/// A configuration-replacement policy.
///
/// `select_victim` must return the `ru` of one of the presented
/// candidates; the manager asserts this. The notification callbacks give
/// history-based policies (LRU, LFU, FIFO…) the usage signal they need;
/// all have empty default bodies.
pub trait ReplacementPolicy {
    /// Short display name, e.g. `"LRU"` or `"Local LFD (2)"`.
    fn name(&self) -> String;

    /// Chooses the victim RU among `ctx.candidates`.
    fn select_victim(&mut self, ctx: &ReplacementContext<'_>) -> RuId;

    /// A reconfiguration of `config` into `ru` completed.
    fn on_load_complete(&mut self, _config: ConfigId, _ru: RuId, _now: SimTime) {}

    /// A resident `config` on `ru` was claimed for reuse.
    fn on_reuse(&mut self, _config: ConfigId, _ru: RuId, _now: SimTime) {}

    /// A task using `config` started executing.
    fn on_exec_start(&mut self, _config: ConfigId, _now: SimTime) {}

    /// A task using `config` finished executing.
    fn on_exec_end(&mut self, _config: ConfigId, _now: SimTime) {}

    /// Task graph number `job` became current.
    fn on_graph_start(&mut self, _job: u32, _now: SimTime) {}

    /// Task graph number `job` completed.
    fn on_graph_end(&mut self, _job: u32, _now: SimTime) {}

    /// Clears any per-run state so the policy can be reused.
    fn reset(&mut self) {}
}

/// Picks the first (lowest-index RU) candidate. This is both the
/// fallback tie-break the paper describes for Local LFD and a useful
/// "no intelligence" baseline; it is also the policy used for the
/// no-reuse original-overhead baseline where victim choice cannot
/// matter.
#[derive(Debug, Clone, Default)]
pub struct FirstCandidatePolicy;

impl ReplacementPolicy for FirstCandidatePolicy {
    fn name(&self) -> String {
        "FirstCandidate".to_string()
    }

    fn select_victim(&mut self, ctx: &ReplacementContext<'_>) -> RuId {
        ctx.candidates[0].ru
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: u32) -> ConfigId {
        ConfigId(id)
    }

    #[test]
    fn future_view_distances() {
        let seg1 = [c(4), c(5)];
        let seg2 = [c(1), c(2), c(3)];
        let view = FutureView::new(vec![&seg1, &seg2]);
        assert_eq!(view.len(), 5);
        assert_eq!(view.distance_of(c(4)), Some(1));
        assert_eq!(view.distance_of(c(1)), Some(3));
        assert_eq!(view.distance_of(c(3)), Some(5));
        assert_eq!(view.distance_of(c(9)), None);
        assert!(view.contains(c(2)));
        assert!(!view.contains(c(9)));
    }

    #[test]
    fn empty_view() {
        let view = FutureView::empty();
        assert!(view.is_empty());
        assert_eq!(view.len(), 0);
        assert_eq!(view.distance_of(c(1)), None);
    }

    #[test]
    fn distance_uses_first_occurrence() {
        let seg = [c(7), c(8), c(7)];
        let view = FutureView::new(vec![&seg]);
        assert_eq!(view.distance_of(c(7)), Some(1));
    }

    #[test]
    fn first_candidate_picks_lowest_ru() {
        let mut p = FirstCandidatePolicy;
        let seg: [ConfigId; 0] = [];
        let future = FutureView::new(vec![&seg]);
        let candidates = [
            VictimCandidate {
                ru: RuId(1),
                config: c(10),
            },
            VictimCandidate {
                ru: RuId(3),
                config: c(11),
            },
        ];
        let ctx = ReplacementContext {
            now: SimTime::ZERO,
            new_config: c(1),
            candidates: &candidates,
            future: &future,
        };
        assert_eq!(p.select_victim(&ctx), RuId(1));
    }
}
