//! Trace validation: a registry of named, independently toggleable
//! invariant checkers. Property tests run random workloads through
//! every policy and validate the traces; golden tests validate the
//! paper examples; the `vopr` fuzz binary drives long seeded campaigns
//! through the same registry and reports per-checker fired/violation
//! counters.
//!
//! Each invariant lives in exactly one [`Checker`] (implementations
//! in the private `checkers` submodule, built via
//! [`standard_checkers`]):
//!
//! * `arrival-order` — graph executions are sequential and in arrival
//!   order, never before the job's arrival, and every started graph
//!   ends.
//! * `port-lanes` — demand *and* speculative reconfigurations are
//!   serialised on the single port; demand loads and completed
//!   prefetches take exactly the device latency, and a cancelled
//!   prefetch is aborted inside its write interval.
//! * `ru-intervals` — per RU, load and execution intervals never
//!   overlap, and a speculative load never targets an RU whose
//!   resident is claimed (placed but not yet finished) or executing.
//! * `task-lifecycle` — a task executes exactly once, after its
//!   configuration was loaded into or reused on its RU, for exactly
//!   its design-time execution time.
//! * `precedence` — a task starts only after all its predecessors
//!   finished.
//! * `reuse-residency` — a reuse claim only happens when the same
//!   configuration was left on that RU by a previous load (demand or
//!   completed speculative) with no intervening overwrite, and every
//!   placement/skip/stall belongs to the current graph.
//! * `prefetch-guard` — a speculative load never evicts a resident
//!   configuration whose next request comes strictly before the
//!   fetched configuration's, checked against the *entire* remaining
//!   request stream.
//! * `counter-equality` — event counters in [`RunStats`] match the
//!   trace (loads, reuses, execs, skips, stalls and the prefetch
//!   issue/complete/cancel/hit/waste counters).
//! * `traffic-equality` — the traffic totals, port busy time and
//!   makespan in [`RunStats`] match the trace.
//! * `prefetch-accounting` — internal prefetch identities: every
//!   speculative load completes or is cancelled, and attribution never
//!   exceeds completions.
//! * `prefetch-off-invisible` — with depth 0 the trace records no
//!   speculative events and all prefetch counters are zero.
//! * `no-lost-work` — by each graph's completion every node finished
//!   exactly once, and every kill/checkpoint revocation was paid for
//!   with exactly one extra execution start.
//! * `preemption-order` — a preemptor's lane priority is strictly
//!   above its victim's, the suspended stack is LIFO with priorities
//!   increasing toward the top, and every suspension resumes.
//! * `qos-accounting` — the QoS counters in [`RunStats`] match the
//!   trace, deadline misses/tardiness re-derive from completions, and
//!   the per-class rows sum to the run totals.
//! * `fault-retry-bounded` — every corrupt load completion resolves at
//!   the same instant into a retry or a give-up; attempts count up by
//!   one, never exceed the fault plan's budget, retried writes honour
//!   the exponential-backoff schedule, and every give-up quarantines
//!   its unit.
//! * `quarantine-isolation` — no load, reuse, execution, retry or
//!   further fault targets a quarantined RU; quarantines and heals
//!   pair up.
//! * `corrupt-never-reused` — an upset resident never satisfies a
//!   reuse claim or backs an execution start before a rewrite (or the
//!   unit's quarantine) clears it.
//! * `fault-accounting` — the fault counters in [`RunStats`] match the
//!   trace tallies, per-class injections sum to the total, and the
//!   degraded-pool time and lost work re-derive from the trace.
//! * `pooled-identity` — the run is bit-exact with a reference
//!   [`SimulationOutcome`] (stats and trace), the pooled-engine
//!   contract.
//! * `tenant-isolation` — admission control rejects only over-quota
//!   submissions: a below-quota tenant is always admitted, no matter
//!   how far another tenant overdrew its own quota.
//! * `placement-residency` — every recorded placement score existed
//!   at decision time (replayed through a fresh residency model), and
//!   `ReuseAffinity` never routed below the best-overlap candidate.
//! * `fleet-accounting` — the [`FleetStats`](crate::fleet::FleetStats)
//!   roll-up equals the sum of the per-device [`RunStats`] ledgers,
//!   per-tenant rows sum to the totals, and the admission event stream
//!   re-derives the submitted/admitted/rejected counters.
//!
//! [`validate_trace`] and [`assert_valid`] keep the original one-call
//! interface: they run every checker of the standard registry and
//! flatten the violations.

mod checkers;

pub use checkers::standard_checkers;

use crate::config::FaultPlan;
use crate::fleet::FleetCheckInfo;
use crate::job::JobSpec;
use crate::manager::SimulationOutcome;
use crate::stats::RunStats;
use crate::trace::Trace;
use rtr_sim::SimDuration;
use std::fmt;

/// A violated invariant, with human-readable context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation(pub String);

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace invariant violated: {}", self.0)
    }
}

/// Everything a [`Checker`] may inspect about one run.
///
/// `trace`, `jobs` and `latency` are always present; the optional
/// fields widen the checkable surface: `stats` arms the accounting
/// checkers, `reference` arms `pooled-identity`, and `prefetch_depth`
/// arms `prefetch-off-invisible` (when it is `Some(0)`).
#[derive(Debug, Clone, Copy)]
pub struct CheckContext<'a> {
    /// The recorded schedule under validation.
    pub trace: &'a Trace,
    /// The job specs that produced it (graph, arrival, annotations).
    pub jobs: &'a [JobSpec],
    /// The device's per-load reconfiguration latency.
    pub latency: SimDuration,
    /// Run statistics, when counter checks should run.
    pub stats: Option<&'a RunStats>,
    /// A reference outcome the run must be bit-exact with (the
    /// pooled-engine / determinism contract).
    pub reference: Option<&'a SimulationOutcome>,
    /// The prefetch depth the run was configured with, when known.
    pub prefetch_depth: Option<usize>,
    /// The fault plan the run was configured with, when known —
    /// tightens `fault-retry-bounded` to the plan's exact retry budget.
    pub fault_plan: Option<&'a FaultPlan>,
    /// Fleet-run context (placement decisions, admission events,
    /// aggregate stats) — arms the three fleet checkers. `None` on
    /// single-device runs, where they pass vacuously.
    pub fleet: Option<&'a FleetCheckInfo<'a>>,
}

impl<'a> CheckContext<'a> {
    /// Context over a trace, its jobs and optional run statistics.
    pub fn new(
        trace: &'a Trace,
        jobs: &'a [JobSpec],
        latency: SimDuration,
        stats: Option<&'a RunStats>,
    ) -> Self {
        Self {
            trace,
            jobs,
            latency,
            stats,
            reference: None,
            prefetch_depth: None,
            fault_plan: None,
            fleet: None,
        }
    }

    /// Arms `pooled-identity`: the run must be bit-exact with `r`.
    pub fn with_reference(mut self, r: &'a SimulationOutcome) -> Self {
        self.reference = Some(r);
        self
    }

    /// Records the configured prefetch depth (0 arms
    /// `prefetch-off-invisible`).
    pub fn with_prefetch_depth(mut self, depth: usize) -> Self {
        self.prefetch_depth = Some(depth);
        self
    }

    /// Records the run's fault plan, tightening `fault-retry-bounded`
    /// to the plan's exact retry budget.
    pub fn with_fault_plan(mut self, plan: &'a FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Attaches fleet-run context, arming the `tenant-isolation`,
    /// `placement-residency` and `fleet-accounting` checkers.
    pub fn with_fleet(mut self, fleet: &'a FleetCheckInfo<'a>) -> Self {
        self.fleet = Some(fleet);
        self
    }
}

/// Accumulates one checker's activity: how many assertions it actually
/// evaluated (`fired`) and which of them failed. A checker that never
/// fires on a whole campaign is a silent hole — the anti-vacuity test
/// and the `vopr` coverage summary both assert `fired > 0`.
#[derive(Debug, Default)]
pub struct CheckOutput {
    fired: u64,
    violations: Vec<Violation>,
}

impl CheckOutput {
    /// Evaluates one assertion: bumps `fired`, records a violation
    /// with `msg()`'s text when `cond` is false.
    pub fn probe<F: FnOnce() -> String>(&mut self, cond: bool, msg: F) {
        self.fired += 1;
        if !cond {
            self.violations.push(Violation(msg()));
        }
    }

    /// Records an unconditional violation (a malformed event the
    /// checker could not even pair up).
    pub fn fail(&mut self, msg: String) {
        self.fired += 1;
        self.violations.push(Violation(msg));
    }

    /// Assertions evaluated so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// One named invariant. Implementations walk the trace with their own
/// local state, so each checker can be enabled, disabled and counted
/// independently.
pub trait Checker: Send + Sync {
    /// Stable kebab-case name (CLI flag / coverage key).
    fn name(&self) -> &'static str;
    /// One-line human description for `vopr --list`.
    fn description(&self) -> &'static str;
    /// Walks `cx.trace` and records probes/violations in `out`.
    fn check(&self, cx: &CheckContext<'_>, out: &mut CheckOutput);
}

/// One checker's result for one validated run.
#[derive(Debug)]
pub struct CheckerOutcome {
    /// The checker's registered name.
    pub name: &'static str,
    /// Assertions the checker evaluated on this run.
    pub fired: u64,
    /// Violations it found.
    pub violations: Vec<Violation>,
}

/// The per-checker results of one [`CheckerRegistry::run`], in
/// registration order (deterministic — reports render byte-stably).
#[derive(Debug, Default)]
pub struct RegistryReport {
    /// One outcome per enabled checker, in registration order.
    pub outcomes: Vec<CheckerOutcome>,
}

impl RegistryReport {
    /// True when no enabled checker found a violation.
    pub fn is_clean(&self) -> bool {
        self.outcomes.iter().all(|o| o.violations.is_empty())
    }

    /// Total violations across all checkers.
    pub fn violation_count(&self) -> usize {
        self.outcomes.iter().map(|o| o.violations.len()).sum()
    }

    /// The outcome of one checker, if it was enabled.
    pub fn outcome(&self, name: &str) -> Option<&CheckerOutcome> {
        self.outcomes.iter().find(|o| o.name == name)
    }

    /// Names of the checkers that found violations.
    pub fn failing(&self) -> Vec<&'static str> {
        self.outcomes
            .iter()
            .filter(|o| !o.violations.is_empty())
            .map(|o| o.name)
            .collect()
    }

    /// Flattens into the legacy violation list (checker order).
    pub fn into_violations(self) -> Vec<Violation> {
        self.outcomes
            .into_iter()
            .flat_map(|o| o.violations)
            .collect()
    }

    /// Renders a stable per-checker report: one line per checker with
    /// its fired/violation counts, then one indented line per
    /// violation.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for o in &self.outcomes {
            s.push_str(&format!(
                "checker {}: fired={} violations={}\n",
                o.name,
                o.fired,
                o.violations.len()
            ));
            for v in &o.violations {
                s.push_str(&format!("  - {v}\n"));
            }
        }
        s
    }
}

/// Error for [`CheckerRegistry::set_enabled`] with a name nobody
/// registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownChecker(pub String);

impl fmt::Display for UnknownChecker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown checker '{}'", self.0)
    }
}

impl std::error::Error for UnknownChecker {}

/// An ordered set of named checkers with per-checker enable flags.
pub struct CheckerRegistry {
    entries: Vec<(Box<dyn Checker>, bool)>,
}

impl CheckerRegistry {
    /// An empty registry (extension point for future subsystems —
    /// preemption invariants register here without touching the core).
    pub fn empty() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// The full standard registry: every invariant this crate knows,
    /// all enabled.
    pub fn standard() -> Self {
        let mut r = Self::empty();
        for c in standard_checkers() {
            r.register(c);
        }
        r
    }

    /// Appends a checker (enabled). Panics on a duplicate name —
    /// names are CLI flags and coverage keys, so they must be unique.
    pub fn register(&mut self, c: Box<dyn Checker>) {
        assert!(
            self.entries.iter().all(|(e, _)| e.name() != c.name()),
            "duplicate checker name '{}'",
            c.name()
        );
        self.entries.push((c, true));
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|(c, _)| c.name()).collect()
    }

    /// `(name, description, enabled)` rows for `vopr --list`.
    pub fn rows(&self) -> Vec<(&'static str, &'static str, bool)> {
        self.entries
            .iter()
            .map(|(c, on)| (c.name(), c.description(), *on))
            .collect()
    }

    /// Enables or disables one checker by name.
    pub fn set_enabled(&mut self, name: &str, on: bool) -> Result<(), UnknownChecker> {
        match self.entries.iter_mut().find(|(c, _)| c.name() == name) {
            Some(entry) => {
                entry.1 = on;
                Ok(())
            }
            None => Err(UnknownChecker(name.to_string())),
        }
    }

    /// Runs every enabled checker over `cx`.
    pub fn run(&self, cx: &CheckContext<'_>) -> RegistryReport {
        let mut report = RegistryReport::default();
        for (checker, enabled) in &self.entries {
            if !enabled {
                continue;
            }
            let mut out = CheckOutput::default();
            checker.check(cx, &mut out);
            report.outcomes.push(CheckerOutcome {
                name: checker.name(),
                fired: out.fired,
                violations: out.violations,
            });
        }
        report
    }
}

/// Validates `trace` (produced by simulating `jobs`) against all
/// standard invariants; returns every violation found.
pub fn validate_trace(
    trace: &Trace,
    jobs: &[JobSpec],
    latency: SimDuration,
    stats: Option<&RunStats>,
) -> Vec<Violation> {
    CheckerRegistry::standard()
        .run(&CheckContext::new(trace, jobs, latency, stats))
        .into_violations()
}

/// Panics with a readable report if [`validate_trace`] finds
/// violations.
pub fn assert_valid(
    trace: &Trace,
    jobs: &[JobSpec],
    latency: SimDuration,
    stats: Option<&RunStats>,
) {
    let violations = validate_trace(trace, jobs, latency, stats);
    if !violations.is_empty() {
        let mut report = String::from("schedule trace violates invariants:\n");
        for violation in &violations {
            report.push_str(&format!("  - {violation}\n"));
        }
        panic!("{report}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ManagerConfig;
    use crate::manager::simulate;
    use crate::policy::FirstCandidatePolicy;
    use crate::trace::TraceEvent;
    use rtr_taskgraph::benchmarks;
    use std::sync::Arc;

    fn jobs() -> Vec<JobSpec> {
        let jpeg = Arc::new(benchmarks::jpeg());
        let mpeg = Arc::new(benchmarks::mpeg1());
        vec![
            JobSpec::new(Arc::clone(&jpeg)),
            JobSpec::new(mpeg),
            JobSpec::new(jpeg),
        ]
    }

    #[test]
    fn valid_run_passes() {
        let cfg = ManagerConfig::paper_default();
        let jobs = jobs();
        let out = simulate(&cfg, &jobs, &mut FirstCandidatePolicy).unwrap();
        assert_valid(
            &out.trace,
            &jobs,
            cfg.device.reconfig_latency,
            Some(&out.stats),
        );
    }

    #[test]
    fn detects_tampered_counts() {
        let cfg = ManagerConfig::paper_default();
        let jobs = jobs();
        let out = simulate(&cfg, &jobs, &mut FirstCandidatePolicy).unwrap();
        let mut bad = out.stats.clone();
        bad.reuses += 1;
        let violations = validate_trace(&out.trace, &jobs, cfg.device.reconfig_latency, Some(&bad));
        assert!(!violations.is_empty());
    }

    #[test]
    fn detects_corrupted_trace() {
        let cfg = ManagerConfig::paper_default();
        let jobs = jobs();
        let mut out = simulate(&cfg, &jobs, &mut FirstCandidatePolicy).unwrap();
        // Remove an exec-end event: lifecycle checks must fire.
        let idx = out
            .trace
            .events
            .iter()
            .position(|e| matches!(e, TraceEvent::ExecEnd { .. }))
            .unwrap();
        out.trace.events.remove(idx);
        let violations = validate_trace(&out.trace, &jobs, cfg.device.reconfig_latency, None);
        assert!(!violations.is_empty());
    }

    #[test]
    fn disabled_checker_does_not_run() {
        let cfg = ManagerConfig::paper_default();
        let jobs = jobs();
        let out = simulate(&cfg, &jobs, &mut FirstCandidatePolicy).unwrap();
        let mut bad = out.stats.clone();
        bad.reuses += 1;
        let cx = CheckContext::new(&out.trace, &jobs, cfg.device.reconfig_latency, Some(&bad));
        let mut registry = CheckerRegistry::standard();
        assert!(!registry.run(&cx).is_clean());
        registry.set_enabled("counter-equality", false).unwrap();
        let report = registry.run(&cx);
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.outcome("counter-equality").is_none());
    }

    #[test]
    fn unknown_checker_name_errors() {
        let mut registry = CheckerRegistry::standard();
        assert_eq!(
            registry.set_enabled("no-such-checker", false),
            Err(UnknownChecker("no-such-checker".into()))
        );
    }

    #[test]
    fn report_attributes_violations_to_checkers() {
        let cfg = ManagerConfig::paper_default();
        let jobs = jobs();
        let out = simulate(&cfg, &jobs, &mut FirstCandidatePolicy).unwrap();
        let mut bad = out.stats.clone();
        bad.reuses += 1;
        let cx = CheckContext::new(&out.trace, &jobs, cfg.device.reconfig_latency, Some(&bad));
        let report = CheckerRegistry::standard().run(&cx);
        assert_eq!(report.failing(), vec!["counter-equality"]);
        assert!(report.render().contains("checker counter-equality"));
    }
}
